"""ASCII strip charts for time series.

The paper's Figures 8 and 9 are line plots of an adjustment parameter over
time; in a terminal-only environment the harness renders them as ASCII
strip charts.  :func:`strip_chart` plots one series; :func:`multi_chart`
overlays several with distinct glyphs.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

__all__ = ["multi_chart", "strip_chart"]

Series = Sequence[Tuple[float, float]]

_GLYPHS = "*+o#@%&="


def _render(
    grid: List[List[str]],
    t_max: float,
    v_min: float,
    v_max: float,
    width: int,
    height: int,
) -> str:
    lines = []
    for i, row in enumerate(grid):
        value = v_max - (v_max - v_min) * i / (height - 1)
        lines.append(f"{value:7.2f} |" + "".join(row))
    lines.append("        +" + "-" * width)
    footer = f"         0s{'':{max(0, width - 12)}}{t_max:.0f}s"
    lines.append(footer)
    return "\n".join(lines)


def _bounds(all_series: Iterable[Series]) -> Tuple[float, float, float]:
    t_max = 0.0
    v_min, v_max = float("inf"), float("-inf")
    for series in all_series:
        for t, v in series:
            t_max = max(t_max, t)
            v_min = min(v_min, v)
            v_max = max(v_max, v)
    if v_min == float("inf"):
        raise ValueError("all series are empty")
    if v_min == v_max:
        v_min, v_max = v_min - 0.5, v_max + 0.5
    return (t_max or 1.0), v_min, v_max


def strip_chart(
    series: Series,
    width: int = 72,
    height: int = 12,
) -> str:
    """Render one (time, value) series as an ASCII chart."""
    return multi_chart({"": series}, width=width, height=height, legend=False)


def multi_chart(
    series_map: Dict[str, Series],
    width: int = 72,
    height: int = 12,
    legend: bool = True,
) -> str:
    """Overlay several labeled series, one glyph each.

    Later samples overwrite earlier ones in shared cells; with more than
    ``len(_GLYPHS)`` series the glyphs cycle.
    """
    if width < 8 or height < 3:
        raise ValueError(f"chart too small: {width}x{height}")
    if not series_map:
        raise ValueError("no series given")
    t_max, v_min, v_max = _bounds(series_map.values())
    grid = [[" "] * width for _ in range(height)]
    glyph_of = {}
    for index, (label, series) in enumerate(series_map.items()):
        glyph = _GLYPHS[index % len(_GLYPHS)]
        glyph_of[label] = glyph
        for t, v in series:
            col = min(width - 1, int(t / t_max * (width - 1)))
            row = min(height - 1, int((v_max - v) / (v_max - v_min) * (height - 1)))
            grid[row][col] = glyph
    chart = _render(grid, t_max, v_min, v_max, width, height)
    if legend and any(series_map):
        entries = "   ".join(
            f"{glyph_of[label]} {label}" for label in series_map if label
        )
        if entries:
            chart += f"\n         {entries}"
    return chart
