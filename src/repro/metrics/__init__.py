"""Accuracy and performance metrics for the experiment harness."""

from repro.metrics.accuracy import (
    frequency_error,
    topk_accuracy,
    topk_recall,
)
from repro.metrics.ascii_chart import multi_chart, strip_chart
from repro.metrics.rates import RateEstimator, WindowedRateEstimator

__all__ = [
    "RateEstimator",
    "WindowedRateEstimator",
    "frequency_error",
    "multi_chart",
    "strip_chart",
    "topk_accuracy",
    "topk_recall",
]
