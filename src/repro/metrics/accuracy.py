"""Top-k accuracy metrics.

The paper measures accuracy as "how often the top 10 most frequently
occurring elements were correctly reported, and how correctly their
frequency of occurrence was reported" (Section 5.2).  We decompose that
into:

* :func:`topk_recall` — fraction of the true top-k present in the report;
* :func:`frequency_error` — mean relative error of the reported counts
  over the correctly identified values;
* :func:`topk_accuracy` — the blended score
  ``recall * (1 - mean relative frequency error)``, which reproduces the
  paper's single accuracy number (0.99 centralized / 0.97 distributed in
  Figure 5's regime).
"""

from __future__ import annotations

from typing import Dict, Hashable, Sequence, Tuple

__all__ = ["frequency_error", "topk_accuracy", "topk_recall"]

Pairs = Sequence[Tuple[Hashable, float]]


def _as_map(pairs: Pairs, label: str) -> Dict[Hashable, float]:
    mapping: Dict[Hashable, float] = {}
    for value, count in pairs:
        if value in mapping:
            raise ValueError(f"duplicate value {value!r} in {label}")
        mapping[value] = float(count)
    return mapping


def topk_recall(reported: Pairs, truth: Pairs, k: int) -> float:
    """Fraction of the true top-k values present in the reported top-k."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    true_map = _as_map(truth, "truth")
    _as_map(reported, "reported")  # validates duplicates
    if not true_map:
        raise ValueError("truth is empty")
    true_top = {v for v, _ in sorted(truth, key=lambda vc: (-vc[1], repr(vc[0])))[:k]}
    reported_top = {
        v for v, _ in sorted(reported, key=lambda vc: (-vc[1], repr(vc[0])))[:k]
    }
    if not true_top:
        return 1.0
    return len(true_top & reported_top) / len(true_top)


def frequency_error(reported: Pairs, truth: Pairs, k: int) -> float:
    """Mean relative count error over correctly identified top-k values.

    Only values present in both the reported and true top-k contribute;
    returns 1.0 (maximal error) when there is no overlap at all.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    true_map = _as_map(truth, "truth")
    reported_map = _as_map(reported, "reported")
    true_top = [v for v, _ in sorted(truth, key=lambda vc: (-vc[1], repr(vc[0])))[:k]]
    reported_top = {
        v for v, _ in sorted(reported, key=lambda vc: (-vc[1], repr(vc[0])))[:k]
    }
    overlap = [v for v in true_top if v in reported_top]
    if not overlap:
        return 1.0
    errors = []
    for value in overlap:
        true_count = true_map[value]
        if true_count <= 0:
            raise ValueError(f"true count of {value!r} must be > 0")
        errors.append(min(1.0, abs(reported_map[value] - true_count) / true_count))
    return sum(errors) / len(errors)


def topk_accuracy(reported: Pairs, truth: Pairs, k: int = 10) -> float:
    """The paper's blended accuracy: recall x frequency correctness."""
    recall = topk_recall(reported, truth, k)
    if recall == 0.0:
        return 0.0
    return recall * (1.0 - frequency_error(reported, truth, k))
