"""Arrival/throughput rate estimation.

"The system monitors the arrival rate at each source, the available
computing resources and memory, and the available network bandwidth"
(Section 1).  :class:`RateEstimator` is the arrival-rate piece: an
exponentially-weighted events-per-second estimate that is robust to
bursty arrivals, plus an exact windowed variant
(:class:`WindowedRateEstimator`) for short-horizon queries.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque

__all__ = ["RateEstimator", "WindowedRateEstimator"]


class RateEstimator:
    """EWMA events-per-second estimator.

    The estimate is updated per event from the inter-arrival gap:
    ``rate <- (1-a)*rate + a * 1/gap`` with ``a`` derived from the
    configured time constant, so bursts are smoothed over ``tau`` seconds
    regardless of event density.
    """

    def __init__(self, tau: float = 5.0) -> None:
        if tau <= 0:
            raise ValueError(f"time constant must be > 0, got {tau}")
        self.tau = float(tau)
        self._last_time: float | None = None
        self._rate = 0.0
        self.events = 0

    def observe(self, now: float, count: float = 1.0) -> float:
        """Record ``count`` events at time ``now``; returns the estimate."""
        if count <= 0:
            raise ValueError(f"count must be > 0, got {count}")
        self.events += int(count)
        if self._last_time is None:
            self._last_time = now
            return self._rate
        gap = now - self._last_time
        if gap < 0:
            raise ValueError(f"time went backwards: {now} < {self._last_time}")
        self._last_time = now
        if gap == 0.0:
            # Simultaneous arrivals: fold into the next gapped update by
            # treating them as an instantaneous burst (rate unchanged now).
            return self._rate
        instantaneous = count / gap
        # Gap-aware smoothing factor, exact exponential form.  The
        # rational approximation gap/(tau+gap) matches to first order at
        # small gaps and shares the fixed point, but it under-weights
        # large gaps: after a long silence (gap >> tau) the exact alpha
        # approaches 1 (the estimate should essentially restart at the
        # instantaneous rate) while the rational form tops out far more
        # slowly.  A micro-benchmark (`repro bench`, case
        # micro-ewma-observe) showed the exp() call costs well under 2x
        # the rational form per observe(), so exactness wins.
        alpha = 1.0 - math.exp(-gap / self.tau)
        self._rate += alpha * (instantaneous - self._rate)
        return self._rate

    @property
    def rate(self) -> float:
        """Current events-per-second estimate."""
        return self._rate

    def decayed_rate(self, now: float) -> float:
        """Estimate decayed for silence since the last event.

        A plain EWMA freezes when events stop; this read-side decay makes
        the monitor's "arrival rate" drop toward zero during a stall.
        """
        if self._last_time is None:
            return 0.0
        silence = max(0.0, now - self._last_time)
        return self._rate * self.tau / (self.tau + silence)


class WindowedRateEstimator:
    """Exact events-per-second over a sliding time window."""

    def __init__(self, window: float = 10.0) -> None:
        if window <= 0:
            raise ValueError(f"window must be > 0, got {window}")
        self.window = float(window)
        self._times: Deque[float] = deque()

    def observe(self, now: float) -> None:
        """Record one event at time ``now``."""
        if self._times and now < self._times[-1]:
            raise ValueError(f"time went backwards: {now} < {self._times[-1]}")
        self._times.append(now)
        self._evict(now)

    def rate(self, now: float) -> float:
        """Events per second over the trailing window at time ``now``."""
        self._evict(now)
        return len(self._times) / self.window

    def _evict(self, now: float) -> None:
        cutoff = now - self.window
        while self._times and self._times[0] <= cutoff:
            self._times.popleft()
