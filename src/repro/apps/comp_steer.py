"""comp-steer: computational steering (Sections 5.1, 5.4, 5.5).

A simulation emits mesh values; a :class:`SamplingStage` (on/near the
simulation host) forwards a middleware-chosen fraction of them; an
:class:`AnalysisStage` (on a separate machine) post-processes the sampled
stream at a configurable per-byte cost and detects features for steering.

The sampling rate is the adjustment parameter, declared exactly like the
paper's Section 3.3 example (initial value from configuration, range
[0.01, 1], increment 0.01, direction −1).  Figure 8 varies the analysis
cost (1–20 ms/byte); Figure 9 varies the data generation rate against a
10 KB/s link; in both, the plotted series is this parameter's history.

Configuration properties:

``sampling-rate``       initial rate (Fig 8 uses 0.13, Fig 9 uses 0.01)
``item-bytes``          bytes per mesh value on the wire (default 8)
``analysis-ms-per-byte``  post-processing cost at the analysis stage
``feature-threshold``   value above which the analysis flags a feature
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.core.api import StageContext, StreamProcessor
from repro.grid.config import AppConfig, ParameterConfig, StageConfig, StreamConfig
from repro.grid.resources import ResourceRequirement
from repro.simnet.hosts import CpuCostModel
from repro.streams.sampling import SystematicSampler

__all__ = ["AnalysisStage", "SamplingStage", "build_comp_steer_config"]

#: Wire bytes per forwarded mesh value.
DEFAULT_ITEM_BYTES = 8.0


class SamplingStage(StreamProcessor):
    """Adjustable-rate sampler in front of the analysis machine.

    Mirrors the paper's ``Sampler`` example: the sampling rate is exposed
    via ``specify_parameter`` and re-read via ``get_suggested_value`` on
    every item.  Sampling itself is nearly free; the cost the experiments
    vary lives downstream.
    """

    cost_model = CpuCostModel(per_item=1e-5)

    def __init__(self) -> None:
        self._sampler: Optional[SystematicSampler] = None
        self._item_bytes = DEFAULT_ITEM_BYTES

    def setup(self, context: StageContext) -> None:
        props = context.properties
        initial = float(props.get("sampling-rate", "0.13"))
        self._item_bytes = float(props.get("item-bytes", str(DEFAULT_ITEM_BYTES)))
        context.specify_parameter(
            "sampling-rate",
            initial=initial,
            minimum=float(props.get("sampling-rate-min", "0.01")),
            maximum=float(props.get("sampling-rate-max", "1.0")),
            increment=float(props.get("sampling-rate-increment", "0.01")),
            direction=-1,  # the paper's example: raising the rate slows B
        )
        self._sampler = SystematicSampler(initial)

    def on_item(self, payload: Any, context: StageContext) -> None:
        assert self._sampler is not None
        self._sampler.rate = context.get_suggested_value("sampling-rate")
        if self._sampler.offer(payload):
            context.emit(payload, size=self._item_bytes)

    def result(self) -> Dict[str, float]:
        assert self._sampler is not None
        return {
            "seen": float(self._sampler.seen),
            "kept": float(self._sampler.kept),
            "effective_rate": self._sampler.effective_rate,
        }


class AnalysisStage(StreamProcessor):
    """Post-processing with a per-byte CPU cost (the Figure 8 knob).

    Maintains running statistics of the sampled stream and flags feature
    events (values above ``feature-threshold``) — the signal a steering
    client would act on.
    """

    def __init__(self) -> None:
        self._threshold = 1.5
        self._count = 0
        self._total = 0.0
        self._maximum = float("-inf")
        self._detections: List[Tuple[float, float]] = []

    def setup(self, context: StageContext) -> None:
        props = context.properties
        ms_per_byte = float(props.get("analysis-ms-per-byte", "1.0"))
        if ms_per_byte < 0:
            raise ValueError(f"analysis-ms-per-byte must be >= 0, got {ms_per_byte}")
        # Instance-level override of the class attribute: cost in seconds.
        self.cost_model = CpuCostModel(per_byte=ms_per_byte / 1000.0)
        self._threshold = float(props.get("feature-threshold", "1.5"))

    def on_item(self, payload: Any, context: StageContext) -> None:
        value = self._value_of(payload)
        self._count += 1
        self._total += value
        if value > self._maximum:
            self._maximum = value
        if value > self._threshold:
            self._detections.append((context.now, value))

    @staticmethod
    def _value_of(payload: Any) -> float:
        """Accept bare floats or MeshPoint-like objects."""
        if hasattr(payload, "value"):
            return float(payload.value)
        return float(payload)

    def result(self) -> Dict[str, Any]:
        return {
            "count": self._count,
            "mean": self._total / self._count if self._count else 0.0,
            "max": self._maximum if self._count else 0.0,
            "detections": list(self._detections),
        }

    def current_answer(self) -> Dict[str, Any]:
        """Live statistics for continuous queries / steering clients."""
        return self.result()


def _register_codes(repository) -> None:
    """Publish the comp-steer stage codes (idempotent)."""
    for url, factory in [
        ("repo://comp-steer/sampler", SamplingStage),
        ("repo://comp-steer/analysis", AnalysisStage),
    ]:
        if url not in repository:
            repository.publish(url, factory)


def build_comp_steer_config(
    simulation_host: str,
    initial_rate: float = 0.13,
    analysis_ms_per_byte: float = 1.0,
    item_bytes: float = DEFAULT_ITEM_BYTES,
    feature_threshold: float = 1.5,
    analysis_host: Optional[str] = None,
) -> AppConfig:
    """The comp-steer application configuration.

    The sampler is pinned near the simulation host; the analysis stage is
    pinned to ``analysis_host`` if given, otherwise left to the broker.
    """
    sampler_props = {
        "sampling-rate": str(initial_rate),
        "item-bytes": str(item_bytes),
    }
    analysis_req = (
        ResourceRequirement(placement_hint=analysis_host)
        if analysis_host
        else ResourceRequirement()
    )
    return AppConfig(
        name="comp-steer",
        stages=[
            StageConfig(
                name="sampler",
                code_url="repo://comp-steer/sampler",
                requirement=ResourceRequirement(placement_hint=f"near:{simulation_host}"),
                parameters=[
                    ParameterConfig(
                        name="sampling-rate",
                        init=initial_rate,
                        minimum=0.01,
                        maximum=1.0,
                        increment=0.01,
                        direction=-1,
                    )
                ],
                properties=sampler_props,
            ),
            StageConfig(
                name="analysis",
                code_url="repo://comp-steer/analysis",
                requirement=analysis_req,
                properties={
                    "analysis-ms-per-byte": str(analysis_ms_per_byte),
                    "feature-threshold": str(feature_threshold),
                    # A small input buffer keeps the load signal tight to
                    # the actual arrival/consumption balance: a deep queue
                    # would keep reporting overload for the whole time its
                    # backlog drains, making the sampling rate oscillate
                    # far more than the paper's trajectories.
                    "queue-capacity": "40",
                },
            ),
        ],
        streams=[
            StreamConfig(name="sampled", src="sampler", dst="analysis",
                         item_size=item_bytes),
        ],
    )
