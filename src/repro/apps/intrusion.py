"""Distributed network-intrusion detection (Section 2 motivating app).

"Online analysis of streams of connection request logs and identifying
unusual patterns is considered useful for network intrusion detection ...
it is desirable that this analysis be performed in a distributed fashion,
and connection request logs at a number of sites be analyzed."

The pipeline mirrors count-samps' two-layer shape: a
:class:`LogFilterStage` at each site tracks, per source IP, the number of
*distinct destination ports* probed (the classic port-scan signature) and
periodically forwards the most suspicious IPs; an :class:`AlertStage`
merges site reports and raises alerts for IPs whose global distinct-port
count crosses a threshold.  The number of candidate IPs forwarded per
report is the adjustment parameter (same accuracy/bandwidth trade-off as
the count-samps summary size).

Configuration properties:

``report-size``        initial candidates per report (adjustable)
``batch``              records between reports
``max-ports-tracked``  per-IP distinct-port set cap at the filter
``alert-threshold``    global distinct-port count that triggers an alert
"""

from __future__ import annotations

from typing import Any, Dict, List, Set, Tuple

from repro.core.api import StageContext, StreamProcessor
from repro.grid.config import AppConfig, ParameterConfig, StageConfig, StreamConfig
from repro.grid.resources import ResourceRequirement
from repro.simnet.hosts import CpuCostModel

__all__ = ["AlertStage", "LogFilterStage", "build_intrusion_config"]

#: Wire bytes per reported (ip, ports) candidate.
CANDIDATE_BYTES = 24.0


class LogFilterStage(StreamProcessor):
    """Per-site scan-candidate extraction from connection records.

    Input payloads must expose ``src_ip`` and ``dst_port`` attributes
    (e.g. :class:`repro.streams.sources.ConnectionRecord`).
    """

    cost_model = CpuCostModel(per_item=4e-5)

    def __init__(self) -> None:
        self._ports: Dict[str, Set[int]] = {}
        self._batch = 500
        self._max_tracked = 64
        self._since_emit = 0

    def setup(self, context: StageContext) -> None:
        props = context.properties
        self._batch = int(props.get("batch", "500"))
        self._max_tracked = int(props.get("max-ports-tracked", "64"))
        context.specify_parameter(
            "report-size",
            initial=float(props.get("report-size", "10")),
            minimum=float(props.get("report-size-min", "1")),
            maximum=float(props.get("report-size-max", "50")),
            increment=1.0,
            direction=-1,
        )

    def on_item(self, payload: Any, context: StageContext) -> None:
        ports = self._ports.setdefault(payload.src_ip, set())
        if len(ports) < self._max_tracked:
            ports.add(payload.dst_port)
        self._since_emit += 1
        if self._since_emit >= self._batch:
            self._since_emit = 0
            self._emit_report(context)

    def flush(self, context: StageContext) -> None:
        self._emit_report(context)

    def _emit_report(self, context: StageContext) -> None:
        size = max(1, int(round(context.get_suggested_value("report-size"))))
        ranked = sorted(
            self._ports.items(), key=lambda ip_ports: (-len(ip_ports[1]), ip_ports[0])
        )[:size]
        report = {
            "site": context.stage_name,
            "candidates": [(ip, sorted(ports)) for ip, ports in ranked],
        }
        context.emit(report, size=max(1.0, len(ranked) * CANDIDATE_BYTES))

    def result(self) -> Dict[str, int]:
        return {"ips_tracked": len(self._ports)}


class AlertStage(StreamProcessor):
    """Global merge of site reports; alerts on cross-site port scanners."""

    cost_model = CpuCostModel(per_item=1e-4)

    def __init__(self) -> None:
        self._ports_by_ip: Dict[str, Set[int]] = {}
        self._threshold = 20

    def setup(self, context: StageContext) -> None:
        self._threshold = int(context.properties.get("alert-threshold", "20"))

    def on_item(self, payload: Any, context: StageContext) -> None:
        if not isinstance(payload, dict) or "candidates" not in payload:
            raise TypeError(f"AlertStage expected a report dict, got {payload!r}")
        for ip, ports in payload["candidates"]:
            self._ports_by_ip.setdefault(ip, set()).update(ports)

    def alerts(self) -> List[Tuple[str, int]]:
        """(ip, global distinct port count) above the alert threshold."""
        flagged = [
            (ip, len(ports))
            for ip, ports in self._ports_by_ip.items()
            if len(ports) >= self._threshold
        ]
        flagged.sort(key=lambda entry: (-entry[1], entry[0]))
        return flagged

    def result(self) -> Dict[str, Any]:
        return {"alerts": self.alerts(), "ips_seen": len(self._ports_by_ip)}


def _register_codes(repository) -> None:
    """Publish the intrusion-detection stage codes (idempotent)."""
    for url, factory in [
        ("repo://intrusion/filter", LogFilterStage),
        ("repo://intrusion/alert", AlertStage),
    ]:
        if url not in repository:
            repository.publish(url, factory)


def build_intrusion_config(
    site_hosts: List[str],
    report_size: float = 10.0,
    batch: int = 500,
    alert_threshold: int = 20,
) -> AppConfig:
    """Distributed intrusion-detection configuration: one filter per site."""
    if not site_hosts:
        raise ValueError("need at least one site host")
    stages = [
        StageConfig(
            name=f"site-filter-{i}",
            code_url="repo://intrusion/filter",
            requirement=ResourceRequirement(placement_hint=f"near:{host}"),
            parameters=[
                ParameterConfig(
                    name="report-size",
                    init=report_size,
                    minimum=1.0,
                    maximum=50.0,
                    increment=1.0,
                    direction=-1,
                )
            ],
            properties={
                "report-size": str(report_size),
                "batch": str(batch),
            },
        )
        for i, host in enumerate(site_hosts)
    ]
    stages.append(
        StageConfig(
            name="alert",
            code_url="repo://intrusion/alert",
            requirement=ResourceRequirement(min_cores=2),
            properties={"alert-threshold": str(alert_threshold)},
        )
    )
    streams = [
        StreamConfig(
            name=f"report-{i}", src=f"site-filter-{i}", dst="alert",
            item_size=CANDIDATE_BYTES,
        )
        for i in range(len(site_hosts))
    ]
    return AppConfig(name="intrusion-detect", stages=stages, streams=streams)
