"""The paper's application templates, written against the GATES stage API.

* :mod:`repro.apps.count_samps` — the distributed counting-samples
  application of Sections 5.1–5.3: per-source filter stages maintain a
  Gibbons–Matias counting sample whose size is the adjustment parameter,
  a join stage merges per-source summaries and answers "top 10 most
  frequent integers".  Also provides the centralized baseline (relay
  stages forwarding raw data).
* :mod:`repro.apps.comp_steer` — the computational-steering application
  of Sections 5.1, 5.4, 5.5: a sampling stage whose sampling rate is the
  adjustment parameter feeds an analysis stage with a per-byte
  processing cost.
* :mod:`repro.apps.intrusion` — the network-intrusion-detection
  motivating application of Section 2, built from the same substrate
  (distributed port-scan detection over connection logs).
"""

from repro.apps.algo_switch import (
    AlgorithmLadder,
    AlgorithmRung,
    AlgorithmSwitchingFilterStage,
)
from repro.apps.comp_steer import (
    AnalysisStage,
    SamplingStage,
    build_comp_steer_config,
)
from repro.apps.count_samps import (
    CentralCountStage,
    IntermediateMergeStage,
    JoinStage,
    RelayStage,
    SourceFilterStage,
    build_centralized_config,
    build_distributed_config,
    build_hierarchical_config,
)
from repro.apps.intrusion import (
    AlertStage,
    LogFilterStage,
    build_intrusion_config,
)

__all__ = [
    "AlertStage",
    "AlgorithmLadder",
    "AlgorithmRung",
    "AlgorithmSwitchingFilterStage",
    "AnalysisStage",
    "CentralCountStage",
    "IntermediateMergeStage",
    "JoinStage",
    "LogFilterStage",
    "RelayStage",
    "SamplingStage",
    "SourceFilterStage",
    "build_centralized_config",
    "build_comp_steer_config",
    "build_distributed_config",
    "build_hierarchical_config",
    "build_intrusion_config",
]
