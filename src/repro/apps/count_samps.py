"""count-samps: distributed counting samples (Sections 5.1–5.3).

The problem: integers arrive as sub-streams at several places; report the
``n`` most frequent values overall.  Two architectures from the paper:

* **Centralized** — :class:`RelayStage` on each source host forwards the
  raw sub-stream to a :class:`CentralCountStage` on the hub, which runs
  the one-pass approximate algorithm over everything (Figure 5, row 1).
* **Distributed** — :class:`SourceFilterStage` on each source host
  maintains a counting sample and periodically forwards its k most
  frequent values to a :class:`JoinStage` that merges the per-source
  summaries (Figure 5, row 2).  ``k`` is the adjustment parameter
  ("the number of frequently occurring values at each sub-stream",
  Section 5.1); the self-adapting version lets the middleware pick k in
  [10, 240] (Section 5.3).

Configuration properties (all strings, from the XML config):

``sketch``             sketch kind (default ``counting-samples``)
``sketch-capacity``    retained counters in the per-source sketch
``sample-size``        initial k        (``sample-size-min`` / ``-max`` bounds)
``batch``              items between summary emissions
``top-n``              the query's n (default 10)
``seed``               RNG seed for the sketches
``adaptive``           "true"/"false" — whether k adapts or stays fixed
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.core.api import StageContext, StreamProcessor
from repro.grid.config import AppConfig, ParameterConfig, StageConfig, StreamConfig
from repro.grid.resources import ResourceRequirement
from repro.simnet.hosts import CpuCostModel
from repro.streams.sketches import CountingSamples, make_sketch
from repro.streams.wire import summary_wire_size

__all__ = [
    "CentralCountStage",
    "IntermediateMergeStage",
    "JoinStage",
    "RelayStage",
    "SourceFilterStage",
    "build_centralized_config",
    "build_distributed_config",
    "build_hierarchical_config",
]

#: Wire size of one (value, count) pair in a summary message.
DEFAULT_PAIR_BYTES = 12.0
#: Wire size of one raw integer.
RAW_INT_BYTES = 8.0


class RelayStage(StreamProcessor):
    """Forwards every raw item unchanged (the centralized baseline's edge).

    Deliberately does no data reduction: the point of Figure 5 is the cost
    of shipping everything to the center.
    """

    cost_model = CpuCostModel(per_item=2e-5)

    def on_item(self, payload: Any, context: StageContext) -> None:
        context.emit(payload, size=RAW_INT_BYTES)


class SourceFilterStage(StreamProcessor):
    """Per-source counting-sample filter with the adjustable summary size.

    Every ``batch`` items it reads the middleware-suggested k
    (``get_suggested_value``), resizes its sketch to k (the paper's
    "size of the summary structure maintained"), and emits the current
    top-k as a cumulative summary; the join stage replaces its previous
    summary from this source.
    """

    #: Maintaining a counting sample costs a hash probe per item.
    cost_model = CpuCostModel(per_item=5e-5)

    def __init__(self) -> None:
        self._sketch = None
        self._batch = 500
        self._since_emit = 0
        self._param_name = "sample-size"

    def setup(self, context: StageContext) -> None:
        props = context.properties
        initial = float(props.get("sample-size", "100"))
        minimum = float(props.get("sample-size-min", "10"))
        maximum = float(props.get("sample-size-max", "240"))
        self._batch = int(props.get("batch", "500"))
        seed = int(props.get("seed", "0"))
        kind = props.get("sketch", "counting-samples")
        capacity = int(props.get("sketch-capacity", str(int(maximum))))
        kwargs: Dict[str, Any] = {}
        if kind == "counting-samples":
            kwargs["seed"] = seed
        self._sketch = make_sketch(kind, capacity, **kwargs)
        context.specify_parameter(
            self._param_name,
            initial=initial,
            minimum=minimum,
            maximum=maximum,
            increment=float(props.get("sample-size-increment", "10")),
            direction=-1,  # larger summaries = slower, more accurate
        )

    def on_item(self, payload: Any, context: StageContext) -> None:
        assert self._sketch is not None
        self._sketch.update(payload)
        self._since_emit += 1
        if self._since_emit >= self._batch:
            self._since_emit = 0
            self._emit_summary(context)

    def flush(self, context: StageContext) -> None:
        self._emit_summary(context)

    def _emit_summary(self, context: StageContext) -> None:
        assert self._sketch is not None
        k = int(round(context.get_suggested_value(self._param_name)))
        k = max(1, k)
        self._sketch.resize(max(k, 1))
        if isinstance(self._sketch, CountingSamples):
            pairs = sorted(
                self._sketch.raw_entries(), key=lambda vc: (-vc[1], repr(vc[0]))
            )[:k]
        else:
            pairs = [(v, int(round(c))) for v, c in self._sketch.top_k(k)]
        summary = {
            "source": context.stage_name,
            "pairs": pairs,
            "items_seen": self._sketch.items_seen,
        }
        # Charge the wire format's exact length (header + 12 bytes/pair;
        # see repro.streams.wire) rather than a hand-declared estimate.
        context.emit(summary, size=summary_wire_size(len(pairs)))

    def result(self) -> Optional[Any]:
        assert self._sketch is not None
        return {"items_seen": self._sketch.items_seen, "footprint": self._sketch.footprint}


class JoinStage(StreamProcessor):
    """Central merge of per-source summaries (the distributed version).

    Keeps the *latest* cumulative summary per source (summaries supersede
    each other) and answers the top-n query over their union.
    """

    cost_model = CpuCostModel(per_item=1e-4)

    def __init__(self) -> None:
        self._latest: Dict[str, Dict[str, Any]] = {}
        self._top_n = 10

    def setup(self, context: StageContext) -> None:
        self._top_n = int(context.properties.get("top-n", "10"))

    def on_item(self, payload: Any, context: StageContext) -> None:
        if not isinstance(payload, dict) or "pairs" not in payload:
            raise TypeError(f"JoinStage expected a summary dict, got {payload!r}")
        self._latest[payload["source"]] = payload

    def snapshot(self) -> Dict[str, Any]:
        return {"latest": dict(self._latest)}

    def restore(self, state: Any) -> None:
        self._latest = dict(state["latest"])

    def current_topk(self, n: Optional[int] = None) -> List[Tuple[Hashable, float]]:
        """The merged top-n at this instant."""
        n = self._top_n if n is None else n
        merged: Dict[Hashable, float] = {}
        for summary in self._latest.values():
            for value, count in summary["pairs"]:
                merged[value] = merged.get(value, 0.0) + float(count)
        ordered = sorted(merged.items(), key=lambda vc: (-vc[1], repr(vc[0])))
        return ordered[:n]

    def result(self) -> List[Tuple[Hashable, float]]:
        return self.current_topk()


class IntermediateMergeStage(StreamProcessor):
    """Middle-tier merge for hierarchical (3+ stage) deployments.

    Section 3.1, goal 2: "based upon the number and types of streams and
    the available resources, more than two stages could also be required.
    All intermediate stages take one or more intermediate streams as input
    and produce one or more output streams."

    This stage merges the summaries of several upstream filters and
    re-emits a combined summary of at most ``merge-size`` pairs —
    ``merge-size`` being its own adjustment parameter, so adaptation acts
    at *every* tier of the tree (an overloaded core link shrinks the
    mid-tier summaries without touching the leaf filters).
    """

    cost_model = CpuCostModel(per_item=8e-5)

    def __init__(self) -> None:
        self._latest: Dict[str, Dict[str, Any]] = {}
        self._batch = 4
        self._since_emit = 0

    def setup(self, context: StageContext) -> None:
        props = context.properties
        self._batch = int(props.get("merge-batch", "4"))
        context.specify_parameter(
            "merge-size",
            initial=float(props.get("merge-size", "150")),
            minimum=float(props.get("merge-size-min", "10")),
            maximum=float(props.get("merge-size-max", "400")),
            increment=float(props.get("merge-size-increment", "10")),
            direction=-1,
        )

    def on_item(self, payload: Any, context: StageContext) -> None:
        if not isinstance(payload, dict) or "pairs" not in payload:
            raise TypeError(
                f"IntermediateMergeStage expected a summary dict, got {payload!r}"
            )
        self._latest[payload["source"]] = payload
        self._since_emit += 1
        if self._since_emit >= self._batch:
            self._since_emit = 0
            self._emit_merged(context)

    def flush(self, context: StageContext) -> None:
        self._emit_merged(context)

    def _emit_merged(self, context: StageContext) -> None:
        size = max(1, int(round(context.get_suggested_value("merge-size"))))
        merged: Dict[Hashable, float] = {}
        items_seen = 0
        for summary in self._latest.values():
            items_seen += summary.get("items_seen", 0)
            for value, count in summary["pairs"]:
                merged[value] = merged.get(value, 0.0) + float(count)
        pairs = sorted(merged.items(), key=lambda vc: (-vc[1], repr(vc[0])))[:size]
        context.emit(
            {
                "source": context.stage_name,
                "pairs": [(v, int(round(c))) for v, c in pairs],
                "items_seen": items_seen,
            },
            size=summary_wire_size(len(pairs)),
        )

    def result(self) -> Dict[str, int]:
        return {"sources_merged": len(self._latest)}


class CentralCountStage(StreamProcessor):
    """Centralized one-pass counting over the full raw stream.

    Uses the same approximate algorithm the paper does (which is why even
    the centralized version's accuracy is 0.99, not 1.0).
    """

    cost_model = CpuCostModel(per_item=5e-5)

    def __init__(self) -> None:
        self._sketch = None
        self._top_n = 10

    def setup(self, context: StageContext) -> None:
        props = context.properties
        self._top_n = int(props.get("top-n", "10"))
        capacity = int(props.get("sketch-capacity", "4000"))
        self._sketch = CountingSamples(capacity, seed=int(props.get("seed", "0")))

    def on_item(self, payload: Any, context: StageContext) -> None:
        assert self._sketch is not None
        self._sketch.update(payload)

    def result(self) -> List[Tuple[Hashable, float]]:
        assert self._sketch is not None
        return [(v, float(c)) for v, c in self._sketch.top_k(self._top_n)]


# -- configuration builders ---------------------------------------------------


def _register_codes(repository) -> None:
    """Publish the count-samps stage codes (idempotent)."""
    from repro.apps.algo_switch import AlgorithmSwitchingFilterStage

    for url, factory in [
        ("repo://count-samps/filter", SourceFilterStage),
        ("repo://count-samps/join", JoinStage),
        ("repo://count-samps/relay", RelayStage),
        ("repo://count-samps/central", CentralCountStage),
        ("repo://count-samps/algo-filter", AlgorithmSwitchingFilterStage),
        ("repo://count-samps/merge", IntermediateMergeStage),
    ]:
        if url not in repository:
            repository.publish(url, factory)


def build_distributed_config(
    n_sources: int,
    source_hosts: List[str],
    sample_size: float = 100.0,
    sample_size_min: float = 10.0,
    sample_size_max: float = 240.0,
    batch: int = 500,
    top_n: int = 10,
    sketch: str = "counting-samples",
    seed: int = 0,
) -> AppConfig:
    """The distributed count-samps application configuration.

    One filter stage pinned near each source host plus a join stage on
    whatever the matchmaker picks (the central node in the star fabrics
    used by the experiments).
    """
    if n_sources < 1:
        raise ValueError(f"n_sources must be >= 1, got {n_sources}")
    if len(source_hosts) != n_sources:
        raise ValueError(
            f"need {n_sources} source hosts, got {len(source_hosts)}"
        )
    filter_props = {
        "sample-size": str(sample_size),
        "sample-size-min": str(sample_size_min),
        "sample-size-max": str(sample_size_max),
        "batch": str(batch),
        "sketch": sketch,
        "seed": str(seed),
    }
    stages = [
        StageConfig(
            name=f"filter-{i}",
            code_url="repo://count-samps/filter",
            requirement=ResourceRequirement(placement_hint=f"near:{source_hosts[i]}"),
            parameters=[
                ParameterConfig(
                    name="sample-size",
                    init=sample_size,
                    minimum=sample_size_min,
                    maximum=sample_size_max,
                    increment=10.0,
                    direction=-1,
                )
            ],
            properties=dict(filter_props),
        )
        for i in range(n_sources)
    ]
    stages.append(
        StageConfig(
            name="join",
            code_url="repo://count-samps/join",
            requirement=ResourceRequirement(min_cores=2),
            properties={"top-n": str(top_n)},
        )
    )
    streams = [
        StreamConfig(name=f"summary-{i}", src=f"filter-{i}", dst="join",
                     item_size=DEFAULT_PAIR_BYTES)
        for i in range(n_sources)
    ]
    return AppConfig(name="count-samps-distributed", stages=stages, streams=streams)


def build_hierarchical_config(
    n_sources: int,
    source_hosts: List[str],
    fan_in: int = 2,
    sample_size: float = 100.0,
    sample_size_min: float = 10.0,
    sample_size_max: float = 240.0,
    merge_size: float = 150.0,
    batch: int = 500,
    top_n: int = 10,
    seed: int = 0,
) -> AppConfig:
    """A three-tier count-samps: filters -> intermediate merges -> join.

    ``fan_in`` filters feed each intermediate merge stage; all merge
    stages feed the final join.  Both the leaf summary size and the
    mid-tier merge size are adjustment parameters, demonstrating the
    paper's "more than two stages" deployments with adaptation at every
    tier.
    """
    if n_sources < 2:
        raise ValueError(f"hierarchy needs >= 2 sources, got {n_sources}")
    if len(source_hosts) != n_sources:
        raise ValueError(f"need {n_sources} source hosts, got {len(source_hosts)}")
    if fan_in < 1:
        raise ValueError(f"fan_in must be >= 1, got {fan_in}")
    base = build_distributed_config(
        n_sources, source_hosts,
        sample_size=sample_size,
        sample_size_min=sample_size_min,
        sample_size_max=sample_size_max,
        batch=batch, top_n=top_n, seed=seed,
    )
    filters = [s for s in base.stages if s.name.startswith("filter-")]
    join = base.stage("join")
    n_merges = (n_sources + fan_in - 1) // fan_in
    merges = [
        StageConfig(
            name=f"merge-{m}",
            code_url="repo://count-samps/merge",
            requirement=ResourceRequirement(),
            parameters=[
                ParameterConfig(
                    name="merge-size",
                    init=merge_size, minimum=10.0, maximum=400.0,
                    increment=10.0, direction=-1,
                )
            ],
            properties={"merge-size": str(merge_size)},
        )
        for m in range(n_merges)
    ]
    streams = [
        StreamConfig(
            name=f"leaf-{i}",
            src=f"filter-{i}",
            dst=f"merge-{i // fan_in}",
            item_size=DEFAULT_PAIR_BYTES,
        )
        for i in range(n_sources)
    ] + [
        StreamConfig(
            name=f"mid-{m}",
            src=f"merge-{m}",
            dst="join",
            item_size=DEFAULT_PAIR_BYTES,
        )
        for m in range(n_merges)
    ]
    return AppConfig(
        name="count-samps-hierarchical",
        stages=filters + merges + [join],
        streams=streams,
    )


def build_centralized_config(
    n_sources: int,
    source_hosts: List[str],
    top_n: int = 10,
    sketch_capacity: int = 4000,
    seed: int = 0,
) -> AppConfig:
    """The centralized count-samps baseline configuration."""
    if n_sources < 1:
        raise ValueError(f"n_sources must be >= 1, got {n_sources}")
    if len(source_hosts) != n_sources:
        raise ValueError(
            f"need {n_sources} source hosts, got {len(source_hosts)}"
        )
    stages = [
        StageConfig(
            name=f"relay-{i}",
            code_url="repo://count-samps/relay",
            requirement=ResourceRequirement(placement_hint=f"near:{source_hosts[i]}"),
        )
        for i in range(n_sources)
    ]
    stages.append(
        StageConfig(
            name="central",
            code_url="repo://count-samps/central",
            requirement=ResourceRequirement(min_cores=2),
            properties={
                "top-n": str(top_n),
                "sketch-capacity": str(sketch_capacity),
                "seed": str(seed),
            },
        )
    )
    streams = [
        StreamConfig(name=f"raw-{i}", src=f"relay-{i}", dst="central",
                     item_size=RAW_INT_BYTES)
        for i in range(n_sources)
    ]
    return AppConfig(name="count-samps-centralized", stages=stages, streams=streams)
