"""Algorithm-choice adaptation (the paper's third adaptation axis).

Section 1 lists three things the middleware may adjust: "the sampling
rate, size of the summary structure maintained, and/or the *choice of the
algorithm to be used*."  This module implements the third:
:class:`AlgorithmLadder` defines an ordered family of summary algorithms,
cheapest/least-accurate first, and :class:`AlgorithmSwitchingFilterStage`
exposes the ladder index as an ordinary adjustment parameter (increment 1,
direction −1: climbing the ladder costs more CPU and emits bigger
summaries, but answers more accurately) — so the exact same Section 4
controller that tunes a sampling rate also picks the algorithm.

On a switch, the new sketch inherits the old one's retained counts via
``merge`` — the stream's history is not thrown away.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Sequence

from repro.core.api import StageContext, StreamProcessor
from repro.simnet.hosts import CpuCostModel
from repro.streams.sketches import FrequencySketch, make_sketch
from repro.streams.wire import summary_wire_size

__all__ = ["AlgorithmLadder", "AlgorithmRung", "AlgorithmSwitchingFilterStage"]

#: Wire size of one (value, count) pair in a summary message.
PAIR_BYTES = 12.0


@dataclass(frozen=True)
class AlgorithmRung:
    """One rung of the ladder: an algorithm at a fidelity level.

    Attributes
    ----------
    name:
        Sketch kind understood by :func:`repro.streams.sketches.make_sketch`.
    capacity_factor:
        Multiplier on the stage's base capacity k.
    cost_per_item:
        CPU seconds charged per stream item while this rung is active.
    summary_size:
        (value, count) pairs emitted per summary while active.
    """

    name: str
    capacity_factor: float
    cost_per_item: float
    summary_size: int

    def __post_init__(self) -> None:
        if self.capacity_factor <= 0:
            raise ValueError(f"capacity_factor must be > 0, got {self.capacity_factor}")
        if self.cost_per_item < 0:
            raise ValueError(f"cost_per_item must be >= 0, got {self.cost_per_item}")
        if self.summary_size < 1:
            raise ValueError(f"summary_size must be >= 1, got {self.summary_size}")


class AlgorithmLadder:
    """An ordered algorithm family, cheapest first."""

    def __init__(self, rungs: Sequence[AlgorithmRung], base_capacity: int, seed: int = 0) -> None:
        if not rungs:
            raise ValueError("ladder needs at least one rung")
        if base_capacity < 1:
            raise ValueError(f"base_capacity must be >= 1, got {base_capacity}")
        self.rungs = list(rungs)
        self.base_capacity = base_capacity
        self.seed = seed

    def __len__(self) -> int:
        return len(self.rungs)

    def rung(self, level: int) -> AlgorithmRung:
        """The rung at ``level`` (clamped into range)."""
        clamped = min(len(self.rungs) - 1, max(0, level))
        return self.rungs[clamped]

    def build(self, level: int) -> FrequencySketch:
        """Instantiate the sketch for ``level``."""
        rung = self.rung(level)
        capacity = max(1, int(round(self.base_capacity * rung.capacity_factor)))
        kwargs: Dict[str, Any] = {}
        if rung.name == "counting-samples":
            kwargs["seed"] = self.seed
        return make_sketch(rung.name, capacity, **kwargs)

    @classmethod
    def default(cls, base_capacity: int = 100, seed: int = 0) -> "AlgorithmLadder":
        """The ladder used by the count-samps algorithm-switching variant.

        Cheapest to richest: a quarter-size Misra–Gries (coarse heavy
        hitters only), full-size Misra–Gries, Space-Saving (adds error
        tracking), and a double-size counting sample (the paper's own
        algorithm at high fidelity).
        """
        return cls(
            rungs=[
                AlgorithmRung("misra-gries", 0.25, 2e-5, max(1, base_capacity // 4)),
                AlgorithmRung("misra-gries", 1.0, 4e-5, base_capacity),
                AlgorithmRung("space-saving", 1.0, 6e-5, base_capacity),
                AlgorithmRung("counting-samples", 2.0, 1e-4, base_capacity * 2),
            ],
            base_capacity=base_capacity,
            seed=seed,
        )


class AlgorithmSwitchingFilterStage(StreamProcessor):
    """count-samps filter whose *algorithm* is the adjustment parameter.

    Configuration properties:

    ``base-capacity``   the ladder's base k (default 100)
    ``batch``           items between summary emissions (default 500)
    ``initial-level``   starting rung (default: middle of the ladder)
    ``seed``            RNG seed for randomized rungs

    The middleware raises the level when resources allow and lowers it
    under pressure; switches happen at batch boundaries and carry the old
    sketch's state forward via ``merge``.
    """

    def __init__(self, ladder_factory: Optional[Callable[[int, int], AlgorithmLadder]] = None) -> None:
        self._ladder_factory = ladder_factory
        self._ladder: Optional[AlgorithmLadder] = None
        self._sketch: Optional[FrequencySketch] = None
        self._level = 0
        self._batch = 500
        self._since_emit = 0
        self.switches = 0

    def setup(self, context: StageContext) -> None:
        props = context.properties
        base_capacity = int(props.get("base-capacity", "100"))
        seed = int(props.get("seed", "0"))
        self._batch = int(props.get("batch", "500"))
        factory = self._ladder_factory or (
            lambda cap, s: AlgorithmLadder.default(cap, s)
        )
        self._ladder = factory(base_capacity, seed)
        top = len(self._ladder) - 1
        initial = int(props.get("initial-level", str(top // 2)))
        initial = min(top, max(0, initial))
        context.specify_parameter(
            "algorithm-level",
            initial=float(initial),
            minimum=0.0,
            maximum=float(top),
            increment=1.0,
            direction=-1,  # climbing the ladder = slower, more accurate
        )
        self._apply_level(initial)

    def _apply_level(self, level: int) -> None:
        assert self._ladder is not None
        rung = self._ladder.rung(level)
        new_sketch = self._ladder.build(level)
        if self._sketch is not None:
            new_sketch.merge(self._sketch)
            self.switches += 1
        self._sketch = new_sketch
        self._level = level
        # Instance-level cost override: the runtime prices each item with
        # the active rung's cost.
        self.cost_model = CpuCostModel(per_item=rung.cost_per_item)

    def on_item(self, payload: Any, context: StageContext) -> None:
        assert self._sketch is not None and self._ladder is not None
        self._sketch.update(payload)
        self._since_emit += 1
        if self._since_emit >= self._batch:
            self._since_emit = 0
            suggested = int(round(context.get_suggested_value("algorithm-level")))
            if suggested != self._level:
                self._apply_level(suggested)
            self._emit_summary(context)

    def flush(self, context: StageContext) -> None:
        self._emit_summary(context)

    def _emit_summary(self, context: StageContext) -> None:
        assert self._sketch is not None and self._ladder is not None
        rung = self._ladder.rung(self._level)
        pairs = [
            (v, int(round(c))) for v, c in self._sketch.top_k(rung.summary_size)
        ]
        summary = {
            "source": context.stage_name,
            "pairs": pairs,
            "items_seen": self._sketch.items_seen,
            "algorithm": rung.name,
            "level": self._level,
        }
        context.emit(summary, size=summary_wire_size(len(pairs)))

    def result(self) -> Dict[str, Any]:
        assert self._sketch is not None and self._ladder is not None
        return {
            "final_level": self._level,
            "algorithm": self._ladder.rung(self._level).name,
            "switches": self.switches,
            "items_seen": self._sketch.items_seen,
        }
