"""Command-line interface.

``python -m repro <command>`` drives the experiment harness and the
configuration tooling without writing any Python:

* ``fig5`` / ``fig6-7`` / ``fig8`` / ``fig9`` — regenerate one evaluation
  artifact (flags control scale so quick runs are possible);
* ``report [export.jsonl]`` — render a run summary (per-stage table,
  latency decomposition from hop traces, adaptation charts); with no
  argument it runs the built-in quickstart demo, with ``--export``
  it writes a JSONL/CSV export;
* ``chaos`` — run the fault-tolerance demo (mid-run host crash with live
  failover, optional link loss and poison items) and print the recovery
  report;
* ``netdemo`` — run count-samps across real worker OS processes on
  localhost (the :mod:`repro.net` runtime) and print the wire-level
  channel report;
* ``worker`` — run one networked worker process and wait for a
  coordinator (advanced: ``netdemo`` spawns its own workers);
* ``check <config.xml>`` — run the full static verifier over an
  application configuration (graph, adaptation, placement, checkpoint
  and wire passes; see docs/static_analysis.md), printing a rustc-style
  report or ``--json``;
* ``lint [paths...]`` — run the AST lint suite over the source tree;
* ``analyze [paths...]`` — run the whole-program concurrency analysis
  and the protocol model checker / conformance pass (GA6xx);
* ``validate <config.xml>`` — deprecated alias for ``check``;
* ``topology <config.xml>`` — print the placement a default star fabric
  would give the configuration (dry-run deployment).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

__all__ = ["main"]


def _parse_seeds(text: str) -> Sequence[int]:
    try:
        seeds = tuple(int(part) for part in text.split(",") if part)
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad seed list {text!r}") from None
    if not seeds:
        raise argparse.ArgumentTypeError("seed list is empty")
    return seeds


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GATES (HPDC 2004) reproduction — experiments and tooling",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fig5 = sub.add_parser("fig5", help="Figure 5: centralized vs distributed")
    fig5.add_argument("--items", type=int, default=25_000,
                      help="integers per source (default 25000)")
    fig5.add_argument("--seeds", type=_parse_seeds, default=(0, 1, 2),
                      help="comma-separated seeds to average (default 0,1,2)")
    fig5.add_argument("--json", dest="json_path", default=None,
                      help="also write the rows as JSON to this path")

    fig67 = sub.add_parser("fig6-7", help="Figures 6/7: versions x bandwidths")
    fig67.add_argument("--items", type=int, default=25_000)
    fig67.add_argument("--seeds", type=_parse_seeds, default=(0, 1, 2))
    fig67.add_argument("--json", dest="json_path", default=None)

    fig8 = sub.add_parser("fig8", help="Figure 8: processing constraint")
    fig8.add_argument("--duration", type=float, default=400.0,
                      help="simulated seconds per version (default 400)")
    fig8.add_argument("--json", dest="json_path", default=None)

    fig9 = sub.add_parser("fig9", help="Figure 9: network constraint")
    fig9.add_argument("--duration", type=float, default=400.0)
    fig9.add_argument("--json", dest="json_path", default=None)

    report = sub.add_parser(
        "report",
        help="render a run summary (per-stage table, latency decomposition, "
             "adaptation charts)",
    )
    report.add_argument(
        "source", nargs="?", default=None,
        help="a JSONL run export to report on; omitted = run the built-in "
             "quickstart demo with tracing enabled",
    )
    report.add_argument("--trace-every", type=int, default=1,
                        help="hop-trace every N-th item in the demo run "
                             "(default 1 = every item)")
    report.add_argument("--export", choices=("jsonl", "csv"), default=None,
                        help="also export the run in this format")
    report.add_argument("--out", default=None,
                        help="export path (JSONL file, or CSV base path "
                             "producing <out>.stages.csv/<out>.metrics.csv); "
                             "required with --export")

    chaos = sub.add_parser(
        "chaos",
        help="run the fault-tolerance demo: crash a host mid-run (or drift "
             "it and migrate live), and print the recovery report",
    )
    chaos.add_argument("--scenario", choices=("crash", "migrate"),
                       default="crash",
                       help="crash = host failure + failover (default); "
                            "migrate = resource drift + planned live "
                            "migration with a bounded pause")
    chaos.add_argument("--items", type=int, default=500,
                       help="items fed to the pipeline (default 500)")
    chaos.add_argument("--fail-at", type=float, default=1.0,
                       help="simulated second the edge host crashes "
                            "(default 1.0; negative = no crash)")
    chaos.add_argument("--checkpoint-interval", type=float, default=0.5,
                       help="simulated seconds between checkpoints (default 0.5)")
    chaos.add_argument("--loss", type=float, default=0.0,
                       help="per-send transmission failure probability "
                            "(default 0 = reliable links)")
    chaos.add_argument("--poison-every", type=int, default=None,
                       help="payloads divisible by N raise in the work stage")
    chaos.add_argument("--policy", choices=("fail", "skip", "dead-letter"),
                       default="dead-letter",
                       help="error policy for poison items (default dead-letter)")
    chaos.add_argument("--drift-at", type=float, default=1.0,
                       help="[migrate] simulated second the edge host starts "
                            "slowing down (default 1.0)")
    chaos.add_argument("--drift-factor", type=float, default=0.2,
                       help="[migrate] final speed as a fraction of nominal "
                            "(default 0.2)")

    netdemo = sub.add_parser(
        "netdemo",
        help="run count-samps across real worker OS processes (repro.net) "
             "and print the wire-level channel report",
    )
    netdemo.add_argument("--workers", type=int, default=3,
                         help="worker processes to spawn (default 3)")
    netdemo.add_argument("--items", type=int, default=4000,
                         help="integers per source (default 4000)")
    netdemo.add_argument("--seed", type=int, default=11,
                         help="payload RNG seed (default 11)")
    netdemo.add_argument("--join-cost-ms", type=float, default=2.0,
                         help="milliseconds of modeled work per summary at "
                              "the join (default 2.0; higher = more overload "
                              "exceptions)")
    netdemo.add_argument("--timeout", type=float, default=90.0,
                         help="abort the run after this many seconds")
    netdemo.add_argument("--no-verify", action="store_true",
                         help="skip the static pre-deploy verifier "
                              "(repro check) on the generated config")

    worker = sub.add_parser(
        "worker",
        help="run one networked worker process and wait for a coordinator",
    )
    worker.add_argument("--host", default="127.0.0.1",
                        help="interface to bind (default 127.0.0.1)")
    worker.add_argument("--port", type=int, default=0,
                        help="TCP port to bind (default 0: ephemeral, "
                             "announced on stdout)")
    worker.add_argument("--name", default="worker",
                        help="fallback worker name until the coordinator "
                             "assigns one")
    worker.add_argument("--uds", default=None, metavar="PATH",
                        help="also listen on this UNIX-domain socket and "
                             "announce it (co-located fast path; ignored "
                             "on platforms without AF_UNIX)")

    check = sub.add_parser(
        "check",
        help="statically verify an application XML config (graph, "
             "adaptation, placement, checkpoint and wire passes)",
    )
    check.add_argument("config", help="path to the XML configuration file")
    check.add_argument("--json", action="store_true",
                       help="emit the machine-readable JSON report")
    check.add_argument("--sources", type=int, default=4,
                       help="source hosts in the placement dry-run star "
                            "fabric (default 4)")
    check.add_argument("--bandwidth", type=float, default=100_000.0,
                       help="dry-run link bandwidth in bytes/s (default 100000)")

    lint = sub.add_parser(
        "lint",
        help="run the AST lint suite (metric catalog, determinism, async "
             "hygiene, checkpoint contract) over the source tree",
    )
    lint.add_argument("paths", nargs="*", default=None,
                      help="files or directories to lint (default: src/repro)")
    lint.add_argument("--json", action="store_true",
                      help="emit the machine-readable JSON report")

    analyze = sub.add_parser(
        "analyze",
        help="run the whole-program concurrency analysis (lock order, locks "
             "across waits, guarded state) and the protocol model checker "
             "with model<->code conformance (GA6xx)",
    )
    analyze.add_argument("paths", nargs="*", default=None,
                         help="files or directories to analyze "
                              "(default: src/repro)")
    analyze.add_argument("--json", action="store_true",
                         help="emit the machine-readable JSON report")
    analyze.add_argument("--models", metavar="FILE", default=None,
                         help="check the MODELS list from this Python file "
                              "instead of the built-in bounded protocol "
                              "configurations")

    validate = sub.add_parser(
        "validate", help="deprecated alias for 'check'"
    )
    validate.add_argument("config", help="path to the XML configuration file")

    topology = sub.add_parser(
        "topology", help="dry-run placement of a config on a star fabric"
    )
    topology.add_argument("config", help="path to the XML configuration file")
    topology.add_argument("--sources", type=int, default=4,
                          help="source hosts in the star (default 4)")
    topology.add_argument("--bandwidth", type=float, default=100_000.0,
                          help="link bandwidth in bytes/s (default 100000)")

    bench = sub.add_parser(
        "bench",
        help="run the data-plane performance benchmarks (micro codec/queue "
             "cases plus one-at-a-time vs micro-batched macro pipelines on "
             "all three runtimes) and write BENCH_perf.json",
    )
    bench.add_argument("--quick", action="store_true",
                       help="smaller item counts for CI smoke runs")
    bench.add_argument("--out", default="BENCH_perf.json",
                       help="report path (default BENCH_perf.json)")
    bench.add_argument("--validate", metavar="PATH",
                       help="validate an existing report file instead of "
                            "running the benchmarks")
    bench.add_argument("--compare", nargs=2, metavar=("OLD", "NEW"),
                       help="diff two bench reports instead of running; "
                            "exits nonzero when a floor-tracked case "
                            "regressed by more than the tolerance")
    bench.add_argument("--tolerance", type=float, default=None,
                       help="[--compare] allowed fractional items/s drop on "
                            "floor-tracked cases (default 0.20)")

    replay = sub.add_parser(
        "replay",
        help="record a run into a hash-chained ledger, or replay a "
             "recorded ledger on any runtime and assert bit-identical "
             "sink output (see docs/replay.md)",
    )
    replay.add_argument("ledger", nargs="?", default=None,
                        help="a recorded run.ledger to replay; omitted = "
                             "record a fresh demo run (requires --record)")
    replay.add_argument("--record", metavar="DIR", default=None,
                        help="record the demo pipeline into DIR and print "
                             "the ledger path and digests")
    replay.add_argument("--runtime", choices=("sim", "threaded", "net"),
                        default="sim",
                        help="runtime to record or replay on (default sim)")
    replay.add_argument("--items", type=int, default=96,
                        help="[--record] source items to feed (default 96)")
    replay.add_argument("--chaos", action="store_true",
                        help="[--record, sim only] inject a host crash with "
                             "failover, a live migration, and a shard "
                             "scale-up mid-run")
    replay.add_argument("--json", action="store_true",
                        help="emit the machine-readable JSON summary/report")
    return parser


def _write_json(path, rows) -> None:
    """Dump dataclass rows (or dicts) as a JSON array."""
    import dataclasses
    import json

    payload = [
        dataclasses.asdict(row) if dataclasses.is_dataclass(row) else row
        for row in rows
    ]
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)


def _cmd_fig5(args: argparse.Namespace) -> int:
    from repro.experiments import fig5

    rows = fig5.run_fig5(items_per_source=args.items, seeds=tuple(args.seeds))
    print("Figure 5: Benefits of Distributed Processing")
    for row in rows:
        print(
            f"  {row.processing_style:<12} exec={row.execution_time:8.1f}s "
            f"accuracy={row.accuracy:.3f} bytes={row.bytes_to_center:.0f}"
        )
    if args.json_path:
        _write_json(args.json_path, rows)
    return 0


def _cmd_fig67(args: argparse.Namespace) -> int:
    from repro.experiments import fig6_7

    rows = fig6_7.run_fig6_7(items_per_source=args.items, seeds=tuple(args.seeds))
    print(f"{'bandwidth':>12} {'version':>9} {'exec (s)':>10} {'accuracy':>9}")
    for row in rows:
        print(
            f"{row.bandwidth/1000:>10.0f}KB {row.version:>9} "
            f"{row.execution_time:>10.1f} {row.accuracy:>9.3f}"
        )
    if args.json_path:
        _write_json(args.json_path, rows)
    return 0


def _cmd_fig8(args: argparse.Namespace) -> int:
    from repro.experiments import fig8

    rows = fig8.run_fig8(duration_seconds=args.duration)
    for row in rows:
        print(
            f"  cost={row.ms_per_byte:5.1f} ms/B converged={row.converged_rate:.3f} "
            f"feasible={row.feasible_rate:.3f}"
        )
    if args.json_path:
        _write_json(args.json_path, rows)
    return 0


def _cmd_fig9(args: argparse.Namespace) -> int:
    from repro.experiments import fig9

    rows = fig9.run_fig9(duration_seconds=args.duration)
    for row in rows:
        print(
            f"  gen={row.generation_rate/1000:4.0f}KB/s "
            f"converged={row.converged_rate:.3f} feasible={row.feasible_rate:.3f}"
        )
    if args.json_path:
        _write_json(args.json_path, rows)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.obs.export import export_csv, export_jsonl, load_jsonl
    from repro.obs.report import render_report, run_quickstart_demo

    if args.export and not args.out:
        print("--export requires --out", file=sys.stderr)
        return 1
    if args.trace_every < 1:
        print("--trace-every must be >= 1", file=sys.stderr)
        return 1
    if args.source is not None:
        try:
            result = load_jsonl(args.source)
        except (OSError, ValueError, KeyError) as exc:
            print(f"cannot load {args.source!r}: {exc}", file=sys.stderr)
            return 1
    else:
        result = run_quickstart_demo(trace_every=args.trace_every)
    print(render_report(result))
    if args.export == "jsonl":
        count = export_jsonl(result, args.out)
        print(f"\nexported {count} JSONL records to {args.out}")
    elif args.export == "csv":
        paths = export_csv(result, args.out)
        print(f"\nexported CSV to {', '.join(paths)}")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.obs.report import render_report
    from repro.resilience.demo import run_chaos_demo, run_migrate_demo

    if args.items < 1:
        print("--items must be >= 1", file=sys.stderr)
        return 1
    if not 0.0 <= args.loss < 1.0:
        print("--loss must be in [0, 1)", file=sys.stderr)
        return 1
    if args.scenario == "migrate":
        if not 0.0 < args.drift_factor < 1.0:
            print("--drift-factor must be in (0, 1)", file=sys.stderr)
            return 1
        result, summary = run_migrate_demo(
            items=args.items,
            drift_at=args.drift_at,
            drift_factor=args.drift_factor,
            checkpoint_interval=args.checkpoint_interval,
        )
        print(render_report(result))
        print("\nmigration summary")
        print(f"  items fed        : {summary['items_fed']}")
        print(f"  sink received    : {summary['sink_items']} "
              f"({summary['unique_items']} unique, "
              f"{summary['duplicates']:.0f} duplicates)")
        print(f"  work stage host  : {summary['work_host']}")
        print(f"  triggers         : {summary['triggers']:.0f}")
        print(f"  items replayed   : {summary['replayed']:.0f}")
        if summary["max_pause"] is not None:
            print(f"  migration pause  : {summary['max_pause']:.3f}s "
                  "(drain to item boundary + snapshot + restore)")
        for when, stage, reason, target in summary["decisions"]:
            print(f"  t={when:.2f}s {stage!r} re-placed ({reason}) "
                  f"-> {target!r}")
        for stage, old, new in summary["moves"]:
            print(f"  moved {stage!r}: {old} -> {new}")
        return 0
    fail_at = None if args.fail_at < 0 else args.fail_at
    result, summary = run_chaos_demo(
        items=args.items,
        fail_at=fail_at,
        checkpoint_interval=args.checkpoint_interval,
        loss=args.loss,
        policy=args.policy,
        poison_every=args.poison_every,
    )
    print(render_report(result))
    print("\nrecovery summary")
    print(f"  items fed        : {summary['items_fed']}")
    print(f"  sink received    : {summary['sink_items']} "
          f"({summary['unique_items']} unique, "
          f"{summary['duplicates']:.0f} replay duplicates)")
    print(f"  work stage host  : {summary['work_host']}")
    print(f"  failovers        : {summary['failovers']:.0f}")
    print(f"  checkpoints      : {summary['checkpoints']:.0f}")
    print(f"  items replayed   : {summary['replayed']:.0f} "
          f"(dropped by eviction: {summary['replay_dropped']:.0f})")
    print(f"  quarantined      : {summary['quarantined']:.0f} "
          f"(dead letters retained: {summary['dead_letters']})")
    print(f"  wire retries     : {summary['retries']:.0f}")
    if summary["recovery_latency"] is not None:
        print(f"  recovery latency : {summary['recovery_latency']:.3f}s "
              "(outage from last heartbeat to restart)")
    for when, host, moved in summary["recoveries"]:
        print(f"  t={when:.2f}s host {host!r} failed; "
              f"moved stages: {', '.join(moved) or '(none)'}")
    return 0


def _cmd_netdemo(args: argparse.Namespace) -> int:
    from repro.net.demo import run_netdemo

    if args.workers < 2:
        print("--workers must be >= 2", file=sys.stderr)
        return 1
    if args.items < 1:
        print("--items must be >= 1", file=sys.stderr)
        return 1
    result, summary = run_netdemo(
        workers=args.workers,
        items_per_source=args.items,
        seed=args.seed,
        join_cost_ms=args.join_cost_ms,
        timeout=args.timeout,
        verify=not args.no_verify,
    )
    print(f"networked count-samps across {args.workers} worker processes "
          f"({args.items} items/source, seed {args.seed})")
    print("placement")
    for stage, worker in summary["placement"].items():
        print(f"  {stage:<12} -> {worker}")
    print("final top-k")
    for value, count in summary["topk"]:
        print(f"  {value:>6} : {count:.0f}")
    print("wire channels (sender-side accounting)")
    header = (f"  {'channel':<12} {'frames':>7} {'bytes':>9} {'stalls':>7} "
              f"{'wait (s)':>9} {'peak':>5} {'excs':>5}")
    print(header)
    for channel in sorted(summary["channels"]):
        stats = summary["channels"][channel]
        print(f"  {channel:<12} {stats.get('frames', 0):>7.0f} "
              f"{stats.get('bytes', 0):>9.0f} "
              f"{stats.get('credit_stalls', 0):>7.0f} "
              f"{stats.get('credit_wait_seconds', 0):>9.3f} "
              f"{stats.get('in_flight_peak', 0):>5.0f} "
              f"{stats.get('exceptions', 0):>5.0f}")
    print("adaptation exceptions delivered over the wire: "
          f"{summary['wire_exceptions']:.0f}")
    print(f"execution time: {summary['execution_time']:.2f}s")
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.net.worker import main as worker_main

    argv = ["--host", args.host, "--port", str(args.port), "--name", args.name]
    if args.uds is not None:
        argv += ["--uds", args.uds]
    return worker_main(argv)


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.analysis import verify_path
    from repro.experiments.common import build_star_fabric

    fabric = build_star_fabric(args.sources, bandwidth=args.bandwidth)
    try:
        report = verify_path(
            args.config,
            repository=fabric.repository,
            registry=fabric.registry,
        )
    except OSError as exc:
        print(f"cannot read {args.config!r}: {exc}", file=sys.stderr)
        return 1
    # Any finding fails the run, and the verdict must not depend on the
    # output mode: a warning-only config exits 1 with and without --json.
    if args.json:
        print(report.render_json())
        return 0 if report.clean else 1
    if not report.ok:
        print(report.render_text(), file=sys.stderr)
        return 1
    if not report.clean:
        print(report.render_text())
        return 1
    _print_dag(args.config)
    return 0


def _print_dag(path: str) -> None:
    """The ``OK: ...`` banner and stage DAG (historic validate output)."""
    from repro.grid.config import AppConfig, ConfigError

    try:
        with open(path, "r", encoding="utf-8") as handle:
            config = AppConfig.from_xml(handle.read())
    except (OSError, ConfigError):
        # Verification passed but the strict loader still objects (should
        # not happen); the verifier's verdict stands.
        return
    print(f"OK: application {config.name!r}")
    print(f"  stages ({len(config.stages)}):")
    for stage in config.topological_stages():
        downstream = config.downstream_of(stage.name)
        arrow = f" -> {', '.join(downstream)}" if downstream else " (sink)"
        params = f" [{len(stage.parameters)} adjustable]" if stage.parameters else ""
        print(f"    {stage.name}{params}{arrow}")


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.lint import main as lint_main

    argv = list(args.paths or [])
    if args.json:
        argv.append("--json")
    return lint_main(argv)


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis.analyze import main as analyze_main

    argv = list(args.paths or [])
    if args.json:
        argv.append("--json")
    if args.models:
        argv.extend(["--models", args.models])
    return analyze_main(argv)


def _cmd_validate(args: argparse.Namespace) -> int:
    print("warning: 'repro validate' is deprecated; use 'repro check' "
          "(same verifier, more passes and flags)", file=sys.stderr)
    check_args = argparse.Namespace(
        config=args.config, json=False, sources=4, bandwidth=100_000.0
    )
    return _cmd_check(check_args)


def _cmd_topology(args: argparse.Namespace) -> int:
    from repro.experiments.common import build_star_fabric
    from repro.grid.config import AppConfig, ConfigError

    try:
        with open(args.config, "r", encoding="utf-8") as handle:
            config = AppConfig.from_xml(handle.read())
    except (OSError, ConfigError) as exc:
        print(f"INVALID: {exc}", file=sys.stderr)
        return 1
    fabric = build_star_fabric(args.sources, bandwidth=args.bandwidth)
    try:
        assignment = fabric.deployer.matchmaker.match_all(
            [(s.name, s.requirement) for s in config.stages]
        )
    except Exception as exc:  # MatchError and friends
        print(f"UNPLACEABLE: {exc}", file=sys.stderr)
        return 1
    print(f"placement of {config.name!r} on a {args.sources}-source star "
          f"({args.bandwidth:.0f} B/s links):")
    for stage, host in assignment.items():
        print(f"  {stage:<20} -> {host}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import render_report, run_bench, validate_report, write_report

    if args.compare is not None:
        from repro.bench import REGRESSION_TOLERANCE, compare_files, render_compare

        tolerance = (args.tolerance if args.tolerance is not None
                     else REGRESSION_TOLERANCE)
        old_path, new_path = args.compare
        try:
            rows, problems = compare_files(old_path, new_path, tolerance=tolerance)
        except (OSError, ValueError) as exc:
            print(f"INVALID: {exc}", file=sys.stderr)
            return 1
        print(render_compare(rows, problems))
        return 1 if problems else 0
    if args.validate is not None:
        from repro.bench import validate_file

        problems = validate_file(args.validate)
        if problems:
            for problem in problems:
                print(f"INVALID: {problem}", file=sys.stderr)
            return 1
        print(f"{args.validate}: valid bench report")
        return 0
    report = run_bench(quick=args.quick)
    problems = validate_report(report)
    if problems:  # defensive: the harness must emit what it validates
        for problem in problems:
            print(f"INVALID: {problem}", file=sys.stderr)
        return 1
    write_report(report, args.out)
    print(render_report(report))
    print(f"wrote {args.out}")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    import json as _json

    from repro.ledger import ReplaySpec, record, replay

    if args.record is not None and args.ledger is not None:
        print("replay: give either --record DIR or a LEDGER path, not both",
              file=sys.stderr)
        return 2
    if args.record is not None:
        if args.chaos and args.runtime != "sim":
            print("replay: --chaos needs a fault fabric; only --runtime sim "
                  "supports it", file=sys.stderr)
            return 2
        spec = ReplaySpec(items=args.items, chaos=args.chaos)
        result = record(args.record, runtime=args.runtime, spec=spec)
        if args.json:
            print(_json.dumps(result.as_dict(), indent=2, sort_keys=True))
        else:
            print(f"recorded {args.runtime} run -> {result.ledger_path}")
            print(f"  records:   {result.counts.get('records', 0)} "
                  f"(ingress {result.counts.get('ingress', 0)}, "
                  f"reads {result.counts.get('reads', 0)}, "
                  f"sinks {result.counts.get('sinks', 0)}, "
                  f"decisions {result.counts.get('decisions', 0)})")
            print(f"  sink digest:  {result.sink_digest}")
            print(f"  state digest: {result.state_digest}")
            print(f"  effects: {len(result.effects)}  "
                  f"sink-dedup: {result.sink_duplicates}  "
                  f"delivery-dups: {result.delivery_duplicates}")
        return 0
    if args.ledger is None:
        print("replay: need a LEDGER path to replay, or --record DIR to "
              "record one", file=sys.stderr)
        return 2
    from repro.ledger import LedgerError

    try:
        report = replay(args.ledger, runtime=args.runtime)
    except (LedgerError, ValueError) as exc:
        print(f"replay: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(_json.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        print(report.summary_line())
        if report.first_divergence is not None:
            print(f"  first divergence: {report.first_divergence}")
    return 0 if report.match else 1


_COMMANDS = {
    "fig5": _cmd_fig5,
    "fig6-7": _cmd_fig67,
    "fig8": _cmd_fig8,
    "fig9": _cmd_fig9,
    "report": _cmd_report,
    "chaos": _cmd_chaos,
    "netdemo": _cmd_netdemo,
    "worker": _cmd_worker,
    "check": _cmd_check,
    "lint": _cmd_lint,
    "analyze": _cmd_analyze,
    "validate": _cmd_validate,
    "topology": _cmd_topology,
    "bench": _cmd_bench,
    "replay": _cmd_replay,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
