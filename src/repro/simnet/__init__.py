"""Discrete-event simulation substrate for the GATES reproduction.

The paper evaluated GATES on a physical cluster with delay-injected links.
This package provides the deterministic, laptop-scale equivalent: a
generator-based discrete-event kernel (:mod:`repro.simnet.engine`),
capacity resources and bounded queues (:mod:`repro.simnet.resources`),
bandwidth/latency-modeled network links (:mod:`repro.simnet.links`),
hosts with CPU cost models (:mod:`repro.simnet.hosts`), a networkx-backed
topology layer (:mod:`repro.simnet.topology`), and time-series tracing
(:mod:`repro.simnet.trace`).

Everything in the middleware layers above (``repro.grid``, ``repro.core``)
is written against these abstractions, so experiments that in the paper
required a cluster run here as repeatable single-process simulations.
"""

from repro.simnet.engine import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from repro.simnet.crosstraffic import CrossTrafficSource, inject_cross_traffic
from repro.simnet.hosts import CpuCostModel, Host, HostFailedError
from repro.simnet.links import Link, TokenBucket
from repro.simnet.resources import BoundedQueue, CapacityResource, QueueFullError, Store
from repro.simnet.topology import Network
from repro.simnet.trace import EventLog, StatSummary, TimeSeries

__all__ = [
    "AllOf",
    "AnyOf",
    "BoundedQueue",
    "CapacityResource",
    "CpuCostModel",
    "CrossTrafficSource",
    "Environment",
    "HostFailedError",
    "inject_cross_traffic",
    "Event",
    "EventLog",
    "Host",
    "Interrupt",
    "Link",
    "Network",
    "Process",
    "QueueFullError",
    "SimulationError",
    "StatSummary",
    "Store",
    "TimeSeries",
    "Timeout",
    "TokenBucket",
]
