"""Background cross-traffic on shared links.

The paper's motivating deployments cross "multiple administrative domains
... connected over a WAN" — links the application does not own.
:func:`inject_cross_traffic` occupies a fraction of a link's capacity with
filler transmissions, so the application's effective bandwidth shrinks
accordingly, and :class:`CrossTrafficSource` gives finer control
(burst sizes, duty cycles, start/stop).
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.simnet.engine import Environment, Process
from repro.simnet.links import Link

__all__ = ["CrossTrafficSource", "inject_cross_traffic"]


class CrossTrafficSource:
    """Periodic filler transmissions occupying part of a link.

    Every ``period`` seconds it transmits one filler message sized so the
    long-run occupied fraction equals ``fraction`` of the link's (current)
    bandwidth.  Messages interleave with application traffic through the
    link's ordinary FIFO transmitter, so the application sees both reduced
    throughput and added queueing delay — exactly what shared WAN capacity
    does.
    """

    def __init__(
        self,
        env: Environment,
        link: Link,
        fraction: float,
        period: float = 0.25,
    ) -> None:
        if not 0.0 < fraction < 1.0:
            raise ValueError(f"fraction must be in (0, 1), got {fraction}")
        if period <= 0:
            raise ValueError(f"period must be > 0, got {period}")
        self.env = env
        self.link = link
        self.fraction = float(fraction)
        self.period = float(period)
        self.bytes_sent = 0.0
        self._running = False
        self._process: Optional[Process] = None

    def start(self) -> Process:
        """Begin injecting; returns the traffic process."""
        if self._running:
            raise RuntimeError("cross-traffic source already running")
        self._running = True
        self._process = self.env.process(self._run(), name=f"xtraffic:{self.link.name}")
        return self._process

    def stop(self) -> None:
        """Stop after the in-flight filler message completes."""
        self._running = False

    def _run(self) -> Generator:
        # Deficit pacing: under contention the link's FIFO delays our
        # sends, so fixed sleeps would under-deliver the declared
        # fraction.  Instead track the byte budget accrued since start
        # and send whenever behind it.
        start = self.env.now
        chunk = self.fraction * self.link.bandwidth * self.period
        while self._running:
            budget = self.fraction * self.link.bandwidth * (self.env.now - start + self.period)
            deficit = budget - self.bytes_sent
            if deficit >= chunk * 0.5:
                size = min(deficit, 4.0 * chunk)
                yield self.link.send(("cross-traffic",), size)
                self.bytes_sent += size
            else:
                yield self.env.timeout(self.period)


def inject_cross_traffic(
    env: Environment,
    link: Link,
    fraction: float,
    period: float = 0.25,
) -> CrossTrafficSource:
    """Start background traffic occupying ``fraction`` of ``link``."""
    source = CrossTrafficSource(env, link, fraction, period)
    source.start()
    return source
