"""Network topology layer binding hosts and links into a grid fabric.

:class:`Network` wraps a :mod:`networkx` graph whose nodes are
:class:`~repro.simnet.hosts.Host` names and whose edges carry
:class:`~repro.simnet.links.Link` instances.  It supports the topologies
used throughout the evaluation (stars of stream sources around a central
analysis node) plus arbitrary shapes for the motivating applications, and
provides shortest-path routing so multi-hop deployments work.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Tuple

import networkx as nx

from repro.simnet.engine import Environment
from repro.simnet.hosts import Host
from repro.simnet.links import Link

__all__ = ["Network", "TopologyError"]


class TopologyError(Exception):
    """Raised for unknown hosts, missing links, or unroutable paths."""


class Network:
    """A collection of hosts joined by directed, bandwidth-limited links.

    Links are directed (an edge u->v models the u-to-v direction); helper
    constructors add both directions with identical parameters, matching
    the symmetric links of the paper's testbed.
    """

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._graph = nx.DiGraph()
        self._hosts: Dict[str, Host] = {}

    # -- construction -------------------------------------------------------

    def add_host(self, host: Host) -> Host:
        """Register ``host``; names must be unique."""
        if host.name in self._hosts:
            raise TopologyError(f"duplicate host name {host.name!r}")
        self._hosts[host.name] = host
        self._graph.add_node(host.name)
        return host

    def create_host(
        self,
        name: str,
        cores: int = 1,
        speed_factor: float = 1.0,
        memory_mb: float = 1024.0,
    ) -> Host:
        """Convenience: build and register a :class:`Host`."""
        return self.add_host(
            Host(self.env, name, cores=cores, speed_factor=speed_factor, memory_mb=memory_mb)
        )

    def connect(
        self,
        src: str,
        dst: str,
        bandwidth: float,
        latency: float = 0.0,
        bidirectional: bool = True,
    ) -> Link:
        """Create a link from ``src`` to ``dst`` (and back if bidirectional).

        Returns the forward-direction link.
        """
        self._require_host(src)
        self._require_host(dst)
        if src == dst:
            raise TopologyError(f"self-link on {src!r}")
        link = Link(self.env, bandwidth, latency, name=f"{src}->{dst}")
        self._graph.add_edge(src, dst, link=link, weight=1.0 / bandwidth)
        if bidirectional:
            back = Link(self.env, bandwidth, latency, name=f"{dst}->{src}")
            self._graph.add_edge(dst, src, link=back, weight=1.0 / bandwidth)
        return link

    @classmethod
    def star(
        cls,
        env: Environment,
        center: str,
        leaves: Iterable[str],
        bandwidth: float,
        latency: float = 0.0,
        center_cores: int = 4,
        leaf_cores: int = 1,
    ) -> "Network":
        """Build the evaluation topology: sources around a central node."""
        net = cls(env)
        net.create_host(center, cores=center_cores)
        for leaf in leaves:
            net.create_host(leaf, cores=leaf_cores)
            net.connect(leaf, center, bandwidth, latency)
        return net

    @classmethod
    def chain(
        cls,
        env: Environment,
        names: List[str],
        bandwidth: float,
        latency: float = 0.0,
    ) -> "Network":
        """Build a linear pipeline topology (source -> ... -> sink)."""
        if len(names) < 2:
            raise TopologyError("chain needs at least two hosts")
        net = cls(env)
        for name in names:
            net.create_host(name)
        for a, b in zip(names, names[1:]):
            net.connect(a, b, bandwidth, latency)
        return net

    # -- lookup ---------------------------------------------------------------

    @property
    def hosts(self) -> Dict[str, Host]:
        """Name -> host mapping (read-only view by convention)."""
        return self._hosts

    def host(self, name: str) -> Host:
        """Return the host called ``name``."""
        return self._require_host(name)

    def link(self, src: str, dst: str) -> Link:
        """Return the direct link ``src -> dst``."""
        self._require_host(src)
        self._require_host(dst)
        data = self._graph.get_edge_data(src, dst)
        if data is None:
            raise TopologyError(f"no link {src!r} -> {dst!r}")
        return data["link"]

    def has_link(self, src: str, dst: str) -> bool:
        return self._graph.has_edge(src, dst)

    # -- routing ---------------------------------------------------------------

    def route(self, src: str, dst: str) -> List[Link]:
        """Links along the max-bandwidth (min sum of 1/bw) path src -> dst."""
        self._require_host(src)
        self._require_host(dst)
        if src == dst:
            return []
        try:
            path = nx.shortest_path(self._graph, src, dst, weight="weight")
        except nx.NetworkXNoPath:
            raise TopologyError(f"no route {src!r} -> {dst!r}") from None
        return [self._graph.edges[a, b]["link"] for a, b in zip(path, path[1:])]

    def path_bandwidth(self, src: str, dst: str) -> float:
        """Bottleneck bandwidth along the routed path (inf for src==dst)."""
        links = self.route(src, dst)
        if not links:
            return math.inf
        return min(link.bandwidth for link in links)

    def path_latency(self, src: str, dst: str) -> float:
        """Total propagation latency along the routed path."""
        return sum(link.latency for link in self.route(src, dst))

    def neighbors(self, name: str) -> List[str]:
        """Successor host names of ``name``."""
        self._require_host(name)
        return list(self._graph.successors(name))

    def edges(self) -> List[Tuple[str, str, Link]]:
        """All (src, dst, link) triples."""
        return [(u, v, d["link"]) for u, v, d in self._graph.edges(data=True)]

    def _require_host(self, name: str) -> Host:
        host = self._hosts.get(name)
        if host is None:
            raise TopologyError(f"unknown host {name!r}")
        return host

    def __repr__(self) -> str:
        return (
            f"Network(hosts={len(self._hosts)}, "
            f"links={self._graph.number_of_edges()})"
        )
