"""Simulated compute hosts with CPU cost models.

A :class:`Host` is where a GATES stage executes.  The paper's evaluation
varies per-byte post-processing cost (Figure 8: 1–20 ms/byte) and implicitly
the compute available near sources, so the host model exposes:

* a :class:`CpuCostModel` translating work (items/bytes) into seconds,
* a core pool (:class:`~repro.simnet.resources.CapacityResource`) so that
  co-located stages contend for CPU,
* a speed factor so heterogeneous grids can be assembled (Section 3.1's
  "heterogeneous resources" goal).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from repro.simnet.engine import Environment, Event
from repro.simnet.resources import CapacityResource

__all__ = ["CpuCostModel", "Host", "HostFailedError"]


class HostFailedError(Exception):
    """Raised when work is submitted to (or running on) a failed host."""


@dataclass(frozen=True)
class CpuCostModel:
    """Affine cost model for a unit of stage work.

    ``seconds = fixed + per_item * items + per_byte * bytes``

    All coefficients are expressed for a host with ``speed_factor == 1.0``;
    the host divides by its speed factor.  The per-byte term is the paper's
    "ms/byte" post-processing knob.
    """

    fixed: float = 0.0
    per_item: float = 0.0
    per_byte: float = 0.0

    def __post_init__(self) -> None:
        if self.fixed < 0 or self.per_item < 0 or self.per_byte < 0:
            raise ValueError(f"cost coefficients must be >= 0: {self}")

    def cost(self, items: float = 0.0, nbytes: float = 0.0) -> float:
        """Seconds of CPU time for ``items`` items / ``nbytes`` bytes."""
        if items < 0 or nbytes < 0:
            raise ValueError("work amounts must be >= 0")
        return self.fixed + self.per_item * items + self.per_byte * nbytes

    @property
    def is_free(self) -> bool:
        """True when every unit of work costs exactly zero seconds.

        Runtimes use this to skip the per-item cost computation on their
        batched fast paths; a frozen all-zero model can never start
        charging mid-run.
        """
        return self.fixed == 0.0 and self.per_item == 0.0 and self.per_byte == 0.0


class Host:
    """A compute node in the simulated grid.

    Parameters
    ----------
    env:
        Owning environment.
    name:
        Unique diagnostic name (the grid registry keys on it).
    cores:
        Number of CPU cores; stage work serializes beyond this.
    speed_factor:
        Relative speed (2.0 executes a given cost model twice as fast).
    memory_mb:
        Advertised memory, used by the resource matchmaker only.
    """

    def __init__(
        self,
        env: Environment,
        name: str,
        cores: int = 1,
        speed_factor: float = 1.0,
        memory_mb: float = 1024.0,
    ) -> None:
        if speed_factor <= 0:
            raise ValueError(f"speed_factor must be > 0, got {speed_factor}")
        if memory_mb <= 0:
            raise ValueError(f"memory_mb must be > 0, got {memory_mb}")
        self.env = env
        self.name = name
        self.cores = cores
        self.speed_factor = float(speed_factor)
        self.memory_mb = float(memory_mb)
        self.cpu = CapacityResource(env, capacity=cores)
        self.busy_time = 0.0
        #: True while the host is failed (crash-stop model); work
        #: submitted while failed raises :class:`HostFailedError`.
        self.failed = False

    def execute(
        self,
        cost_model: CpuCostModel,
        items: float = 0.0,
        nbytes: float = 0.0,
        seconds: Optional[float] = None,
    ) -> Event:
        """Run a unit of work on this host; event fires on completion.

        Either pass ``items``/``nbytes`` to be priced by ``cost_model``, or
        an explicit ``seconds`` override (still scaled by speed factor).
        The work holds one core for its duration, so concurrent stages on
        the same host contend realistically.
        """
        raw = cost_model.cost(items, nbytes) if seconds is None else float(seconds)
        if raw < 0:
            raise ValueError(f"work duration must be >= 0, got {raw}")
        duration = raw / self.speed_factor
        return self.env.process(self._execute_proc(duration), name=f"{self.name}.exec")

    def fail(self) -> None:
        """Crash-stop the host; subsequent (and in-flight) work errors."""
        self.failed = True

    def recover(self) -> None:
        """Bring the host back (fresh, with no carried-over work)."""
        self.failed = False

    def _execute_proc(self, duration: float) -> Generator:
        if self.failed:
            raise HostFailedError(f"host {self.name!r} is down")
        grant = self.cpu.acquire()
        yield grant
        try:
            yield self.env.timeout(duration)
            if self.failed:
                raise HostFailedError(
                    f"host {self.name!r} failed while executing"
                )
            self.busy_time += duration
        finally:
            self.cpu.release(grant)
        return duration

    def utilization(self, elapsed: Optional[float] = None) -> float:
        """Busy core-seconds divided by available core-seconds."""
        elapsed = self.env.now if elapsed is None else elapsed
        if elapsed <= 0:
            return 0.0
        return self.busy_time / (elapsed * self.cores)

    def __repr__(self) -> str:
        return (
            f"Host({self.name!r}, cores={self.cores}, "
            f"speed={self.speed_factor}, mem={self.memory_mb}MB)"
        )
