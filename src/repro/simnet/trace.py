"""Time-series recording and statistics for experiments.

The evaluation figures are time series (Figures 8/9: adjustment-parameter
value over time) and aggregate rows (Figure 5 table, Figures 6/7 bars).
:class:`TimeSeries` records (time, value) samples; :class:`EventLog`
records structured events; :class:`StatSummary` reduces a series to the
numbers the harness prints.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = ["EventLog", "StatSummary", "TimeSeries"]


@dataclass(frozen=True)
class StatSummary:
    """Five-number-ish summary of a sample set."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float

    @classmethod
    def of(cls, values: Sequence[float]) -> "StatSummary":
        """Compute a summary; empty input yields a zeroed summary."""
        n = len(values)
        if n == 0:
            return cls(0, 0.0, 0.0, 0.0, 0.0)
        mean = sum(values) / n
        var = sum((v - mean) ** 2 for v in values) / n
        return cls(n, mean, math.sqrt(var), min(values), max(values))


def percentile(
    values: Sequence[float], q: float, default: Optional[float] = None
) -> float:
    """The q-th percentile (0-100) by linear interpolation.

    Latency reporting uses p50/p95/p99; defined here rather than via
    numpy so small sample sets behave predictably in tests.

    Empty-input contract (shared by every percentile surface in the
    repo): an empty sample set **raises** ``ValueError`` unless the
    caller opts into a fallback with ``default`` — reporting layers
    (``StageStats.latency_percentiles``, ``Histogram.percentiles``,
    ``repro report``) pass ``default=0.0`` so empty stages render as
    zeros, while analysis code that would silently compute on nothing
    fails loudly.
    """
    if not values:
        if default is not None:
            return float(default)
        raise ValueError("percentile of empty sample set")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = q / 100.0 * (len(ordered) - 1)
    lower = int(rank)
    upper = min(lower + 1, len(ordered) - 1)
    fraction = rank - lower
    return ordered[lower] + (ordered[upper] - ordered[lower]) * fraction


class TimeSeries:
    """An append-only sequence of (time, value) samples.

    Times must be non-decreasing (simulation time only moves forward);
    violating that raises immediately, which catches model bugs early.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._times: List[float] = []
        self._values: List[float] = []

    def record(self, time: float, value: float) -> None:
        """Append one sample."""
        if self._times and time < self._times[-1]:
            raise ValueError(
                f"time went backwards in series {self.name!r}: "
                f"{time} < {self._times[-1]}"
            )
        self._times.append(float(time))
        self._values.append(float(value))

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self) -> Iterator[Tuple[float, float]]:
        return iter(zip(self._times, self._values))

    @property
    def times(self) -> List[float]:
        return list(self._times)

    @property
    def values(self) -> List[float]:
        return list(self._values)

    def last(self) -> Tuple[float, float]:
        """Most recent (time, value) sample."""
        if not self._values:
            raise IndexError(f"series {self.name!r} is empty")
        return self._times[-1], self._values[-1]

    def value_at(self, time: float) -> float:
        """Value of the step function defined by samples, at ``time``.

        Uses the most recent sample at or before ``time``; asking before
        the first sample is an error.
        """
        if not self._times or time < self._times[0]:
            raise ValueError(f"no sample at or before t={time} in {self.name!r}")
        lo, hi = 0, len(self._times) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self._times[mid] <= time:
                lo = mid
            else:
                hi = mid - 1
        return self._values[lo]

    def tail(self, fraction: float = 0.25) -> List[float]:
        """The last ``fraction`` of the samples (at least one if non-empty)."""
        if not 0 < fraction <= 1:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        if not self._values:
            return []
        k = max(1, int(len(self._values) * fraction))
        return self._values[-k:]

    def tail_mean(self, fraction: float = 0.25) -> float:
        """Mean of the tail — the 'converged-to' value in Figures 8/9."""
        tail = self.tail(fraction)
        if not tail:
            raise ValueError(f"series {self.name!r} is empty")
        return sum(tail) / len(tail)

    def summary(self) -> StatSummary:
        return StatSummary.of(self._values)

    def converged(self, fraction: float = 0.25, tolerance: float = 0.05) -> bool:
        """True if the tail's spread is within ``tolerance`` of its mean.

        This is the convergence criterion the experiment harness uses when
        reporting the plateau values of Figures 8 and 9.  For a tail mean
        of ~0, an absolute tolerance is applied instead.
        """
        tail = self.tail(fraction)
        if len(tail) < 2:
            return False
        mean = sum(tail) / len(tail)
        spread = max(tail) - min(tail)
        scale = abs(mean) if abs(mean) > 1e-9 else 1.0
        return spread <= tolerance * scale

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation."""
        return {"name": self.name, "times": list(self._times), "values": list(self._values)}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TimeSeries":
        """Inverse of :meth:`to_dict`."""
        series = cls(data.get("name", ""))
        for t, v in zip(data["times"], data["values"]):
            series.record(t, v)
        return series

    def downsample(self, max_points: int) -> "TimeSeries":
        """Uniformly thin the series to at most ``max_points`` samples."""
        if max_points < 1:
            raise ValueError(f"max_points must be >= 1, got {max_points}")
        out = TimeSeries(self.name)
        n = len(self._values)
        if n <= max_points:
            for t, v in self:
                out.record(t, v)
            return out
        step = n / max_points
        idx = 0.0
        while int(idx) < n:
            i = int(idx)
            out.record(self._times[i], self._values[i])
            idx += step
        return out


@dataclass
class EventLog:
    """Structured, time-stamped event records for debugging and assertions.

    Each entry is ``(time, kind, attributes)``.  Tests use it to assert on
    protocol behaviour (e.g. "an over-load exception was reported upstream
    before the parameter dropped").
    """

    entries: List[Tuple[float, str, Dict[str, Any]]] = field(default_factory=list)

    def log(self, time: float, kind: str, **attributes: Any) -> None:
        """Append one event."""
        self.entries.append((float(time), kind, attributes))

    def __len__(self) -> int:
        return len(self.entries)

    def of_kind(self, kind: str) -> List[Tuple[float, Dict[str, Any]]]:
        """All (time, attributes) entries with the given kind."""
        return [(t, attrs) for t, k, attrs in self.entries if k == kind]

    def count(self, kind: str) -> int:
        return sum(1 for _, k, _ in self.entries if k == kind)

    def first(self, kind: str) -> Optional[Tuple[float, Dict[str, Any]]]:
        """Earliest entry of ``kind``, or None."""
        for t, k, attrs in self.entries:
            if k == kind:
                return t, attrs
        return None

    def clear(self) -> None:
        self.entries.clear()
