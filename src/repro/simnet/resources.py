"""Shared-resource primitives for the simulation kernel.

Three primitives cover everything the middleware needs:

* :class:`CapacityResource` — a counted resource (e.g. CPU cores) that
  processes acquire and release; waiters queue FIFO.
* :class:`Store` — an unbounded-or-bounded buffer of Python objects with
  blocking ``put``/``get`` events.
* :class:`BoundedQueue` — a :class:`Store` specialization used as a stage's
  input buffer.  It is the *queue of the server* in the paper's queuing
  model (Section 4.1): it tracks current length ``d``, a sliding window of
  recent lengths (for the recent average ``d̄``), and occupancy statistics,
  which the self-adaptation algorithm consumes.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from repro.simnet.engine import Environment, Event

__all__ = [
    "AcquireRequest",
    "BoundedQueue",
    "CapacityResource",
    "GetRequest",
    "PutRequest",
    "QueueFullError",
    "Store",
]


class QueueFullError(Exception):
    """Raised by non-blocking puts into a full bounded queue."""


class AcquireRequest(Event):
    """Pending acquisition of one unit of a :class:`CapacityResource`.

    Usable as a context manager inside a process::

        req = cpu.acquire()
        yield req
        try:
            yield env.timeout(work)
        finally:
            cpu.release(req)
    """

    def __init__(self, resource: "CapacityResource") -> None:
        super().__init__(resource.env)
        self.resource = resource


class CapacityResource:
    """A resource with ``capacity`` interchangeable units and FIFO waiters.

    Parameters
    ----------
    env:
        Owning environment.
    capacity:
        Number of units (must be >= 1).
    """

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._in_use = 0
        self._waiters: Deque[AcquireRequest] = deque()

    @property
    def in_use(self) -> int:
        """Units currently held."""
        return self._in_use

    @property
    def available(self) -> int:
        """Units currently free."""
        return self.capacity - self._in_use

    @property
    def queue_length(self) -> int:
        """Number of pending acquire requests."""
        return len(self._waiters)

    def acquire(self) -> AcquireRequest:
        """Request one unit; the returned event fires when granted."""
        request = AcquireRequest(self)
        if self._in_use < self.capacity:
            self._in_use += 1
            request.succeed(request)
        else:
            self._waiters.append(request)
        return request

    def release(self, request: AcquireRequest) -> None:
        """Return one unit previously granted to ``request``.

        If the request is still waiting (e.g. the holder was interrupted
        before its grant), it is cancelled instead.
        """
        if not request.triggered:
            try:
                self._waiters.remove(request)
            except ValueError:
                raise ValueError("release() of unknown request") from None
            return
        if self._in_use <= 0:
            raise ValueError("release() without matching acquire")
        self._in_use -= 1
        while self._waiters and self._in_use < self.capacity:
            waiter = self._waiters.popleft()
            self._in_use += 1
            waiter.succeed(waiter)


class PutRequest(Event):
    """Pending insertion of ``item`` into a :class:`Store`."""

    def __init__(self, store: "Store", item: Any) -> None:
        super().__init__(store.env)
        self.item = item


class GetRequest(Event):
    """Pending removal of an item from a :class:`Store`."""

    def __init__(self, store: "Store") -> None:
        super().__init__(store.env)


class Store:
    """A FIFO buffer of Python objects with blocking put/get events.

    ``capacity`` may be ``None`` for an unbounded store.  Puts block while
    the store is full; gets block while it is empty.  Both sides are served
    FIFO, so item ordering is deterministic.
    """

    def __init__(self, env: Environment, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._putters: Deque[PutRequest] = deque()
        self._getters: Deque[GetRequest] = deque()
        #: Optional hook invoked with each item at the moment it enters
        #: the buffer (including blocked puts admitted later).  The
        #: resilient runtime records deliveries into its replay buffer
        #: here — insertion time, not producer-resume time, is what keeps
        #: the record consistent with what a purge() can discard.
        self.on_insert: Optional[Any] = None

    def __len__(self) -> int:
        return len(self._items)

    @property
    def is_full(self) -> bool:
        return self.capacity is not None and len(self._items) >= self.capacity

    @property
    def is_empty(self) -> bool:
        return not self._items

    # -- blocking interface ------------------------------------------------

    def put(self, item: Any) -> PutRequest:
        """Insert ``item``; the returned event fires once it is stored."""
        request = PutRequest(self, item)
        if not self.is_full:
            self._insert(item)
            request.succeed()
        else:
            self._putters.append(request)
        return request

    def get(self) -> GetRequest:
        """Remove the oldest item; the event fires with the item as value."""
        request = GetRequest(self)
        self._serve_getter(request)
        return request

    # -- non-blocking interface ---------------------------------------------

    def try_put(self, item: Any) -> None:
        """Insert ``item`` immediately or raise :class:`QueueFullError`."""
        if self.is_full and not self._getters:
            raise QueueFullError(f"store at capacity {self.capacity}")
        self._insert(item)
        self._drain_getters()

    def force_put(self, item: Any) -> None:
        """Insert ``item`` regardless of capacity.

        Used for in-flight network deliveries: a message already
        transmitted cannot be un-sent, so the receiving queue absorbs it
        even when above capacity.  Load estimators clamp lengths to C, so
        the overflow only saturates (never corrupts) the load signals.
        """
        self._insert(item)

    def try_get(self) -> Any:
        """Remove and return the oldest item or raise ``IndexError``."""
        item = self._items.popleft()
        self._on_length_change()
        self._admit_putters()
        return item

    # -- failover support -----------------------------------------------------

    def purge(self) -> list:
        """Remove and return all queued items without serving waiters.

        Used when a consumer's host crashes: the queued input is *lost*
        (the crash-stop model) and the recovery path re-delivers from its
        replay buffer instead.  Blocked putters are deliberately NOT
        admitted here — replayed (older) messages must re-enter first to
        preserve per-channel FIFO order; the putters drain as the
        restarted consumer makes space.
        """
        purged = list(self._items)
        self._items.clear()
        if purged:
            self._on_length_change()
        return purged

    def requeue(self, item: Any) -> None:
        """Put a just-dequeued ``item`` back at the head of the buffer.

        A consumer superseded by a planned hand-over (live migration)
        between its ``get`` being served and its process resuming gives
        the item back so the replacement consumer sees it first —
        unlike the crash path, nothing will replay it.  The insertion
        hook is deliberately not invoked: the item was already recorded
        when it first entered the buffer.
        """
        self._items.appendleft(item)
        self._on_length_change()
        self._drain_getters()

    def discard_getters(self) -> int:
        """Drop all pending get requests (their requesters are gone).

        A worker that died mid-``get`` leaves its request queued; were it
        left in place it would swallow the first replayed item.  Returns
        the number of requests discarded.
        """
        discarded = len(self._getters)
        self._getters.clear()
        return discarded

    # -- internals -----------------------------------------------------------

    def _insert(self, item: Any) -> None:
        self._items.append(item)
        self._on_length_change()
        if self.on_insert is not None:
            self.on_insert(item)
        self._drain_getters()

    def _serve_getter(self, request: GetRequest) -> None:
        if self._items:
            item = self._items.popleft()
            self._on_length_change()
            request.succeed(item)
            self._admit_putters()
        else:
            self._getters.append(request)

    def _drain_getters(self) -> None:
        while self._getters and self._items:
            getter = self._getters.popleft()
            item = self._items.popleft()
            self._on_length_change()
            getter.succeed(item)

    def _admit_putters(self) -> None:
        while self._putters and not self.is_full:
            putter = self._putters.popleft()
            self._items.append(putter.item)
            self._on_length_change()
            if self.on_insert is not None:
                self.on_insert(putter.item)
            putter.succeed()
            self._drain_getters()

    def admit_waiting(self) -> None:
        """Serve blocked producers/consumers after out-of-band mutation.

        ``purge`` empties the buffer without touching waiters; once a
        failover has refilled it (or decided not to), this re-admits
        blocked putters into the freed space and hands queued items to
        any already-registered getters.
        """
        self._drain_getters()
        self._admit_putters()

    def _on_length_change(self) -> None:
        """Hook for subclasses tracking occupancy; default does nothing."""


class BoundedQueue(Store):
    """A stage input buffer instrumented for the adaptation algorithm.

    This is the queue in the paper's queuing-network model: the adaptation
    algorithm samples its current length ``d``, the recent average ``d̄``
    over a sliding window, and classifies instants as over-/under-loaded.

    Parameters
    ----------
    env:
        Owning environment.
    capacity:
        The queue capacity ``C`` from the paper (required — the adaptation
        formulas normalize by it).
    window:
        Number of recent length samples retained for the recent average
        ``d̄`` (defaults to 64).
    """

    def __init__(self, env: Environment, capacity: int, window: int = 64) -> None:
        if capacity < 1:
            raise ValueError(f"queue capacity C must be >= 1, got {capacity}")
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        super().__init__(env, capacity=capacity)
        self._recent: Deque[int] = deque(maxlen=window)
        self._recent.append(0)
        # Time-weighted occupancy statistics.
        self._t0 = env.now
        self._last_change = env.now
        self._area = 0.0
        self._peak = 0
        self.total_enqueued = 0
        self.total_dequeued = 0

    # -- adaptation-facing accessors ------------------------------------------

    @property
    def current_length(self) -> int:
        """``d`` — instantaneous queue length."""
        return len(self._items)

    @property
    def recent_average(self) -> float:
        """``d̄`` — mean of the lengths sampled over the recent window."""
        return sum(self._recent) / len(self._recent)

    @property
    def peak_length(self) -> int:
        """Largest length ever observed."""
        return self._peak

    def time_average(self, now: Optional[float] = None) -> float:
        """Time-weighted average occupancy since creation."""
        now = self.env.now if now is None else now
        elapsed = now - self._start_time()
        if elapsed <= 0:
            return float(len(self._items))
        area = self._area + len(self._items) * (now - self._last_change)
        return area / elapsed

    def utilization(self) -> float:
        """Time-averaged occupancy as a fraction of capacity."""
        return self.time_average() / float(self.capacity)

    def _start_time(self) -> float:
        return self._t0

    # -- internals -----------------------------------------------------------

    def _on_length_change(self) -> None:
        now = self.env.now
        prev = self._recent[-1] if self._recent else 0
        length = len(self._items)
        self._area += prev * (now - self._last_change)
        self._last_change = now
        self._recent.append(length)
        if length > self._peak:
            self._peak = length
        if length > prev:
            self.total_enqueued += length - prev
        elif length < prev:
            self.total_dequeued += prev - length
