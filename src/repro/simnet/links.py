"""Bandwidth- and latency-modeled network links.

The paper's experiments are parameterized almost entirely by link bandwidth
(1 KB/s … 1 MB/s) — the authors emulated these bandwidths by injecting
delays inside a cluster.  :class:`Link` models exactly that: a FIFO serial
pipe where a message of ``size`` bytes occupies the transmitter for
``size / bandwidth`` seconds and arrives ``latency`` seconds after its last
byte leaves.  :class:`TokenBucket` provides the rate-limiting primitive the
real-thread runtime uses for the same purpose.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Optional

from repro.simnet.engine import Environment, Event
from repro.simnet.resources import CapacityResource, Store

__all__ = ["Link", "LinkStats", "Message", "TokenBucket", "TransmissionError"]


class TransmissionError(Exception):
    """A message was lost in transit (transient fault; see ``set_loss``).

    The sender's ``send`` event fails with this exception after the full
    transmission time has been spent — the bandwidth was consumed, the
    message was not delivered.  Senders that care retry (the runtime's
    bounded retry-with-backoff path in
    :mod:`repro.core.runtime_sim`); senders that don't will see the
    exception propagate out of their process.
    """


@dataclass
class Message:
    """A unit of data in flight between two stages.

    Attributes
    ----------
    payload:
        Arbitrary application data.
    size:
        Size in bytes used for transmission-time accounting.
    sent_at:
        Simulation time the message entered the link (stamped by the link).
    seq:
        Per-link sequence number (stamped by the link).
    """

    payload: Any
    size: float
    sent_at: float = 0.0
    seq: int = -1


@dataclass
class LinkStats:
    """Aggregate counters for a :class:`Link`."""

    messages: int = 0
    bytes: float = 0.0
    busy_time: float = 0.0
    total_latency: float = 0.0
    last_delivery: float = field(default=0.0)

    def mean_latency(self) -> float:
        """Mean end-to-end delay per delivered message."""
        return self.total_latency / self.messages if self.messages else 0.0

    def throughput(self, elapsed: float) -> float:
        """Delivered bytes per second over ``elapsed`` seconds."""
        return self.bytes / elapsed if elapsed > 0 else 0.0


class Link:
    """A serial FIFO link with finite bandwidth and propagation latency.

    Parameters
    ----------
    env:
        Owning environment.
    bandwidth:
        Bytes per second (may be ``math.inf`` for an ideal link).
    latency:
        Propagation delay in seconds added after transmission.
    name:
        Diagnostic label.

    Semantics
    ---------
    ``send(payload, size)`` returns a process-event that completes when the
    message has been fully *transmitted* (sender-side blocking, which is
    what creates back-pressure on upstream stages exactly as a saturated
    socket would).  Delivery into the receiver-side :class:`Store` happens
    ``latency`` seconds later; messages are delivered in order.
    """

    def __init__(
        self,
        env: Environment,
        bandwidth: float,
        latency: float = 0.0,
        name: str = "link",
    ) -> None:
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be > 0, got {bandwidth}")
        if latency < 0:
            raise ValueError(f"latency must be >= 0, got {latency}")
        self.env = env
        self.bandwidth = float(bandwidth)
        self.latency = float(latency)
        self.name = name
        self.stats = LinkStats()
        self._tx = CapacityResource(env, capacity=1)
        self._delivered: Store = Store(env)
        self._seq = 0
        #: Optional callback invoked with each delivered Message.
        self.on_delivery: Optional[Callable[[Message], None]] = None
        #: When False, delivered messages are not queued into the inbox
        #: (stats and callbacks still fire).  Consumers that track their
        #: own deliveries (the stage runtime) disable collection so that
        #: unrelated traffic sharing the link (cross-traffic) can never
        #: interleave with theirs — and the inbox cannot grow unboundedly.
        self.collect_inbox: bool = True
        #: Transient-loss injection (0 = lossless; see :meth:`set_loss`).
        self.loss_rate: float = 0.0
        self._loss_rng: Optional[random.Random] = None
        #: Messages dropped by loss injection (diagnostic counter).
        self.losses: int = 0

    def set_loss(self, rate: float, seed: int = 0) -> None:
        """Drop each transmitted message independently with ``rate``.

        Models transient wire faults: the transmission occupies the link
        for its full time, then the sender's ``send`` event *fails* with
        :class:`TransmissionError` instead of delivering.  Deterministic
        given ``seed``.
        """
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"loss rate must be in [0, 1), got {rate}")
        self.loss_rate = float(rate)
        self._loss_rng = random.Random(seed) if rate > 0 else None

    @property
    def inbox(self) -> Store:
        """Receiver-side store of delivered messages."""
        return self._delivered

    def transmission_time(self, size: float) -> float:
        """Seconds the transmitter is occupied by ``size`` bytes."""
        if math.isinf(self.bandwidth):
            return 0.0
        return size / self.bandwidth

    def bind_metrics(self, registry) -> None:
        """Publish this link's counters into a metrics registry.

        Registers callback gauges (``link.<name>.tx_busy`` / ``.bytes`` /
        ``.messages``) that read the live :class:`LinkStats` at export
        time — zero per-message overhead.  Idempotent: re-binding the
        same link to the same registry is a no-op (get-or-create).
        """
        prefix = f"link.{self.name}"
        registry.gauge(f"{prefix}.tx_busy", fn=lambda: self.stats.busy_time)
        registry.gauge(f"{prefix}.bytes", fn=lambda: self.stats.bytes)
        registry.gauge(f"{prefix}.messages", fn=lambda: float(self.stats.messages))

    def set_bandwidth(self, bandwidth: float) -> None:
        """Change the link's bandwidth at runtime.

        Models varying resource availability (the paper's premise is
        adaptation "as resource availability is varied widely").  Only
        messages whose transmission starts after the change see the new
        rate; an in-flight transmission completes at the old one.
        """
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be > 0, got {bandwidth}")
        self.bandwidth = float(bandwidth)

    def send(self, payload: Any, size: float) -> Event:
        """Transmit ``payload`` of ``size`` bytes; event fires at TX done."""
        if size < 0:
            raise ValueError(f"message size must be >= 0, got {size}")
        message = Message(payload=payload, size=float(size))
        return self.env.process(self._send_proc(message), name=f"{self.name}.send")

    def _send_proc(self, message: Message) -> Generator:
        grant = self._tx.acquire()
        yield grant
        try:
            message.sent_at = self.env.now
            message.seq = self._seq
            self._seq += 1
            tx_time = self.transmission_time(message.size)
            yield self.env.timeout(tx_time)
            self.stats.busy_time += tx_time
        finally:
            self._tx.release(grant)
        if self._loss_rng is not None and self._loss_rng.random() < self.loss_rate:
            self.losses += 1
            raise TransmissionError(
                f"{self.name}: message seq={message.seq} lost in transit"
            )
        self.env.process(self._deliver_proc(message), name=f"{self.name}.deliver")
        return message

    def _deliver_proc(self, message: Message) -> Generator:
        if self.latency:
            yield self.env.timeout(self.latency)
        self.stats.messages += 1
        self.stats.bytes += message.size
        self.stats.total_latency += self.env.now - message.sent_at
        self.stats.last_delivery = self.env.now
        if self.collect_inbox:
            self._delivered.try_put(message)
        if self.on_delivery is not None:
            self.on_delivery(message)
        # Make this generator a generator even on zero-latency paths.
        if False:  # pragma: no cover
            yield

    def receive(self) -> Event:
        """Event yielding the next delivered :class:`Message` (FIFO)."""
        return self._delivered.get()

    def utilization(self, elapsed: Optional[float] = None) -> float:
        """Fraction of time the transmitter was busy."""
        elapsed = self.env.now if elapsed is None else elapsed
        return self.stats.busy_time / elapsed if elapsed > 0 else 0.0


class TokenBucket:
    """Classic token-bucket rate limiter (wall-clock based).

    Used by the real-thread runtime (:mod:`repro.core.runtime_threads`) to
    emulate a bandwidth-limited link the same way the paper injected delay
    into its cluster network.  ``consume(n)`` returns the number of seconds
    the caller should sleep before the n tokens are considered available.

    Parameters
    ----------
    rate:
        Token refill rate (tokens/second); tokens map to bytes.
    burst:
        Bucket depth.  Defaults to one second worth of tokens.
    clock:
        Injected time source (monotonic seconds); defaults are supplied by
        the caller so the class itself stays deterministic and testable.
    """

    def __init__(
        self,
        rate: float,
        burst: Optional[float] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None else float(rate)
        if self.burst <= 0:
            raise ValueError(f"burst must be > 0, got {burst}")
        self._clock = clock if clock is not None else (lambda: 0.0)
        self._tokens = self.burst
        self._last = self._clock()

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._last)
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._last = now

    @property
    def tokens(self) -> float:
        """Tokens currently available (after refill at the injected clock)."""
        self._refill(self._clock())
        return self._tokens

    def consume(self, amount: float) -> float:
        """Debit ``amount`` tokens; return seconds to wait until covered.

        The debit always happens (the bucket may go negative), which gives
        long-run average rate exactly ``rate`` even for messages larger
        than the burst size.
        """
        if amount < 0:
            raise ValueError(f"amount must be >= 0, got {amount}")
        now = self._clock()
        self._refill(now)
        self._tokens -= amount
        if self._tokens >= 0:
            return 0.0
        return -self._tokens / self.rate
