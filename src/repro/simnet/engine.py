"""Generator-based discrete-event simulation kernel.

This module implements the minimal event-driven core that every simulated
subsystem in the reproduction is built on.  The design follows the classic
process-interaction style (as popularized by SimPy, re-implemented here from
scratch so the repository is self-contained):

* An :class:`Environment` owns the simulation clock and a priority queue of
  scheduled events.
* An :class:`Event` is a one-shot occurrence that callbacks can be attached
  to.  Events succeed with a value or fail with an exception.
* A :class:`Process` wraps a Python generator.  The generator *yields*
  events; the process is suspended until the yielded event fires, at which
  point the event's value (or exception) is sent (or thrown) back into the
  generator.
* :class:`Timeout` is an event that fires after a fixed delay --- the basic
  way processes let simulated time pass.
* :class:`AllOf` / :class:`AnyOf` compose events.
* Processes can be :meth:`Process.interrupt`-ed, which raises
  :class:`Interrupt` inside the generator at its current suspension point.

Determinism
-----------
Events scheduled for the same simulation time fire in FIFO order of
scheduling (a monotonically increasing sequence number breaks ties), so a
simulation run is a pure function of its inputs and any random seeds used by
the model code.  This is what makes the paper's experiments repeatable here,
in contrast to the JVM-thread-scheduler noise the authors mention.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "StopProcess",
    "Timeout",
]


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel itself.

    Examples: triggering an already-triggered event, yielding a non-event
    from a process generator, or running an environment whose queue is
    corrupt.  Model-level failures should use their own exception types and
    travel through events via :meth:`Event.fail`.
    """


class StopProcess(Exception):
    """Raised internally to stop a process early with a return value."""

    def __init__(self, value: Any = None) -> None:
        super().__init__(value)
        self.value = value


class Interrupt(Exception):
    """Raised inside a process generator when it is interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.  A process may catch :class:`Interrupt` and
    continue; uncaught, it terminates the process with this exception.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


# Sentinel distinguishing "not yet triggered" from "triggered with None".
_PENDING = object()


class Event:
    """A one-shot occurrence on the simulation timeline.

    An event starts *pending*.  Calling :meth:`succeed` or :meth:`fail`
    *triggers* it, scheduling its callbacks to run at the current simulation
    time.  Processes wait on events by yielding them.

    Attributes
    ----------
    env:
        The owning :class:`Environment`.
    callbacks:
        List of callables invoked with the event once it has been processed.
        ``None`` after processing (late callbacks run immediately).
    """

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        #: Set True when a failure has been consumed (by a waiting process
        #: or an explicit ``defused`` assignment); undefused failures are
        #: re-raised by Environment.step() so errors are never silent.
        self.defused = False

    # -- state ---------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once succeed/fail has been called."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise SimulationError("event not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception instance if it failed)."""
        if self._value is _PENDING:
            raise SimulationError("event not yet triggered")
        return self._value

    # -- triggering ----------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception``.

        The exception propagates into any process waiting on this event.
        If nobody consumes it, the environment re-raises it at step time.
        """
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        self.env._schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another event (chaining)."""
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)

    # -- callback plumbing ----------------------------------------------

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Attach ``callback``; runs immediately if already processed."""
        if self.callbacks is None:
            callback(self)
        else:
            self.callbacks.append(callback)

    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.env, [self, other])

    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.env, [self, other])

    def __repr__(self) -> str:
        state = "pending"
        if self.triggered:
            state = "ok" if self._ok else "failed"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env._schedule(self, delay=delay)

    def succeed(self, value: Any = None) -> "Event":  # pragma: no cover
        raise SimulationError("Timeout events trigger themselves")

    def fail(self, exception: BaseException) -> "Event":  # pragma: no cover
        raise SimulationError("Timeout events trigger themselves")


class Initialize(Event):
    """Internal event that starts a process at the current time."""

    def __init__(self, env: "Environment", process: "Process") -> None:
        super().__init__(env)
        self.callbacks.append(process._resume)
        self._ok = True
        self._value = None
        env._schedule(self, priority=0)


class Process(Event):
    """A running simulation process wrapping a generator.

    A process is itself an event: it triggers when the generator returns
    (successfully, with the generator's return value) or raises (failed).
    Other processes can therefore ``yield proc`` to join on it.
    """

    def __init__(self, env: "Environment", generator: Generator, name: str = "") -> None:
        if not hasattr(generator, "throw"):
            raise SimulationError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: The event this process is currently suspended on (None if running
        #: or terminated).
        self._target: Optional[Event] = None
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not terminated."""
        return self._value is _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Raise :class:`Interrupt` inside the process at its wait point.

        Interrupting a terminated process is an error; interrupting a
        process that is currently scheduled to resume is allowed (the
        interrupt is delivered first).
        """
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt dead process {self.name!r}")
        if self._target is self:
            raise SimulationError("a process cannot interrupt itself")
        failure = Event(self.env)
        failure._ok = False
        failure._value = Interrupt(cause)
        failure.defused = True
        failure.callbacks.append(self._resume)
        self.env._schedule(failure, priority=0)

    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``."""
        self.env._active_process = self
        # Detach from the event we were waiting on (if any): when an
        # interrupt arrives the original target may fire later, and must
        # not resume us a second time.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None
        try:
            if event._ok:
                next_event = self._generator.send(event._value)
            else:
                event.defused = True
                exc = event._value
                next_event = self._generator.throw(type(exc), exc, None)
        except StopIteration as stop:
            self.env._active_process = None
            self._terminate_ok(stop.value)
            return
        except StopProcess as stop:
            self.env._active_process = None
            self._generator.close()
            self._terminate_ok(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - model errors flow via events
            self.env._active_process = None
            self._terminate_fail(exc)
            return
        self.env._active_process = None
        if not isinstance(next_event, Event):
            err = SimulationError(
                f"process {self.name!r} yielded non-event {next_event!r}"
            )
            self._terminate_fail(err)
            return
        if next_event.env is not self.env:
            self._terminate_fail(
                SimulationError("yielded event belongs to a different environment")
            )
            return
        self._target = next_event
        next_event.add_callback(self._resume)

    def _terminate_ok(self, value: Any) -> None:
        if self._value is _PENDING:
            self._ok = True
            self._value = value
            self.env._schedule(self)

    def _terminate_fail(self, exc: BaseException) -> None:
        if self._value is _PENDING:
            self._ok = False
            self._value = exc
            self.env._schedule(self)


class Condition(Event):
    """Base for composite events over a set of sub-events."""

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self.events = list(events)
        self._remaining = len(self.events)
        for event in self.events:
            if event.env is not env:
                raise SimulationError("condition spans multiple environments")
        if not self.events:
            self.succeed({})
            return
        for event in self.events:
            event.add_callback(self._check)

    def _collect_values(self) -> dict[Event, Any]:
        return {e: e._value for e in self.events if e.processed and e._ok}

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(Condition):
    """Fires when *all* sub-events have fired; value maps event -> value."""

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event.defused = True
            self.fail(event._value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed({e: e._value for e in self.events})


class AnyOf(Condition):
    """Fires when *any* sub-event fires; value maps fired events -> values."""

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event.defused = True
            self.fail(event._value)
            return
        self.succeed({e: e._value for e in self.events if e.processed and e._ok})


class Environment:
    """Owner of the simulation clock and the scheduled-event queue.

    Parameters
    ----------
    initial_time:
        Starting value of the clock (default 0.0).

    Examples
    --------
    >>> env = Environment()
    >>> log = []
    >>> def proc(env):
    ...     yield env.timeout(2.5)
    ...     log.append(env.now)
    >>> _ = env.process(proc(env))
    >>> env.run()
    >>> log
    [2.5]
    """

    #: Priority for "urgent" events (initialization, interrupts) that must
    #: run before normal events scheduled at the same time.
    _URGENT = 0
    _NORMAL = 1

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._eid = itertools.count()
        self._active_process: Optional[Process] = None

    # -- clock -----------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- event factories ---------------------------------------------------

    def event(self) -> Event:
        """Create a new pending :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create a :class:`Timeout` firing after ``delay``."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start a new :class:`Process` from ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling / execution -------------------------------------------

    def _schedule(self, event: Event, delay: float = 0.0, priority: int = _NORMAL) -> None:
        heapq.heappush(self._queue, (self._now + delay, priority, next(self._eid), event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the next scheduled event.

        Raises the event's exception if it failed and nothing defused it —
        errors in model code are therefore loud by default.
        """
        if not self._queue:
            raise SimulationError("step() on empty schedule")
        self._now, _, _, event = heapq.heappop(self._queue)
        callbacks, event.callbacks = event.callbacks, None
        if callbacks is None:
            raise SimulationError(f"{event!r} processed twice")
        for callback in callbacks:
            callback(event)
        if not event._ok and not event.defused:
            exc = event._value
            raise exc

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None`` — run until no events remain.
            a number — run until the clock reaches that time.
            an :class:`Event` — run until that event is processed and
            return its value (raising if it failed).
        """
        if until is None:
            while self._queue:
                self.step()
            return None
        if isinstance(until, Event):
            stop: dict[str, Any] = {}

            def _done(event: Event) -> None:
                stop["event"] = event

            until.add_callback(_done)
            while self._queue and "event" not in stop:
                self.step()
            if "event" not in stop:
                raise SimulationError("run(until=event): schedule drained first")
            if not until._ok:
                until.defused = True
                raise until._value
            return until._value
        horizon = float(until)
        if horizon < self._now:
            raise SimulationError(
                f"run(until={horizon}) is in the past (now={self._now})"
            )
        while self._queue and self._queue[0][0] <= horizon:
            self.step()
        self._now = horizon
        return None
