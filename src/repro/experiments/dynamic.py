"""Extension experiment: re-convergence under dynamic resource changes.

The paper's second headline claim is that "self-adaptation can help choose
a balance between performance and accuracy, *even as resource availability
is varied widely*" — but its evaluation only varies resources *across*
runs.  This extension varies them *within* a run: the comp-steer link's
bandwidth is stepped through a schedule mid-experiment, and the measured
output is the sampling-rate trajectory, which should re-converge to each
new feasible rate.

Run: ``python -m repro.experiments.dynamic``
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional, Sequence, Tuple

from repro.apps import comp_steer as comp_steer_app
from repro.core.runtime_sim import SimulatedRuntime, SourceBinding
from repro.experiments.common import _continuous_mesh_values, build_star_fabric

__all__ = ["DynamicBandwidthResult", "main", "run_dynamic_bandwidth"]

#: Default schedule: (time, bandwidth) steps — a fat link degrades to a
#: quarter of the generation rate, then partially recovers.
DEFAULT_SCHEDULE: Sequence[Tuple[float, float]] = (
    (0.0, 40_000.0),
    (200.0, 10_000.0),
    (400.0, 20_000.0),
)
GENERATION_RATE = 40_000.0
ITEM_BYTES = 200.0


@dataclass
class DynamicBandwidthResult:
    """Trajectory plus the plateau measured in each schedule phase."""

    schedule: List[Tuple[float, float]]
    series: List[Tuple[float, float]]
    phase_plateaus: List[Tuple[float, float, float]]  # (bw, feasible, measured)


def run_dynamic_bandwidth(
    schedule: Optional[Sequence[Tuple[float, float]]] = None,
    duration_seconds: float = 600.0,
    generation_rate: float = GENERATION_RATE,
    seed: int = 0,
) -> DynamicBandwidthResult:
    """Run comp-steer while the link bandwidth follows ``schedule``."""
    schedule = list(DEFAULT_SCHEDULE if schedule is None else schedule)
    if not schedule or schedule[0][0] != 0.0:
        raise ValueError("schedule must start at time 0")
    times = [t for t, _ in schedule]
    if times != sorted(times):
        raise ValueError("schedule times must be increasing")
    if duration_seconds <= times[-1]:
        raise ValueError("duration must extend past the last schedule step")

    fabric = build_star_fabric(1, bandwidth=schedule[0][1])
    config = comp_steer_app.build_comp_steer_config(
        simulation_host=fabric.source_hosts[0],
        initial_rate=0.5,
        analysis_ms_per_byte=0.01,
        item_bytes=ITEM_BYTES,
        analysis_host=fabric.center_host,
    )
    deployment = fabric.launcher.launch(config)
    runtime = SimulatedRuntime(fabric.env, fabric.network, deployment)
    runtime.bind_source(
        SourceBinding(
            name="simulation", target_stage="sampler",
            payloads=_continuous_mesh_values(seed),
            rate=generation_rate / ITEM_BYTES, item_size=ITEM_BYTES,
        )
    )

    link = fabric.network.link(fabric.source_hosts[0], fabric.center_host)

    def _vary(env) -> Generator:
        for step_time, bandwidth in schedule[1:]:
            yield env.timeout(step_time - env.now)
            link.set_bandwidth(bandwidth)

    fabric.env.process(_vary(fabric.env), name="bandwidth-schedule")
    result = runtime.run(stop_at=duration_seconds)
    series = result.parameter_series("sampler", "sampling-rate")

    plateaus: List[Tuple[float, float, float]] = []
    boundaries = times[1:] + [duration_seconds]
    for (start, bandwidth), end in zip(schedule, boundaries):
        # Plateau = mean over the last third of the phase (settled part).
        window_start = start + 2.0 * (end - start) / 3.0
        values = [v for t, v in series if window_start <= t < end]
        measured = sum(values) / len(values) if values else float("nan")
        feasible = min(1.0, bandwidth / generation_rate)
        plateaus.append((bandwidth, feasible, measured))
    return DynamicBandwidthResult(
        schedule=schedule, series=list(series), phase_plateaus=plateaus
    )


def main() -> DynamicBandwidthResult:
    result = run_dynamic_bandwidth()
    print("Dynamic bandwidth: sampling-rate re-convergence per phase")
    print(f"{'bandwidth':>12} {'feasible':>9} {'measured':>9}")
    for bandwidth, feasible, measured in result.phase_plateaus:
        print(f"{bandwidth/1000:>10.0f}KB {feasible:>9.3f} {measured:>9.3f}")
    return result


if __name__ == "__main__":
    main()
