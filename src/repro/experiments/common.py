"""Shared fabric builders and application runners for the experiments.

The paper's testbed is a star: N stream-source machines around one central
analysis machine, links emulated at a configurable bandwidth.
:func:`build_star_fabric` assembles the simulated equivalent (network +
registry + repository + deployer + launcher) and
:func:`run_count_samps_distributed` / :func:`run_count_samps_centralized` /
:func:`run_comp_steer` execute one configured run and return the measured
quantities the figures plot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.apps import comp_steer as comp_steer_app
from repro.apps import count_samps as count_samps_app
from repro.apps import intrusion as intrusion_app
from repro.core.adaptation.policy import AdaptationPolicy
from repro.core.results import RunResult
from repro.core.runtime_sim import SimulatedRuntime, SourceBinding
from repro.grid.deployer import Deployer
from repro.grid.launcher import Launcher
from repro.grid.registry import ServiceRegistry
from repro.grid.repository import CodeRepository
from repro.metrics import topk_accuracy
from repro.simnet.engine import Environment
from repro.simnet.topology import Network
from repro.streams.sources import IntegerStream, MeshStream

__all__ = [
    "CountSampsRun",
    "GridFabric",
    "build_star_fabric",
    "run_comp_steer",
    "run_count_samps_centralized",
    "run_count_samps_distributed",
]


@dataclass
class GridFabric:
    """One assembled simulated grid."""

    env: Environment
    network: Network
    registry: ServiceRegistry
    repository: CodeRepository
    deployer: Deployer
    launcher: Launcher
    source_hosts: List[str]
    center_host: str


def build_star_fabric(
    n_sources: int,
    bandwidth: float,
    latency: float = 0.0,
    center: str = "central",
    center_cores: int = 4,
) -> GridFabric:
    """The paper's testbed shape: N sources star-connected to a center.

    ``bandwidth`` is bytes/second on each source->center link (the paper
    sweeps 1 KB/s ... 1 MB/s).
    """
    if n_sources < 1:
        raise ValueError(f"n_sources must be >= 1, got {n_sources}")
    env = Environment()
    source_hosts = [f"source-{i}" for i in range(n_sources)]
    network = Network.star(
        env, center, source_hosts, bandwidth=bandwidth, latency=latency,
        center_cores=center_cores,
    )
    registry = ServiceRegistry()
    registry.register_network(network)
    repository = CodeRepository()
    count_samps_app._register_codes(repository)
    comp_steer_app._register_codes(repository)
    intrusion_app._register_codes(repository)
    deployer = Deployer(registry, repository)
    return GridFabric(
        env=env,
        network=network,
        registry=registry,
        repository=repository,
        deployer=deployer,
        launcher=Launcher(deployer),
        source_hosts=source_hosts,
        center_host=center,
    )


@dataclass
class CountSampsRun:
    """Measured outcome of one count-samps run."""

    execution_time: float
    accuracy: float
    reported: List[Tuple[int, float]]
    truth: List[Tuple[int, int]]
    bytes_to_center: float
    result: RunResult


def _make_substreams(
    n_sources: int, items_per_source: int, universe: int, skew: float, seed: int
) -> Tuple[List[List[int]], List[Tuple[int, int]]]:
    """Per-source integer sub-streams plus the global ground truth."""
    streams = [
        IntegerStream(
            items_per_source, universe=universe, skew=skew, seed=seed + i
        )
        for i in range(n_sources)
    ]
    from collections import Counter

    global_counts: Counter = Counter()
    for stream in streams:
        global_counts.update(stream.exact_counts())
    truth = sorted(global_counts.items(), key=lambda vc: (-vc[1], vc[0]))
    return [list(s) for s in streams], truth


def run_count_samps_distributed(
    n_sources: int = 4,
    items_per_source: int = 25_000,
    bandwidth: float = 100_000.0,
    sample_size: float = 100.0,
    adaptive: bool = False,
    sample_size_min: float = 10.0,
    sample_size_max: float = 240.0,
    batch: int = 500,
    top_n: int = 10,
    source_rate: Optional[float] = None,
    universe: int = 2000,
    skew: float = 1.3,
    seed: int = 0,
    sketch: str = "counting-samples",
    policy: Optional[AdaptationPolicy] = None,
    trace_every: Optional[int] = None,
) -> CountSampsRun:
    """One distributed count-samps run (Figure 5 row 2 / Figures 6-7).

    ``adaptive=False`` freezes k at ``sample_size`` (the fixed versions of
    Figure 6/7); ``adaptive=True`` lets the middleware pick k in
    [sample_size_min, sample_size_max].  ``trace_every=N`` hop-traces
    every N-th arrival (see :mod:`repro.obs`) so the run's latency can be
    decomposed with ``repro report``.
    """
    fabric = build_star_fabric(n_sources, bandwidth)
    if adaptive:
        config = count_samps_app.build_distributed_config(
            n_sources, fabric.source_hosts,
            sample_size=sample_size,
            sample_size_min=sample_size_min,
            sample_size_max=sample_size_max,
            batch=batch, top_n=top_n, sketch=sketch, seed=seed,
        )
    else:
        config = count_samps_app.build_distributed_config(
            n_sources, fabric.source_hosts,
            sample_size=sample_size,
            sample_size_min=sample_size,
            sample_size_max=sample_size,
            batch=batch, top_n=top_n, sketch=sketch, seed=seed,
        )
    deployment = fabric.launcher.launch(config)
    runtime = SimulatedRuntime(
        fabric.env, fabric.network, deployment,
        policy=policy, adaptation_enabled=adaptive, trace_every=trace_every,
    )
    substreams, truth = _make_substreams(
        n_sources, items_per_source, universe, skew, seed
    )
    for i, payloads in enumerate(substreams):
        runtime.bind_source(
            SourceBinding(
                name=f"stream-{i}", target_stage=f"filter-{i}",
                payloads=payloads, rate=source_rate,
                item_size=count_samps_app.RAW_INT_BYTES,
            )
        )
    result = runtime.run()
    reported = result.final_value("join")
    accuracy = topk_accuracy(reported, truth, k=top_n)
    return CountSampsRun(
        execution_time=result.execution_time,
        accuracy=accuracy,
        reported=reported,
        truth=truth[:top_n],
        bytes_to_center=result.stage("join").bytes_in,
        result=result,
    )


def run_count_samps_centralized(
    n_sources: int = 4,
    items_per_source: int = 25_000,
    bandwidth: float = 100_000.0,
    top_n: int = 10,
    source_rate: Optional[float] = None,
    universe: int = 2000,
    skew: float = 1.3,
    seed: int = 0,
    sketch_capacity: int = 1000,
    trace_every: Optional[int] = None,
) -> CountSampsRun:
    """One centralized count-samps run (Figure 5 row 1).

    ``sketch_capacity`` is below the value universe by default so the
    central one-pass algorithm stays genuinely approximate — the paper's
    centralized version scores 0.99, not 1.0, for the same reason.
    """
    fabric = build_star_fabric(n_sources, bandwidth)
    config = count_samps_app.build_centralized_config(
        n_sources, fabric.source_hosts, top_n=top_n, seed=seed,
        sketch_capacity=sketch_capacity,
    )
    deployment = fabric.launcher.launch(config)
    runtime = SimulatedRuntime(
        fabric.env, fabric.network, deployment, adaptation_enabled=False,
        trace_every=trace_every,
    )
    substreams, truth = _make_substreams(
        n_sources, items_per_source, universe, skew, seed
    )
    for i, payloads in enumerate(substreams):
        runtime.bind_source(
            SourceBinding(
                name=f"stream-{i}", target_stage=f"relay-{i}",
                payloads=payloads, rate=source_rate,
                item_size=count_samps_app.RAW_INT_BYTES,
            )
        )
    result = runtime.run()
    reported = result.final_value("central")
    accuracy = topk_accuracy(reported, truth, k=top_n)
    return CountSampsRun(
        execution_time=result.execution_time,
        accuracy=accuracy,
        reported=reported,
        truth=truth[:top_n],
        bytes_to_center=result.stage("central").bytes_in,
        result=result,
    )


@dataclass
class CompSteerRun:
    """Measured outcome of one comp-steer run."""

    execution_time: float
    converged_rate: float
    rate_series: List[Tuple[float, float]]
    effective_rate: float
    result: RunResult


def _continuous_mesh_values(seed: int):
    """An endless stream of mesh values (continuous-simulation mode)."""
    mesh = MeshStream(steps=64, mesh_points=64, seed=seed)
    step = 0
    while True:
        frame = mesh.frame(step % mesh.steps)
        for value in frame:
            yield float(value)
        step += 1


def run_comp_steer(
    generation_rate_bytes: float = 160.0,
    analysis_ms_per_byte: float = 1.0,
    link_bandwidth: float = 1_000_000.0,
    initial_rate: float = 0.13,
    duration_seconds: float = 400.0,
    item_bytes: float = 8.0,
    seed: int = 0,
    policy: Optional[AdaptationPolicy] = None,
    trace_every: Optional[int] = None,
) -> CompSteerRun:
    """One comp-steer run (Figures 8 and 9).

    The simulation generates continuously for ``duration_seconds`` of
    simulated time at ``generation_rate_bytes`` bytes/s (Figure 8 fixes
    160 B/s and sweeps the analysis cost; Figure 9 sweeps the generation
    rate against a 10 KB/s link).  The run stops at the time horizon —
    the measured output is the sampling-rate trajectory, matching the
    paper's time-series plots.
    """
    if generation_rate_bytes <= 0:
        raise ValueError(
            f"generation rate must be > 0, got {generation_rate_bytes}"
        )
    if duration_seconds <= 0:
        raise ValueError(f"duration must be > 0, got {duration_seconds}")
    fabric = build_star_fabric(1, bandwidth=link_bandwidth)
    config = comp_steer_app.build_comp_steer_config(
        simulation_host=fabric.source_hosts[0],
        initial_rate=initial_rate,
        analysis_ms_per_byte=analysis_ms_per_byte,
        item_bytes=item_bytes,
        analysis_host=fabric.center_host,
    )
    deployment = fabric.launcher.launch(config)
    runtime = SimulatedRuntime(
        fabric.env, fabric.network, deployment, policy=policy,
        trace_every=trace_every,
    )
    items_per_second = generation_rate_bytes / item_bytes
    runtime.bind_source(
        SourceBinding(
            name="simulation", target_stage="sampler",
            payloads=_continuous_mesh_values(seed),
            rate=items_per_second, item_size=item_bytes,
        )
    )
    result = runtime.run(stop_at=duration_seconds)
    series = result.parameter_series("sampler", "sampling-rate")
    sampler_stats = result.final_value("sampler")
    return CompSteerRun(
        execution_time=result.execution_time,
        converged_rate=series.tail_mean(0.25),
        rate_series=list(series),
        effective_rate=sampler_stats["effective_rate"],
        result=result,
    )
