"""Figure 8: Self-adaptation for a processing constraint (comp-steer).

Paper setup: five versions of comp-steer whose analysis-stage
post-processing cost is 1, 5, 8, 10, 20 ms/byte; the simulation generates
~160 bytes/second; the sampling factor starts at 0.13.  The figure plots
the middleware-chosen sampling factor over time.

Paper convergence values: 1, 1, ≈0.65, ≈0.55, ≈0.31 — i.e. the highest
sampling rate that still meets the processing constraint
(capacity = 1000/cost bytes/s, feasible rate = capacity / 160).

Run: ``python -m repro.experiments.fig8``
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.experiments.common import run_comp_steer

__all__ = ["Fig8Row", "main", "run_fig8", "ANALYSIS_COSTS_MS_PER_BYTE"]

#: The paper's five post-processing costs (ms/byte).
ANALYSIS_COSTS_MS_PER_BYTE: Sequence[float] = (1.0, 5.0, 8.0, 10.0, 20.0)
#: Simulation output rate (paper: "approximately 160 bytes per second").
GENERATION_RATE = 160.0
#: Initial sampling factor (paper: 0.13 for all versions).
INITIAL_RATE = 0.13


@dataclass(frozen=True)
class Fig8Row:
    """One version's trajectory and plateau."""

    ms_per_byte: float
    converged_rate: float
    feasible_rate: float
    series: List[Tuple[float, float]]


def feasible_rate(ms_per_byte: float) -> float:
    """Highest sampling rate meeting the processing constraint."""
    capacity_bytes_per_s = 1000.0 / ms_per_byte
    return min(1.0, capacity_bytes_per_s / GENERATION_RATE)


def run_fig8(
    duration_seconds: float = 400.0,
    costs: Optional[Sequence[float]] = None,
    seed: int = 0,
) -> List[Fig8Row]:
    """Run all five versions; each row carries the full time series."""
    costs = ANALYSIS_COSTS_MS_PER_BYTE if costs is None else costs
    rows = []
    for cost in costs:
        run = run_comp_steer(
            generation_rate_bytes=GENERATION_RATE,
            analysis_ms_per_byte=cost,
            initial_rate=INITIAL_RATE,
            duration_seconds=duration_seconds,
            seed=seed,
        )
        rows.append(
            Fig8Row(
                ms_per_byte=cost,
                converged_rate=run.converged_rate,
                feasible_rate=feasible_rate(cost),
                series=run.rate_series,
            )
        )
    return rows


def main() -> List[Fig8Row]:
    rows = run_fig8()
    print("Figure 8: sampling factor chosen under a processing constraint")
    print(f"{'cost (ms/B)':>12} {'converged rate':>15} {'feasible rate':>14}")
    for row in rows:
        print(
            f"{row.ms_per_byte:>12.0f} {row.converged_rate:>15.3f} "
            f"{row.feasible_rate:>14.3f}"
        )
    print("(paper: converges to 1, 1, .65, .55, .31)")
    return rows


if __name__ == "__main__":
    main()
