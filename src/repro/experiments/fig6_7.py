"""Figures 6 and 7: Impact of self-adaptation across bandwidths.

Paper setup: the four-source count-samps star, five application versions —
fixed summary sizes k = 40, 80, 120, 160 plus the self-adapting version
(k free in [10, 240]) — across four link bandwidths: 1 KB/s, 10 KB/s,
100 KB/s, 1 MB/s.  Figure 6 plots execution time, Figure 7 accuracy.

Reproduction target (shape): small fixed k is fast everywhere but
inaccurate; large fixed k is accurate but slow at low bandwidth; the
self-adapting version avoids both extremes — never the worst accuracy,
never the worst execution time.

Run: ``python -m repro.experiments.fig6_7``
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.adaptation.policy import AdaptationPolicy
from repro.experiments.common import run_count_samps_distributed

__all__ = ["Fig67Row", "main", "run_fig6_7", "BANDWIDTHS", "FIXED_SIZES"]

#: The paper's four networking configurations (bytes/second).
BANDWIDTHS: Sequence[float] = (1_000.0, 10_000.0, 100_000.0, 1_000_000.0)
#: The paper's four fixed summary sizes.
FIXED_SIZES: Sequence[float] = (40.0, 80.0, 120.0, 160.0)
#: The self-adapting version's range (paper: "any value between 10 and 240").
ADAPTIVE_MIN, ADAPTIVE_MAX = 10.0, 240.0
#: Feeding rate (items/s per source): fast enough that computation is not
#: the bottleneck, finite so the link constraint is observable.
SOURCE_RATE = 2_000.0
#: Workload shape: a large universe with mild skew makes the query
#: genuinely sensitive to the summary size k (with a small universe or a
#: heavy skew, even tiny summaries capture the top-10 and Figure 7's
#: accuracy axis flattens out).
UNIVERSE = 5_000
SKEW = 1.1


@dataclass(frozen=True)
class Fig67Row:
    """One (version, bandwidth) cell of Figures 6 and 7."""

    version: str
    bandwidth: float
    execution_time: float  # Figure 6's y-axis
    accuracy: float        # Figure 7's y-axis
    final_k: float


def _one_run(
    version: str,
    bandwidth: float,
    items_per_source: int,
    seed: int,
    policy: Optional[AdaptationPolicy] = None,
):
    if version == "adaptive":
        return run_count_samps_distributed(
            bandwidth=bandwidth,
            sample_size=100.0,
            adaptive=True,
            sample_size_min=ADAPTIVE_MIN,
            sample_size_max=ADAPTIVE_MAX,
            items_per_source=items_per_source,
            source_rate=SOURCE_RATE,
            universe=UNIVERSE,
            skew=SKEW,
            seed=seed,
            policy=policy,
        )
    return run_count_samps_distributed(
        bandwidth=bandwidth,
        sample_size=float(version),
        adaptive=False,
        items_per_source=items_per_source,
        source_rate=SOURCE_RATE,
        universe=UNIVERSE,
        skew=SKEW,
        seed=seed,
    )


def _one_cell(
    version: str,
    bandwidth: float,
    items_per_source: int,
    seeds: Sequence[int],
    policy: Optional[AdaptationPolicy] = None,
) -> Fig67Row:
    """One (version, bandwidth) cell, averaged over seeds.

    The counting sample is randomized, so single runs are noisy on the
    accuracy axis; the paper's table reports *average* accuracy, and so
    do we.
    """
    runs = [
        _one_run(version, bandwidth, items_per_source, s, policy=policy)
        for s in seeds
    ]
    series = runs[0].result.stage("filter-0").parameter_history.get("sample-size")
    final_k = series.last()[1] if series is not None and len(series) else float(
        version if version != "adaptive" else 100
    )
    return Fig67Row(
        version=version,
        bandwidth=bandwidth,
        execution_time=sum(r.execution_time for r in runs) / len(runs),
        accuracy=sum(r.accuracy for r in runs) / len(runs),
        final_k=final_k,
    )


def run_fig6_7(
    items_per_source: int = 25_000,
    bandwidths: Optional[Sequence[float]] = None,
    seeds: Sequence[int] = (0, 1, 2),
    policy: Optional[AdaptationPolicy] = None,
) -> List[Fig67Row]:
    """All five versions across all bandwidths, seed-averaged.

    ``policy`` overrides the adaptation constants — reduced-scale callers
    shrink ``sample_interval`` so the adaptive version still gets a full
    convergence arc within a shorter workload.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    bandwidths = BANDWIDTHS if bandwidths is None else bandwidths
    versions = [str(int(k)) for k in FIXED_SIZES] + ["adaptive"]
    return [
        _one_cell(version, bandwidth, items_per_source, seeds, policy=policy)
        for bandwidth in bandwidths
        for version in versions
    ]


def main() -> List[Fig67Row]:
    rows = run_fig6_7()
    print("Figures 6 & 7: execution time and accuracy vs bandwidth")
    print(f"{'bandwidth':>12} {'version':>9} {'exec time (s)':>14} {'accuracy':>9} {'final k':>8}")
    for row in rows:
        print(
            f"{row.bandwidth/1000:>10.0f}KB {row.version:>9} "
            f"{row.execution_time:>14.1f} {row.accuracy:>9.3f} {row.final_k:>8.0f}"
        )
    return rows


if __name__ == "__main__":
    main()
