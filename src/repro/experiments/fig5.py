"""Figure 5 (table): Benefits of distributed processing.

Paper setup: four streams of 25,000 integers on four machines, star-linked
to a central machine at 100 KB/s; query = "top 10 most frequent integers
and their frequency".  Centralized version forwards everything; the
distributed version forwards the 100 most frequent items per source.

Paper numbers: centralized 257.5 s / 0.99 accuracy; distributed 180.8 s /
0.97 accuracy.  The reproduction target is the *shape*: distributed is
faster with a small accuracy loss.

Run: ``python -m repro.experiments.fig5``
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.experiments.common import (
    run_count_samps_centralized,
    run_count_samps_distributed,
)

__all__ = ["Fig5Row", "main", "run_fig5"]

BANDWIDTH = 100_000.0  # 100 KB/s
SUMMARY_SIZE = 100.0   # items forwarded per source in the distributed version


@dataclass(frozen=True)
class Fig5Row:
    """One row of the Figure 5 table."""

    processing_style: str
    execution_time: float
    accuracy: float
    bytes_to_center: float


def run_fig5(
    items_per_source: int = 25_000,
    n_sources: int = 4,
    seeds: tuple = (0, 1, 2),
) -> List[Fig5Row]:
    """Execute both versions (seed-averaged, like the paper's "Avg" columns)."""
    if not seeds:
        raise ValueError("need at least one seed")
    centralized = [
        run_count_samps_centralized(
            n_sources=n_sources,
            items_per_source=items_per_source,
            bandwidth=BANDWIDTH,
            seed=s,
        )
        for s in seeds
    ]
    distributed = [
        run_count_samps_distributed(
            n_sources=n_sources,
            items_per_source=items_per_source,
            bandwidth=BANDWIDTH,
            sample_size=SUMMARY_SIZE,
            adaptive=False,
            seed=s,
        )
        for s in seeds
    ]

    def _mean(runs, attr):
        return sum(getattr(r, attr) for r in runs) / len(runs)

    return [
        Fig5Row(
            "Centralized",
            _mean(centralized, "execution_time"),
            _mean(centralized, "accuracy"),
            _mean(centralized, "bytes_to_center"),
        ),
        Fig5Row(
            "Distributed",
            _mean(distributed, "execution_time"),
            _mean(distributed, "accuracy"),
            _mean(distributed, "bytes_to_center"),
        ),
    ]


def main() -> List[Fig5Row]:
    rows = run_fig5()
    print("Figure 5: Benefits of Distributed Processing (4 sub-streams)")
    print(f"{'Processing Style':<18} {'Avg Performance (s)':>20} {'Avg Accuracy':>14} {'Bytes to center':>16}")
    for row in rows:
        print(
            f"{row.processing_style:<18} {row.execution_time:>20.1f} "
            f"{row.accuracy:>14.3f} {row.bytes_to_center:>16.0f}"
        )
    print("(paper: Centralized 257.5 s / 0.99; Distributed 180.8 s / 0.97)")
    return rows


if __name__ == "__main__":
    main()
