"""Figure 9: Self-adaptation for a network constraint (comp-steer).

Paper setup: after sampling, data crosses a 10 KB/s link; five versions
generate data (before sampling) at 5, 10, 20, 40, 80 KB/s; the sampling
factor starts at 0.01.  The figure plots the middleware-chosen sampling
factor over time for each version.

Reproduction target: convergence to the bandwidth-feasible rate
``min(1, 10 KB/s / generation_rate)`` — about 1, 1, 0.5, 0.25, 0.125.

Run: ``python -m repro.experiments.fig9``
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.experiments.common import run_comp_steer

__all__ = ["Fig9Row", "main", "run_fig9", "GENERATION_RATES"]

#: The paper's five pre-sampling generation rates (bytes/second).
GENERATION_RATES: Sequence[float] = (5_000.0, 10_000.0, 20_000.0, 40_000.0, 80_000.0)
#: The constrained link (paper: 10 KB/s).
LINK_BANDWIDTH = 10_000.0
#: Initial sampling factor (paper: 0.01 for all versions).
INITIAL_RATE = 0.01
#: Wire bytes per generated value; coarser than Figure 8's 8 B so the
#: KB/s-scale streams stay laptop-fast without changing byte rates.
ITEM_BYTES = 200.0


@dataclass(frozen=True)
class Fig9Row:
    """One version's trajectory and plateau."""

    generation_rate: float
    converged_rate: float
    feasible_rate: float
    series: List[Tuple[float, float]]


def feasible_rate(generation_rate: float) -> float:
    """Highest sampling rate the 10 KB/s link can carry."""
    return min(1.0, LINK_BANDWIDTH / generation_rate)


def run_fig9(
    duration_seconds: float = 400.0,
    generation_rates: Optional[Sequence[float]] = None,
    seed: int = 0,
) -> List[Fig9Row]:
    """Run all five versions; each row carries the full time series."""
    rates = GENERATION_RATES if generation_rates is None else generation_rates
    rows = []
    for rate in rates:
        run = run_comp_steer(
            generation_rate_bytes=rate,
            analysis_ms_per_byte=0.01,  # analysis is never the constraint
            link_bandwidth=LINK_BANDWIDTH,
            initial_rate=INITIAL_RATE,
            duration_seconds=duration_seconds,
            item_bytes=ITEM_BYTES,
            seed=seed,
        )
        rows.append(
            Fig9Row(
                generation_rate=rate,
                converged_rate=run.converged_rate,
                feasible_rate=feasible_rate(rate),
                series=run.rate_series,
            )
        )
    return rows


def main() -> List[Fig9Row]:
    rows = run_fig9()
    print("Figure 9: sampling factor chosen under a network constraint")
    print(f"{'gen rate':>10} {'converged rate':>15} {'feasible rate':>14}")
    for row in rows:
        print(
            f"{row.generation_rate/1000:>8.0f}KB {row.converged_rate:>15.3f} "
            f"{row.feasible_rate:>14.3f}"
        )
    print("(paper: converges to ~1, ~1, ~.5, ~.25, ~.125)")
    return rows


if __name__ == "__main__":
    main()
