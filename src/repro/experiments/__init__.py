"""Experiment harness: one module per table/figure of the evaluation.

* :mod:`repro.experiments.common` — fabric builders and runners shared by
  all experiments.
* :mod:`repro.experiments.fig5` — Figure 5 (table): centralized vs
  distributed count-samps.
* :mod:`repro.experiments.fig6_7` — Figures 6 and 7: execution time and
  accuracy of fixed-k versions vs the self-adapting version across
  bandwidths.
* :mod:`repro.experiments.fig8` — Figure 8: sampling-factor convergence
  under a processing constraint.
* :mod:`repro.experiments.fig9` — Figure 9: sampling-factor convergence
  under a network constraint.

Each module exposes a ``run_*`` function returning structured rows and a
``main()`` that prints the same rows the paper reports; run them as
``python -m repro.experiments.fig5`` etc.
"""

from repro.experiments.common import (
    CountSampsRun,
    GridFabric,
    build_star_fabric,
    run_comp_steer,
    run_count_samps_centralized,
    run_count_samps_distributed,
)

__all__ = [
    "CountSampsRun",
    "GridFabric",
    "build_star_fabric",
    "run_comp_steer",
    "run_count_samps_centralized",
    "run_count_samps_distributed",
]
