"""The catalog of diagnostic codes.

Every diagnostic the verifier or the linter can emit has a stable
``GAxxx`` code registered here — the analysis-layer analogue of the
metric-name catalog in :mod:`repro.obs.names`.  The catalog is the
single source of truth three consumers share:

* :meth:`repro.analysis.diagnostics.Report.add` resolves each code's
  default severity and fix hint from it (an unregistered code is a bug);
* ``docs/static_analysis.md`` documents exactly these codes, and the
  docs-consistency check (:mod:`repro.analysis.docscheck`, run as a
  tier-1 test) fails when either side drifts;
* per-file ``# repro: noqa[GAxxx]`` suppressions are validated against
  it so a typo'd suppression is itself a finding.

Numbering: ``GA1xx`` graph/structure passes, ``GA2xx`` adaptation
(parameter) passes, ``GA3xx`` deployment passes (code resolution,
checkpoint contract, placement, wire sizing), ``GA5xx`` AST lint rules,
``GA60x`` whole-program concurrency analysis, ``GA61x`` protocol
model checking and model↔code conformance (``repro analyze``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.diagnostics import Severity

__all__ = [
    "CODES",
    "CodeInfo",
    "analyze_codes",
    "concurrency_codes",
    "config_codes",
    "info_for",
    "lint_codes",
    "protocol_codes",
]


@dataclass(frozen=True)
class CodeInfo:
    """One catalog entry: a diagnostic code and its meaning."""

    code: str
    #: ``config`` (pipeline verifier) or ``lint`` (AST checker).
    kind: str
    #: Default severity (a producer may override per-finding).
    severity: Severity
    #: One-line statement of the invariant the code enforces.
    title: str
    #: Default ``= help:`` hint rendered with findings.
    hint: str


_ALL: List[CodeInfo] = [
    # -- GA1xx: graph / structure --------------------------------------------
    CodeInfo("GA100", "config", Severity.ERROR,
             "configuration document is malformed",
             "fix the XML shape: <application name=...> containing <stage> "
             "and <stream> elements with the required attributes"),
    CodeInfo("GA101", "config", Severity.ERROR,
             "stage graph contains a cycle",
             "remove one stream to break the cycle; GATES applications "
             "are pipelines (DAGs)"),
    CodeInfo("GA102", "config", Severity.ERROR,
             "stream endpoint references an unknown stage",
             "declare the stage, or fix the stream's from=/to= attribute"),
    CodeInfo("GA103", "config", Severity.ERROR,
             "duplicate stream between the same stage pair",
             "merge the parallel streams into one; the stage graph keeps "
             "a single edge per pair, so the second stream is silently lost"),
    CodeInfo("GA104", "config", Severity.WARNING,
             "stage is disconnected from the pipeline",
             "connect the stage with a <stream>, or delete it"),
    CodeInfo("GA105", "config", Severity.ERROR,
             "duplicate stage or stream name",
             "names must be unique within the application; rename one"),
    CodeInfo("GA106", "config", Severity.ERROR,
             "declared fan-in disagrees with the connected streams",
             "make the stage's fan-in property match the number of "
             "incoming streams, or drop the property"),
    # -- GA2xx: adaptation parameters ----------------------------------------
    CodeInfo("GA201", "config", Severity.ERROR,
             "parameter initial value outside [min, max]",
             "choose an init inside the declared range"),
    CodeInfo("GA202", "config", Severity.ERROR,
             "parameter minimum exceeds maximum",
             "swap or fix the min=/max= attributes"),
    CodeInfo("GA203", "config", Severity.ERROR,
             "parameter increment or direction is invalid",
             "increment must be > 0 and direction must be +1 or -1 "
             "(the sign of dRate/dParameter, Section 3.3)"),
    CodeInfo("GA204", "config", Severity.WARNING,
             "parameter maximum unreachable by increment stepping",
             "make (max - min) a whole multiple of increment; Section-4 "
             "dP suggestions are quantized to the increment grid from min, "
             "so max is otherwise only reached by clamping"),
    CodeInfo("GA205", "config", Severity.WARNING,
             "parameter initial value off the increment grid",
             "set init = min + k * increment so the first adjustment does "
             "not silently move the value"),
    CodeInfo("GA206", "config", Severity.WARNING,
             "parameter increment exceeds the adjustable span",
             "shrink the increment; a single step already overshoots the "
             "whole [min, max] range, so adaptation can only slam between "
             "the bounds"),
    CodeInfo("GA207", "config", Severity.ERROR,
             "parameter declared twice in one stage",
             "a stage may declare each adjustment parameter once "
             "(specifyPara rejects redeclaration at runtime)"),
    CodeInfo("GA208", "config", Severity.WARNING,
             "stage property disagrees with the declared parameter",
             "keep the mirrored property (name, name-min, name-max) equal "
             "to the parameter declaration, or remove the property"),
    CodeInfo("GA210", "config", Severity.WARNING,
             "batch property is invalid or the flush delay defeats "
             "adaptation sampling",
             "batch-max-items must be an integer >= 1 and batch-max-delay "
             "a number in [0, sample_interval); a partial batch held "
             "longer than one Section-4 sampling interval makes the "
             "queue-length samples see bursts the stage created itself"),
    CodeInfo("GA220", "config", Severity.ERROR,
             "sharding or scaling property is invalid",
             "replicas must be an integer >= 1 inside "
             "[scale-min-replicas, scale-max-replicas], shard-by one of "
             "payload | field:<name> | index:<i>, shard-boundaries a "
             "sorted comma-separated list, and a sharded stage name may "
             "not contain '#'"),
    CodeInfo("GA221", "config", Severity.WARNING,
             "sharding or scaling knob has no effect",
             "shard-*/scale-* knobs only apply to stages that also "
             "declare replicas, and a range partitioner needs at least "
             "slots-1 boundaries or the upper replica slots never own "
             "any keys"),
    # -- GA23x: live migration -------------------------------------------------
    CodeInfo("GA230", "config", Severity.ERROR,
             "migration-enabled stage cannot hand its state off",
             "a stage marked migratable: true must override snapshot() "
             "and restore() together — the live-migration handoff "
             "transports snapshot() state into a fresh instance; a "
             "class with the no-op defaults would silently move with "
             "empty state"),
    CodeInfo("GA231", "config", Severity.ERROR,
             "migration gate is invalid or unsatisfiable",
             "migratable must be true or false, the stage must exist, a "
             "sharded stage (replicas) cannot migrate, and a "
             "migration-enabled run needs the checkpoint store "
             "(resilience with checkpoint_interval set) so a mid-move "
             "crash can degrade to failover instead of losing state"),
    # -- GA24x: record/replay ledger -------------------------------------------
    CodeInfo("GA240", "config", Severity.ERROR,
             "sink in a ledger-enabled pipeline is not idempotent",
             "a pipeline recording to the run ledger (ledger-enabled: "
             "true) delivers at-least-once below its sinks; every sink "
             "stage must implement the SinkTxn protocol "
             "(repro.ledger.sinks) so redelivered duplicates cannot "
             "double-apply effects — or opt out explicitly with the "
             "at-least-once-ok: true property"),
    # -- GA3xx: deployment ----------------------------------------------------
    CodeInfo("GA301", "config", Severity.ERROR,
             "stage code URL does not resolve in the repository",
             "publish the code under that repo:// URL, or use a "
             "py://module:Attribute import path"),
    CodeInfo("GA302", "config", Severity.ERROR,
             "stage class breaks the snapshot/restore contract",
             "override snapshot() and restore() together (or neither); "
             "an asymmetric override cannot fail over correctly"),
    CodeInfo("GA303", "config", Severity.ERROR,
             "placement is infeasible on the target fabric",
             "relax the requirement (cores/memory/bandwidth/placement "
             "hint) or enlarge the fabric"),
    CodeInfo("GA304", "config", Severity.WARNING,
             "summary stream item-size disagrees with the wire codec",
             "sketch-producing stages emit 12-byte (value, count) pairs "
             "(streams.wire PAIR_BYTES); declare item-size accordingly so "
             "link accounting matches the bytes actually sent"),
    # -- GA5xx: AST lint ------------------------------------------------------
    CodeInfo("GA500", "lint", Severity.ERROR,
             "file cannot be analyzed or suppression is invalid",
             "fix the syntax error, or correct the # repro: noqa[...] "
             "marker to name a registered code"),
    CodeInfo("GA501", "lint", Severity.ERROR,
             "metric name does not resolve in the catalog",
             "register the template in repro.obs.names.METRICS (and "
             "document it) before publishing the metric"),
    CodeInfo("GA502", "lint", Severity.ERROR,
             "wall-clock call in a deterministic module",
             "simulated code must take time from the simulation "
             "Environment, never time.time()/datetime.now()"),
    CodeInfo("GA503", "lint", Severity.ERROR,
             "module-level random generator in a deterministic module",
             "use a seeded random.Random(seed) instance; the global RNG "
             "breaks run-to-run reproducibility"),
    CodeInfo("GA504", "lint", Severity.ERROR,
             "blocking call inside an async function",
             "use the asyncio equivalent (asyncio.sleep, streams, "
             "run_in_executor); a blocking call stalls the event loop"),
    CodeInfo("GA505", "lint", Severity.ERROR,
             "synchronous lock held across an await",
             "a threading lock held across an await point can deadlock "
             "the event loop; use asyncio.Lock with async with"),
    CodeInfo("GA506", "lint", Severity.ERROR,
             "snapshot/restore overridden asymmetrically",
             "StreamProcessor subclasses must override snapshot() and "
             "restore() together (or neither)"),
    CodeInfo("GA507", "lint", Severity.ERROR,
             "bare or swallowed exception handler",
             "catch the narrowest exception type that can actually occur, "
             "and never discard it silently in data-plane code"),
    CodeInfo("GA508", "lint", Severity.ERROR,
             "public core function lacks a docstring",
             "every public (non-underscore) function and method in "
             "repro.core is part of the middleware's API surface and "
             "must state its contract in a docstring"),
    CodeInfo("GA509", "lint", Severity.ERROR,
             "nondeterministic read bypasses the DeterministicContext",
             "code in repro.ledger and stage on_item() bodies must route "
             "wall-clock reads and random draws through context.det "
             "(now()/draw()) so recorded runs capture them and replay "
             "can pin them; a direct time.*/random.* call makes the run "
             "unreplayable"),
    # -- GA60x: whole-program concurrency ---------------------------------------
    CodeInfo("GA600", "concurrency", Severity.ERROR,
             "lock-order inversion between two lock families",
             "two code paths acquire the same pair of locks in opposite "
             "orders, which can deadlock under contention; pick one "
             "global order for the pair and restructure the path that "
             "violates it"),
    CodeInfo("GA601", "concurrency", Severity.ERROR,
             "lock held across a blocking or unbounded-waiting call",
             "a lock held while the holder blocks (time.sleep, a "
             "suspension point, or a transitive wait on another "
             "condition/event through a callee) stalls every other "
             "acquirer for an unbounded time; move the wait outside the "
             "critical section or restructure so the lock is released "
             "before waiting"),
    CodeInfo("GA602", "concurrency", Severity.ERROR,
             "lock-guarded attribute written on an unguarded path",
             "this attribute is written under a threading lock elsewhere "
             "in the file, so a bare write races with those critical "
             "sections; take the same lock around the write, or suppress "
             "with a justification if the path is provably "
             "single-threaded"),
    # -- GA61x: protocol model checking ----------------------------------------
    CodeInfo("GA610", "protocol", Severity.ERROR,
             "protocol model can deadlock in a bounded configuration",
             "the explicit-state search reached a state where no "
             "participant can act and the run is not complete; the "
             "counterexample trace names the action sequence — fix the "
             "protocol (or the model, if it mis-states the code)"),
    CodeInfo("GA611", "protocol", Severity.ERROR,
             "protocol model violates a safety invariant",
             "a reachable state breaks conservation (credit leak, "
             "double-grant, item loss/duplication); follow the "
             "counterexample trace and repair the transition that "
             "breaks the invariant"),
    CodeInfo("GA612", "protocol", Severity.ERROR,
             "protocol model completes without reaching its goal",
             "a terminal state is marked final but the liveness goal "
             "(EOS delivered, migration completed) does not hold there; "
             "the run can 'finish' while losing the property"),
    CodeInfo("GA613", "protocol", Severity.ERROR,
             "frame traffic drifts from the protocol model",
             "either the code sends/handles a frame the model forbids "
             "for that role, or the model declares a transition no code "
             "site implements; update repro/net/protocol_model.py and "
             "the implementation together"),
]

CODES: Dict[str, CodeInfo] = {info.code: info for info in _ALL}


def info_for(code: str) -> CodeInfo:
    """The catalog entry for ``code``; raises ``KeyError`` if unknown."""
    try:
        return CODES[code]
    except KeyError:
        raise KeyError(
            f"diagnostic code {code!r} is not registered in "
            "repro.analysis.codes.CODES"
        ) from None


def config_codes() -> List[CodeInfo]:
    """Catalog entries produced by the pipeline verifier."""
    return [info for info in _ALL if info.kind == "config"]


def lint_codes() -> List[CodeInfo]:
    """Catalog entries produced by the AST lint suite."""
    return [info for info in _ALL if info.kind == "lint"]


def concurrency_codes() -> List[CodeInfo]:
    """Catalog entries produced by the whole-program concurrency pass."""
    return [info for info in _ALL if info.kind == "concurrency"]


def protocol_codes() -> List[CodeInfo]:
    """Catalog entries produced by the protocol model checker."""
    return [info for info in _ALL if info.kind == "protocol"]


def analyze_codes() -> List[CodeInfo]:
    """Catalog entries produced by ``repro analyze`` (both passes)."""
    return [info for info in _ALL if info.kind in ("concurrency", "protocol")]
