"""Whole-program concurrency analysis (``GA600``–``GA602``).

Unlike the per-file AST lint (:mod:`repro.analysis.checkers`), this pass
builds an *interprocedural* picture of the analyzed tree before it
reports anything:

1. every function/method is collected with its lock acquisitions
   (``with``/``async with`` on lock-looking context managers), waits
   (``.wait()``/``.wait_for()``/``time.sleep``), calls, awaits, and
   attribute writes, together with the set of locks held at each site;
2. lock references are resolved to stable **families** — ``self._lock``
   inside ``class Foo`` and ``foo._lock`` elsewhere both become
   ``Foo._lock`` when exactly one class declares that attribute, and a
   ``threading.Condition(self._lock)`` is aliased to the lock it wraps;
3. a call graph (conservative: a call resolves only when exactly one
   collected function bears the name) propagates *wait effects* and
   *transitive acquisitions* to a fixpoint.

On top of that picture three rules fire:

* **GA600** — two lock families acquired in both orders somewhere in
  the program (the classic deadlock precondition), including orders
  composed through callees;
* **GA601** — a lock held across a blocking or unbounded-waiting
  operation: ``time.sleep`` or an ``await`` under a ``threading`` lock,
  or a wait on a *different* condition/event (directly or transitively
  through callees) under any lock.  Waiting on the condition that *is*
  the held lock is the normal condition-variable pattern and is exempt;
* **GA602** — an attribute that is written under a ``threading`` lock
  somewhere in a file is also written with no lock held (restricted to
  sync locks: the event loop serializes async code between awaits).

Findings honor the shared ``# repro: noqa[GAxxx]`` markers at both the
file and the line granularity (see :mod:`repro.analysis.engine`).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.diagnostics import Diagnostic, Report, Severity, SourceSpan
from repro.analysis.engine import FileContext, _expand

__all__ = ["Program", "analyze_paths", "collect_program"]

#: Attribute/name fragments that make a ``with`` target a lock.
_LOCKISH = ("lock", "gate", "mutex", "cond")

#: Constructor dotted names that declare a synchronization attribute.
_SYNC_CTORS = frozenset({
    "threading.Lock", "threading.RLock", "threading.Condition",
    "threading.Event", "threading.Semaphore", "threading.BoundedSemaphore",
    "asyncio.Lock", "asyncio.Condition", "asyncio.Event",
    "asyncio.Semaphore", "asyncio.BoundedSemaphore",
})

#: Method names too generic to resolve through the call graph unless the
#: target is repo-internal (underscore-prefixed).
_GENERIC_NAMES = frozenset({
    "get", "put", "items", "keys", "values", "append", "add", "pop",
    "close", "send", "read", "write", "run", "start", "stop", "join",
    "set", "clear", "update", "copy", "extend", "remove", "insert",
    "index", "count", "sort", "encode", "decode", "open", "next",
    "acquire", "release", "submit", "result", "cancel", "done",
})

_SLEEP_MARKER = "<time.sleep>"


@dataclass(frozen=True)
class LockRef:
    """A raw, unresolved reference to a synchronization object."""

    #: ``self`` (attribute on self), ``attr`` (attribute on another
    #: object), or ``name`` (a bare module-level/local name).
    scope: str
    #: Enclosing class for ``self`` references, ``""`` otherwise.
    cls: str
    #: Attribute or bare name.
    attr: str


@dataclass(frozen=True)
class Held:
    """One lock held at a program point."""

    ref: LockRef
    is_async: bool


@dataclass
class Site:
    """A program point inside a function (1-indexed line, 0-indexed col)."""

    line: int
    column: int


@dataclass
class Acquisition(Site):
    ref: LockRef = field(default_factory=lambda: LockRef("name", "", ""))
    is_async: bool = False
    held_before: Tuple[Held, ...] = ()


@dataclass
class WaitSite(Site):
    #: ``None`` means ``time.sleep`` (no receiver).
    receiver: Optional[LockRef] = None
    held: Tuple[Held, ...] = ()


@dataclass
class CallSite(Site):
    name: str = ""
    #: ``self`` | ``attr`` | ``name`` — how the callee was addressed.
    scope: str = "name"
    awaited: bool = False
    held: Tuple[Held, ...] = ()


@dataclass
class AwaitSite(Site):
    held: Tuple[Held, ...] = ()


@dataclass
class WriteSite(Site):
    attr: str = ""
    #: ``self`` or the receiver's local name (``stage.state = ...``).
    receiver: str = ""
    held: Tuple[Held, ...] = ()
    func: str = ""


@dataclass
class FunctionInfo:
    """Everything the analysis knows about one collected function."""

    key: str  #: unique: ``path::Class.name:line``
    name: str
    cls: str
    path: str
    is_async: bool
    line: int
    acquisitions: List[Acquisition] = field(default_factory=list)
    waits: List[WaitSite] = field(default_factory=list)
    calls: List[CallSite] = field(default_factory=list)
    awaits: List[AwaitSite] = field(default_factory=list)
    writes: List[WriteSite] = field(default_factory=list)


@dataclass
class Program:
    """The whole-program picture the rules run over."""

    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: ``attr -> classes that declare it as a sync object``.
    class_sync_attrs: Dict[str, Set[str]] = field(default_factory=dict)
    #: ``(cls, attr) -> attr`` for ``Condition(self._lock)``-style wrapping.
    aliases: Dict[Tuple[str, str], str] = field(default_factory=dict)
    #: Files that were parsed, with their noqa context.
    contexts: Dict[str, FileContext] = field(default_factory=dict)
    #: Parse failures, reported as GA500.
    parse_errors: List[Diagnostic] = field(default_factory=list)


def _dotted(node: ast.AST) -> str:
    """``a.b.c`` for nested names/attributes, ``""`` when not that shape."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _is_lockish(name: str) -> bool:
    low = name.lower()
    return any(token in low for token in _LOCKISH)


class _FunctionCollector:
    """Walk one function body, tracking the held-lock stack."""

    def __init__(
        self,
        info: FunctionInfo,
        program: Program,
        nested: List[Tuple[ast.AST, str]],
    ) -> None:
        self.info = info
        self.program = program
        self.nested = nested
        self.held: List[Held] = []
        #: Local name -> lock ref, from ``lock = self._locks[k]`` style.
        self.locals: Dict[str, LockRef] = {}
        #: Locals bound to freshly constructed objects (``item = Item(...)``):
        #: writes through them are thread-confined until published.
        self.fresh: Set[str] = set()

    # -- reference extraction -------------------------------------------------

    def _ref_of(self, node: ast.AST, *, lockish_only: bool) -> Optional[LockRef]:
        """A LockRef for ``node`` (unwrapping subscripts and calls)."""
        while isinstance(node, (ast.Subscript, ast.Call)):
            node = node.value if isinstance(node, ast.Subscript) else node.func
        if isinstance(node, ast.Attribute):
            # Attributes some class initialises to a Lock/Condition/... count
            # as locks regardless of their name (class scans run over every
            # file before any function body is walked).
            known = node.attr in self.program.class_sync_attrs
            if lockish_only and not _is_lockish(node.attr) and not known:
                # A call like ``d.setdefault(...)`` may still wrap a lock.
                inner = self._ref_of(node.value, lockish_only=lockish_only)
                return inner
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                return LockRef("self", self.info.cls, node.attr)
            if not lockish_only or _is_lockish(node.attr) or known:
                return LockRef("attr", "", node.attr)
            return None
        if isinstance(node, ast.Name):
            if node.id in self.locals:
                return self.locals[node.id]
            if lockish_only and not _is_lockish(node.id):
                return None
            return LockRef("name", "", node.id)
        return None

    # -- traversal ------------------------------------------------------------

    def walk(self, node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            self.visit(child)

    def visit(self, node: ast.AST, *, awaited: bool = False) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self.nested.append((node, self.info.cls))
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            self._visit_with(node)
            return
        if isinstance(node, ast.Await):
            held = tuple(self.held)
            if any(not h.is_async for h in held):
                self.info.awaits.append(
                    AwaitSite(node.lineno, node.col_offset, held=held)
                )
            if isinstance(node.value, ast.Call):
                self.visit(node.value, awaited=True)
            else:
                self.walk(node)
            return
        if isinstance(node, ast.Call):
            self._visit_call(node, awaited)
            self.walk(node)
            return
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            self._visit_assign(node)
            self.walk(node)
            return
        if isinstance(node, (ast.For, ast.AsyncFor)):
            for name_node in ast.walk(node.target):
                if isinstance(name_node, ast.Name):
                    self.fresh.discard(name_node.id)
            self.walk(node)
            return
        self.walk(node)

    def _visit_with(self, node: ast.With | ast.AsyncWith) -> None:
        is_async = isinstance(node, ast.AsyncWith)
        pushed = 0
        for item in node.items:
            self.visit(item.context_expr)
            ref = self._ref_of(item.context_expr, lockish_only=True)
            if ref is not None:
                self.info.acquisitions.append(Acquisition(
                    item.context_expr.lineno,
                    item.context_expr.col_offset,
                    ref=ref,
                    is_async=is_async,
                    held_before=tuple(self.held),
                ))
                self.held.append(Held(ref, is_async))
                pushed += 1
        for stmt in node.body:
            self.visit(stmt)
        for _ in range(pushed):
            self.held.pop()

    def _visit_call(self, node: ast.Call, awaited: bool) -> None:
        func = node.func
        held = tuple(self.held)
        if isinstance(func, ast.Attribute):
            if func.attr in ("wait", "wait_for"):
                receiver = self._ref_of(func.value, lockish_only=False)
                self.info.waits.append(WaitSite(
                    node.lineno, node.col_offset,
                    receiver=receiver, held=held,
                ))
                return
            if _dotted(func) == "time.sleep":
                self.info.waits.append(WaitSite(
                    node.lineno, node.col_offset, receiver=None, held=held,
                ))
                return
            scope = (
                "self"
                if isinstance(func.value, ast.Name) and func.value.id == "self"
                else "attr"
            )
            self.info.calls.append(CallSite(
                node.lineno, node.col_offset,
                name=func.attr, scope=scope, awaited=awaited, held=held,
            ))
        elif isinstance(func, ast.Name):
            self.info.calls.append(CallSite(
                node.lineno, node.col_offset,
                name=func.id, scope="name", awaited=awaited, held=held,
            ))

    def _visit_assign(
        self, node: ast.Assign | ast.AugAssign | ast.AnnAssign
    ) -> None:
        held = tuple(self.held)
        targets: List[ast.expr]
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        else:
            targets = [node.target]
        for target in targets:
            attr_node = target
            if isinstance(attr_node, ast.Subscript):
                attr_node = attr_node.value
            if not isinstance(attr_node, ast.Attribute):
                if (
                    isinstance(target, ast.Name)
                    and isinstance(node, ast.Assign)
                ):
                    # Track ``name = <lock expr>`` so ``with name:``
                    # resolves, and constructor-fresh locals so writes
                    # through them do not count as shared-state writes.
                    ref = self._ref_of(node.value, lockish_only=True)
                    if ref is not None:
                        self.locals[target.id] = ref
                    if isinstance(node.value, ast.Call):
                        self.fresh.add(target.id)
                    else:
                        self.fresh.discard(target.id)
                continue
            if not isinstance(attr_node.value, ast.Name):
                continue
            if (
                _is_lockish(attr_node.attr)
                or attr_node.attr in self.program.class_sync_attrs
            ):
                continue
            receiver = attr_node.value.id
            if receiver != "self" and receiver in self.fresh:
                continue
            self.info.writes.append(WriteSite(
                target.lineno, target.col_offset,
                attr=attr_node.attr, receiver=receiver,
                held=held, func=self.info.key,
            ))


def _scan_file(
    path: str, source: str, program: Program
) -> Optional[List[Tuple[ast.AST, str]]]:
    """Parse ``path`` and register its classes; return the function queue.

    Class declarations (``class_sync_attrs``, Condition aliases) for *every*
    file are registered before any function body is walked, so reference
    resolution never depends on the order files arrive from the filesystem.
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        program.parse_errors.append(Diagnostic(
            code="GA500",
            severity=Severity.ERROR,
            message=f"cannot parse file: {exc.msg}",
            span=SourceSpan(file=path, line=exc.lineno, column=exc.offset),
        ))
        return None
    context = FileContext(path, source, tree)
    program.contexts[path] = context

    pending: List[Tuple[ast.AST, str]] = []

    def scan_class(node: ast.ClassDef) -> None:
        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                note = ast.unparse(stmt.annotation)
                if any(t in note for t in (
                    "Lock", "Condition", "Event", "Semaphore"
                )):
                    program.class_sync_attrs.setdefault(
                        stmt.target.id, set()
                    ).add(node.name)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scan_ctor_assigns(stmt, node.name)
                pending.append((stmt, node.name))
            elif isinstance(stmt, ast.ClassDef):
                scan_class(stmt)

    def scan_ctor_assigns(
        fn: ast.FunctionDef | ast.AsyncFunctionDef, cls: str
    ) -> None:
        """Register ``self.x = threading.Lock()`` style declarations."""
        for stmt in ast.walk(fn):
            if not isinstance(stmt, ast.Assign):
                continue
            value = stmt.value
            if not isinstance(value, ast.Call):
                continue
            ctor = _dotted(value.func)
            short = ctor.rsplit(".", 1)[-1]
            is_sync_ctor = ctor in _SYNC_CTORS or short in (
                "Lock", "RLock", "Condition", "Event", "Semaphore"
            )
            if not is_sync_ctor:
                continue
            for target in stmt.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    program.class_sync_attrs.setdefault(
                        target.attr, set()
                    ).add(cls)
                    # Condition(self._lock) aliases the wrapped lock.
                    if short == "Condition" and value.args:
                        wrapped = value.args[0]
                        if (
                            isinstance(wrapped, ast.Attribute)
                            and isinstance(wrapped.value, ast.Name)
                            and wrapped.value.id == "self"
                        ):
                            program.aliases[(cls, target.attr)] = wrapped.attr

    for stmt in tree.body:
        if isinstance(stmt, ast.ClassDef):
            scan_class(stmt)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            pending.append((stmt, ""))
    return pending


def _walk_file(
    path: str, pending: List[Tuple[ast.AST, str]], program: Program
) -> None:
    """Collect acquisitions, waits, calls, and writes for one file."""
    while pending:
        node, cls = pending.pop(0)
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        qual = f"{cls}.{node.name}" if cls else node.name
        info = FunctionInfo(
            key=f"{path}::{qual}:{node.lineno}",
            name=node.name,
            cls=cls,
            path=path,
            is_async=isinstance(node, ast.AsyncFunctionDef),
            line=node.lineno,
        )
        collector = _FunctionCollector(info, program, pending)
        for stmt2 in node.body:
            collector.visit(stmt2)
        program.functions[info.key] = info


def collect_program(paths: Iterable[str]) -> Program:
    """Parse and collect every ``.py`` file under ``paths``.

    Runs in two phases — scan all class declarations, then walk all
    function bodies — so the collected program is identical no matter
    what order the filesystem yields the files in.
    """
    program = Program()
    staged: List[Tuple[str, List[Tuple[ast.AST, str]]]] = []
    for path in _expand(paths):
        source = Path(path).read_text(encoding="utf-8")
        pending = _scan_file(path, source, program)
        if pending is not None:
            staged.append((path, pending))
    for path, pending in staged:
        _walk_file(path, pending, program)
    return program


class _Rules:
    """Resolve lock families, run the fixpoints, emit GA600–GA602."""

    def __init__(self, program: Program) -> None:
        self.program = program
        #: function simple name -> keys (for call resolution).
        self.by_name: Dict[str, List[str]] = {}
        for key in sorted(program.functions):
            info = program.functions[key]
            self.by_name.setdefault(info.name, []).append(key)
        self._emitted: Set[Tuple[str, str, int]] = set()
        self.report = Report()

    # -- lock family resolution ----------------------------------------------

    def family(self, ref: LockRef) -> str:
        """Stable cross-function identity for a lock reference."""
        attr = ref.attr
        if ref.scope == "self" and ref.cls:
            attr = self.program.aliases.get((ref.cls, attr), attr)
            return f"{ref.cls}.{attr}"
        owners = self.program.class_sync_attrs.get(attr, set())
        if len(owners) == 1:
            cls = next(iter(owners))
            attr = self.program.aliases.get((cls, attr), attr)
            return f"{cls}.{attr}"
        return f"*.{attr}"

    def families(self, held: Tuple[Held, ...]) -> Set[str]:
        return {self.family(h.ref) for h in held}

    # -- call graph -----------------------------------------------------------

    def resolve(self, fn: FunctionInfo, call: CallSite) -> Optional[FunctionInfo]:
        """The unique collected callee for a call site, if determinable."""
        if call.scope == "self":
            own = [
                k for k in self.by_name.get(call.name, ())
                if self.program.functions[k].cls == fn.cls
                and self.program.functions[k].path == fn.path
            ]
            if len(own) == 1:
                return self.program.functions[own[0]]
        if (
            call.name in _GENERIC_NAMES
            and not call.name.startswith("_")
        ):
            return None
        candidates = self.by_name.get(call.name, [])
        if len(candidates) == 1:
            return self.program.functions[candidates[0]]
        return None

    def _executed(self, call: CallSite, callee: FunctionInfo) -> bool:
        """Whether the call actually runs the callee's body here."""
        return not (callee.is_async and not call.awaited)

    # -- fixpoints ------------------------------------------------------------

    def wait_sets(self) -> Dict[str, Set[str]]:
        """Transitive wait effects per function (lock families + sleep)."""
        sets: Dict[str, Set[str]] = {}
        for key in sorted(self.program.functions):
            fn = self.program.functions[key]
            direct: Set[str] = set()
            for wait in fn.waits:
                if wait.receiver is None:
                    direct.add(_SLEEP_MARKER)
                else:
                    direct.add(self.family(wait.receiver))
            sets[key] = direct
        changed = True
        while changed:
            changed = False
            for key in sorted(self.program.functions):
                fn = self.program.functions[key]
                for call in fn.calls:
                    callee = self.resolve(fn, call)
                    if callee is None or not self._executed(call, callee):
                        continue
                    extra = sets[callee.key] - sets[key]
                    if extra:
                        sets[key] |= extra
                        changed = True
        return sets

    def acq_sets(self) -> Dict[str, Set[str]]:
        """Transitive lock acquisitions per function."""
        sets: Dict[str, Set[str]] = {}
        for key in sorted(self.program.functions):
            fn = self.program.functions[key]
            sets[key] = {self.family(a.ref) for a in fn.acquisitions}
        changed = True
        while changed:
            changed = False
            for key in sorted(self.program.functions):
                fn = self.program.functions[key]
                for call in fn.calls:
                    callee = self.resolve(fn, call)
                    if callee is None or not self._executed(call, callee):
                        continue
                    extra = sets[callee.key] - sets[key]
                    if extra:
                        sets[key] |= extra
                        changed = True
        return sets

    def assumed_held(self) -> Dict[str, Set[str]]:
        """Sync lock families every caller provably holds at entry."""
        assumed: Dict[str, Set[str]] = {
            key: set() for key in self.program.functions
        }
        call_sites: Dict[str, List[Tuple[str, Tuple[Held, ...]]]] = {}
        for key in sorted(self.program.functions):
            fn = self.program.functions[key]
            for call in fn.calls:
                callee = self.resolve(fn, call)
                if callee is None or not self._executed(call, callee):
                    continue
                call_sites.setdefault(callee.key, []).append((key, call.held))
        changed = True
        while changed:
            changed = False
            for key in sorted(call_sites):
                entries = call_sites[key]
                combined: Optional[Set[str]] = None
                for caller_key, held in entries:
                    fams = {
                        self.family(h.ref) for h in held if not h.is_async
                    } | assumed[caller_key]
                    combined = fams if combined is None else combined & fams
                if combined and combined - assumed[key]:
                    assumed[key] |= combined
                    changed = True
        return assumed

    # -- emission -------------------------------------------------------------

    def emit(
        self,
        code: str,
        path: str,
        line: int,
        column: int,
        message: str,
    ) -> None:
        if (code, path, line) in self._emitted:
            return
        context = self.program.contexts.get(path)
        if context is None:
            return
        before = len(context.report.diagnostics)
        context.add(code, message, line=line, column=column)
        if len(context.report.diagnostics) > before:
            self._emitted.add((code, path, line))

    # -- the rules ------------------------------------------------------------

    def run(self) -> Report:
        wait_sets = self.wait_sets()
        self.check_ga601(wait_sets)
        self.check_ga600()
        self.check_ga602()
        for diag in self.program.parse_errors:
            self.report.diagnostics.append(diag)
        for path in sorted(self.program.contexts):
            self.report.extend(self.program.contexts[path].report)
        return self.report

    def check_ga601(self, wait_sets: Dict[str, Set[str]]) -> None:
        for key in sorted(self.program.functions):
            fn = self.program.functions[key]
            for wait in fn.waits:
                if not wait.held:
                    continue
                held_fams = self.families(wait.held)
                if wait.receiver is None:
                    if any(not h.is_async for h in wait.held):
                        locks = ", ".join(sorted(
                            self.family(h.ref)
                            for h in wait.held if not h.is_async
                        ))
                        self.emit(
                            "GA601", fn.path, wait.line, wait.column,
                            f"lock {locks} is held across time.sleep() "
                            f"in '{fn.name}'",
                        )
                    continue
                recv = self.family(wait.receiver)
                if recv in held_fams:
                    continue  # waiting on the held condition releases it
                locks = ", ".join(sorted(held_fams))
                self.emit(
                    "GA601", fn.path, wait.line, wait.column,
                    f"lock {locks} is held across a wait on {recv!r} "
                    f"in '{fn.name}'",
                )
            for aw in fn.awaits:
                sync = sorted(
                    self.family(h.ref) for h in aw.held if not h.is_async
                )
                if sync:
                    self.emit(
                        "GA601", fn.path, aw.line, aw.column,
                        f"threading lock {', '.join(sync)} is held across "
                        f"an await in '{fn.name}' (suspension point)",
                    )
            for call in fn.calls:
                if not call.held:
                    continue
                callee = self.resolve(fn, call)
                if callee is None or not self._executed(call, callee):
                    continue
                held_fams = self.families(call.held)
                effects = wait_sets[callee.key] - held_fams
                if not effects:
                    continue
                locks = ", ".join(sorted(held_fams))
                what = ", ".join(sorted(effects))
                self.emit(
                    "GA601", fn.path, call.line, call.column,
                    f"lock {locks} is held across a call to "
                    f"'{call.name}', which can wait on {what}",
                )

    def check_ga600(self) -> None:
        acq_sets = self.acq_sets()
        # edge (a -> b): b acquired while a held; keep the first site.
        edges: Dict[Tuple[str, str], Tuple[str, int, int]] = {}

        def note(a: str, b: str, path: str, line: int, column: int) -> None:
            if a == b:
                return
            site = (path, line, column)
            if (a, b) not in edges or site < edges[(a, b)]:
                edges[(a, b)] = site

        for key in sorted(self.program.functions):
            fn = self.program.functions[key]
            for acq in fn.acquisitions:
                b = self.family(acq.ref)
                for h in acq.held_before:
                    note(self.family(h.ref), b, fn.path, acq.line, acq.column)
            for call in fn.calls:
                if not call.held:
                    continue
                callee = self.resolve(fn, call)
                if callee is None or not self._executed(call, callee):
                    continue
                for b in sorted(acq_sets[callee.key]):
                    for h in call.held:
                        note(
                            self.family(h.ref), b,
                            fn.path, call.line, call.column,
                        )

        for (a, b) in sorted(edges):
            if a >= b or (b, a) not in edges:
                continue
            fwd = edges[(a, b)]
            rev = edges[(b, a)]
            path, line, column = min(fwd, rev)
            self.emit(
                "GA600", path, line, column,
                f"lock-order inversion: {a} -> {b} at {fwd[0]}:{fwd[1]} "
                f"but {b} -> {a} at {rev[0]}:{rev[1]}",
            )

    def check_ga602(self) -> None:
        assumed = self.assumed_held()
        skip_fns = ("__init__", "__post_init__", "__new__")
        # Writes are grouped receiver-aware: ``self.x`` in class C only
        # matches other ``self.x`` writes in C, and ``stage.x`` only other
        # writes through a local named ``stage`` — attribute names alone
        # conflate unrelated classes.
        by_group: Dict[
            Tuple[str, str, str, str],
            List[Tuple[WriteSite, Set[str]]],
        ] = {}
        for key in sorted(self.program.functions):
            fn = self.program.functions[key]
            if fn.name in skip_fns:
                continue
            for write in fn.writes:
                sync = {
                    self.family(h.ref) for h in write.held if not h.is_async
                } | assumed[key]
                if write.receiver == "self":
                    group = (fn.path, "self", fn.cls, write.attr)
                else:
                    group = (fn.path, "recv", write.receiver, write.attr)
                by_group.setdefault(group, []).append((write, sync))
        for group in sorted(by_group):
            writes = by_group[group]
            path, _, _, attr = group
            guarded: Optional[Tuple[str, int]] = None
            fam = ""
            for write, sync in writes:
                if sync:
                    fam = sorted(sync)[0]
                    guarded = (path, write.line)
                    break
            if guarded is None:
                continue
            for write, sync in writes:
                if sync:
                    continue
                self.emit(
                    "GA602", path, write.line, write.column,
                    f"attribute {attr!r} is written without holding "
                    f"{fam}, which guards it at {guarded[0]}:{guarded[1]}",
                )


def analyze_paths(paths: Iterable[str]) -> Report:
    """Run the whole-program concurrency analysis over ``paths``."""
    program = collect_program(paths)
    return _Rules(program).run()
