"""Structured diagnostics shared by the pipeline verifier and the linter.

Every finding — a semantic defect in an application configuration or a
source-level invariant violation — is one :class:`Diagnostic`: a stable
``GAxxx`` code (catalogued in :mod:`repro.analysis.codes`), a severity, a
human message, an optional fix hint, and a :class:`SourceSpan` locating
it either in a file (``path:line``) or inside the configuration document
model (``stage 'join' / parameter 'sample-size'``).

A :class:`Report` collects diagnostics and renders them two ways:

* :meth:`Report.render_text` — a rustc-style text report (code, arrowed
  location, the offending source line when available, ``= help:`` hint);
* :meth:`Report.render_json` — a machine-readable JSON document for CI
  annotation tooling.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["Diagnostic", "Report", "Severity", "SourceSpan"]


class Severity(enum.Enum):
    """Diagnostic severity, ordered from most to least blocking."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        """Sort key: errors first."""
        return {"error": 0, "warning": 1, "info": 2}[self.value]


@dataclass(frozen=True)
class SourceSpan:
    """Where a diagnostic points.

    ``file``/``line``/``column`` locate a span in a source document (XML
    configuration or Python module); ``config_path`` names the element
    of the configuration model (``"stage 'join'"``) for diagnostics that
    arise from an in-memory :class:`~repro.grid.config.AppConfig` with
    no backing document.  Either half may be absent.
    """

    file: Optional[str] = None
    line: Optional[int] = None
    column: Optional[int] = None
    config_path: Optional[str] = None

    def location(self) -> str:
        """Human-readable location (``file.xml:12`` or a config path)."""
        parts: List[str] = []
        if self.file is not None:
            where = self.file
            if self.line is not None:
                where += f":{self.line}"
                if self.column is not None:
                    where += f":{self.column}"
            parts.append(where)
        if self.config_path:
            parts.append(self.config_path)
        return ": ".join(parts) if parts else "<config>"

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (
            self.file or "",
            self.line if self.line is not None else 0,
            self.column if self.column is not None else 0,
            self.config_path or "",
        )


@dataclass(frozen=True)
class Diagnostic:
    """One finding, ready to render or serialize."""

    code: str
    severity: Severity
    message: str
    span: SourceSpan = field(default_factory=SourceSpan)
    #: One-line actionable fix suggestion (rendered as ``= help:``).
    hint: Optional[str] = None
    #: The offending source line, verbatim, when the producer had it.
    source_line: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-representable form (used by ``render_json``)."""
        return {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
            "file": self.span.file,
            "line": self.span.line,
            "column": self.span.column,
            "config_path": self.span.config_path,
            "hint": self.hint,
        }


class Report:
    """An ordered collection of diagnostics with rendering helpers."""

    def __init__(self, diagnostics: Optional[List[Diagnostic]] = None) -> None:
        self.diagnostics: List[Diagnostic] = list(diagnostics or [])

    def add(
        self,
        code: str,
        message: str,
        *,
        severity: Optional[Severity] = None,
        span: Optional[SourceSpan] = None,
        hint: Optional[str] = None,
        source_line: Optional[str] = None,
    ) -> Diagnostic:
        """Append a diagnostic for ``code``.

        ``severity``/``hint`` default to the catalogued values for the
        code (see :mod:`repro.analysis.codes`).
        """
        from repro.analysis.codes import info_for

        info = info_for(code)
        diagnostic = Diagnostic(
            code=code,
            severity=severity if severity is not None else info.severity,
            message=message,
            span=span if span is not None else SourceSpan(),
            hint=hint if hint is not None else info.hint,
            source_line=source_line,
        )
        self.diagnostics.append(diagnostic)
        return diagnostic

    def extend(self, other: "Report") -> None:
        """Absorb another report's diagnostics."""
        self.diagnostics.extend(other.diagnostics)

    # -- queries -------------------------------------------------------------

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def infos(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.INFO]

    @property
    def ok(self) -> bool:
        """True when nothing blocks (no error-severity diagnostics)."""
        return not self.errors

    @property
    def clean(self) -> bool:
        """True when there is nothing to show at all."""
        return not self.diagnostics

    def codes(self) -> List[str]:
        """Distinct codes present, sorted."""
        return sorted({d.code for d in self.diagnostics})

    def sorted(self) -> List[Diagnostic]:
        """Diagnostics ordered by location, then severity, then code."""
        return sorted(
            self.diagnostics,
            key=lambda d: (d.span.sort_key(), d.severity.rank, d.code),
        )

    # -- rendering -----------------------------------------------------------

    def render_text(self) -> str:
        """The rustc-style text report (one block per diagnostic)."""
        blocks: List[str] = []
        for diagnostic in self.sorted():
            lines = [
                f"{diagnostic.severity.value}[{diagnostic.code}]: "
                f"{diagnostic.message}",
                f"  --> {diagnostic.span.location()}",
            ]
            if diagnostic.source_line is not None:
                shown = diagnostic.source_line.rstrip()
                stripped = shown.lstrip()
                indent = len(shown) - len(stripped)
                number = (
                    f"{diagnostic.span.line}" if diagnostic.span.line is not None
                    else "?"
                )
                gutter = " " * len(number)
                lines.append(f"{gutter} |")
                lines.append(f"{number} | {stripped}")
                caret_at = (
                    diagnostic.span.column - 1 if diagnostic.span.column else 0
                )
                caret = " " * max(0, caret_at - indent) + "^"
                lines.append(f"{gutter} | {caret}")
            if diagnostic.hint:
                lines.append(f"  = help: {diagnostic.hint}")
            blocks.append("\n".join(lines))
        summary = self.summary_line()
        if blocks:
            return "\n\n".join(blocks) + "\n\n" + summary
        return summary

    def summary_line(self) -> str:
        """One-line tally (``2 errors, 1 warning``; ``no findings``)."""
        parts: List[str] = []
        for label, found in (
            ("error", self.errors),
            ("warning", self.warnings),
            ("info", self.infos),
        ):
            if found:
                plural = "s" if len(found) != 1 else ""
                parts.append(f"{len(found)} {label}{plural}")
        return ", ".join(parts) if parts else "no findings"

    def render_json(self) -> str:
        """Machine-readable report (schema stable; see docs/static_analysis.md)."""
        payload = {
            "diagnostics": [d.to_dict() for d in self.sorted()],
            "summary": {
                "errors": len(self.errors),
                "warnings": len(self.warnings),
                "infos": len(self.infos),
                "codes": self.codes(),
            },
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __repr__(self) -> str:
        return f"Report({self.summary_line()})"
