"""Docs-consistency check: the code catalog and the docs must agree.

``docs/static_analysis.md`` documents every diagnostic code in a markdown
table whose first column is the backticked code and whose second column
is the kind (``config``/``lint``).  :func:`check_docs` diffs that table
against the authoritative catalog (:data:`repro.analysis.codes.CODES`)
in both directions — a code registered without a docs row, a docs row
for a removed code, or a kind mismatch each produce one problem string.
The tier-1 test ``tests/analysis/test_docscheck.py`` asserts the list is
empty, so the reference cannot drift (same pattern as
:mod:`repro.obs.docscheck`).
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, List, Optional

from repro.analysis.codes import CODES

__all__ = ["check_docs", "default_docs_path", "documented_codes"]

#: A code-table row: ``| `GA101` | config | ...``.
_ROW = re.compile(r"^\|\s*`(?P<code>GA\d{3})`\s*\|\s*(?P<kind>\w+)\s*\|")


def default_docs_path() -> Path:
    """``docs/static_analysis.md`` relative to the repository root."""
    return Path(__file__).resolve().parents[3] / "docs" / "static_analysis.md"


def documented_codes(path: Path) -> Dict[str, str]:
    """Parse ``{code: kind}`` from the docs' code-table rows."""
    documented: Dict[str, str] = {}
    for line in path.read_text(encoding="utf-8").splitlines():
        match = _ROW.match(line.strip())
        if match:
            documented[match.group("code")] = match.group("kind")
    return documented


def check_docs(path: Optional[Path] = None) -> List[str]:
    """Problems keeping the docs and the catalog apart (empty = in sync)."""
    path = path if path is not None else default_docs_path()
    if not path.exists():
        return [f"docs file missing: {path}"]
    documented = documented_codes(path)
    cataloged: Dict[str, str] = {code: info.kind for code, info in CODES.items()}
    problems: List[str] = []
    for code, kind in sorted(cataloged.items()):
        if code not in documented:
            problems.append(
                f"registered code {code!r} is not documented in {path.name}"
            )
        elif documented[code] != kind:
            problems.append(
                f"{code!r}: catalog says {kind}, docs say {documented[code]}"
            )
    for code in sorted(documented):
        if code not in cataloged:
            problems.append(
                f"{path.name} documents {code!r}, which is not registered "
                "(repro.analysis.codes.CODES)"
            )
    return problems
