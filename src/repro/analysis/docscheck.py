"""Docs-consistency check: the code catalog and the docs must agree.

``docs/static_analysis.md`` documents every diagnostic code — GA1xx
through GA6xx — in **one** consolidated markdown table that is not
hand-written but *generated* from the authoritative catalog
(:data:`repro.analysis.codes.CODES`) by :func:`render_catalog_table`
(``python -m repro.analysis.docscheck`` prints it for pasting).

:func:`check_docs` pins the docs to the catalog two ways:

* the generated table must appear in the page **verbatim** — any edit
  to a code's kind, severity, or title in either place breaks the pin;
* the table rows are also diffed against the catalog in both
  directions, so a missing or stale row gets a problem message naming
  the specific code rather than just "table drifted".

The tier-1 test ``tests/analysis/test_docscheck.py`` asserts the
problem list is empty, so the reference cannot drift (same pattern as
:mod:`repro.obs.docscheck`).
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, List, Optional

from repro.analysis.codes import CODES

__all__ = [
    "check_docs",
    "default_docs_path",
    "documented_codes",
    "render_catalog_table",
]

#: A code-table row: ``| `GA101` | config | ...``.
_ROW = re.compile(r"^\|\s*`(?P<code>GA\d{3})`\s*\|\s*(?P<kind>\w+)\s*\|")


def default_docs_path() -> Path:
    """``docs/static_analysis.md`` relative to the repository root."""
    return Path(__file__).resolve().parents[3] / "docs" / "static_analysis.md"


def render_catalog_table() -> str:
    """The consolidated catalog table, generated from :data:`CODES`.

    ``docs/static_analysis.md`` must embed this output verbatim; when a
    code is added or reworded, regenerate with
    ``python -m repro.analysis.docscheck`` and paste.
    """
    lines = [
        "| Code | Kind | Severity | Invariant |",
        "|---|---|---|---|",
    ]
    for code in sorted(CODES):
        info = CODES[code]
        lines.append(
            f"| `{code}` | {info.kind} | {info.severity.value} "
            f"| {info.title} |"
        )
    return "\n".join(lines)


def documented_codes(path: Path) -> Dict[str, str]:
    """Parse ``{code: kind}`` from the docs' code-table rows."""
    documented: Dict[str, str] = {}
    for line in path.read_text(encoding="utf-8").splitlines():
        match = _ROW.match(line.strip())
        if match:
            documented[match.group("code")] = match.group("kind")
    return documented


def check_docs(path: Optional[Path] = None) -> List[str]:
    """Problems keeping the docs and the catalog apart (empty = in sync)."""
    path = path if path is not None else default_docs_path()
    if not path.exists():
        return [f"docs file missing: {path}"]
    documented = documented_codes(path)
    cataloged: Dict[str, str] = {code: info.kind for code, info in CODES.items()}
    problems: List[str] = []
    for code, kind in sorted(cataloged.items()):
        if code not in documented:
            problems.append(
                f"registered code {code!r} is not documented in {path.name}"
            )
        elif documented[code] != kind:
            problems.append(
                f"{code!r}: catalog says {kind}, docs say {documented[code]}"
            )
    for code in sorted(documented):
        if code not in cataloged:
            problems.append(
                f"{path.name} documents {code!r}, which is not registered "
                "(repro.analysis.codes.CODES)"
            )
    if render_catalog_table() not in path.read_text(encoding="utf-8"):
        problems.append(
            f"{path.name} does not embed the generated catalog table "
            "verbatim; regenerate with "
            "'python -m repro.analysis.docscheck' and paste it in"
        )
    return problems


if __name__ == "__main__":
    print(render_catalog_table())
