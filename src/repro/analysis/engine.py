"""Visitor-dispatch engine the AST lint checkers plug into.

One :func:`ast.walk`-style traversal per file, shared by every checker:
each :class:`Checker` declares the node types it cares about via
:meth:`Checker.interests`, and the engine dispatches each node once to
every interested checker — so adding a checker never adds a traversal.
Unlike ``ast.walk``, the engine maintains an *enclosing stack* (the chain
of ``FunctionDef``/``AsyncFunctionDef``/``ClassDef`` nodes above the
current one), which is what the async-hygiene checkers need to know
whether a call site lives inside an ``async def``.

Suppression: code opts out of specific codes with a
``# repro: noqa[GA504]`` comment (comma-separated codes), at two
granularities shared by ``repro lint`` and ``repro analyze``:

* a comment on a line of its own suppresses the codes for the **whole
  file** (an invariant worth suppressing module-wide gets one
  reviewable marker at the top of the file);
* a comment trailing code suppresses the codes **on that line only**
  (a single deliberate exception stays next to the evidence that
  justifies it).

Unknown codes in a noqa marker are themselves reported, so a typo
cannot silently disable a rule.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Type

from repro.analysis.codes import CODES
from repro.analysis.diagnostics import Diagnostic, Report, Severity, SourceSpan

__all__ = ["Checker", "FileContext", "lint_paths", "lint_source"]

_NOQA = re.compile(r"#\s*repro:\s*noqa\[([A-Za-z0-9,\s]+)\]")


class FileContext:
    """Everything a checker may need about the file under analysis."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()
        #: Dotted module path relative to the package root, best-effort
        #: (``src/repro/net/channels.py`` -> ``repro.net.channels``).
        self.module = _module_name(path)
        #: Codes suppressed for the whole file (standalone noqa comments).
        self.suppressed: Set[str] = set()
        #: Codes suppressed per line (noqa comments trailing code).
        self.line_suppressed: Dict[int, Set[str]] = {}
        self.report = Report()
        self._parse_noqa()

    def _parse_noqa(self) -> None:
        # Scan real comment tokens only: a docstring *mentioning* a noqa
        # marker must not suppress anything.  A comment on a line of its
        # own is file-scoped; one trailing code is scoped to that line.
        try:
            tokens = tokenize.generate_tokens(io.StringIO(self.source).readline)
            comments = [
                (t.start[0], t.string, t.line[:t.start[1]].strip())
                for t in tokens
                if t.type == tokenize.COMMENT
            ]
        except (tokenize.TokenError, IndentationError):
            comments = []
        for line, comment, before in comments:
            match = _NOQA.search(comment)
            if not match:
                continue
            for code in match.group(1).split(","):
                code = code.strip()
                if not code:
                    continue
                if code in CODES:
                    if before:
                        self.line_suppressed.setdefault(line, set()).add(code)
                    else:
                        self.suppressed.add(code)
                else:
                    # A typo'd suppression must be loud, not silent.
                    self.report.diagnostics.append(Diagnostic(
                        code="GA500",
                        severity=Severity.ERROR,
                        message=f"noqa marker names unknown code {code!r}",
                        span=SourceSpan(file=self.path, line=line),
                        hint="suppress only codes registered in "
                             "repro.analysis.codes.CODES",
                    ))

    def is_suppressed(self, code: str, line: Optional[int]) -> bool:
        """Whether ``code`` is suppressed here (file- or line-scoped)."""
        if code in self.suppressed:
            return True
        if line is not None and code in self.line_suppressed.get(line, ()):
            return True
        return False

    def add(
        self,
        code: str,
        message: str,
        node: Optional[ast.AST] = None,
        *,
        hint: Optional[str] = None,
        line: Optional[int] = None,
        column: Optional[int] = None,
    ) -> None:
        """Report a finding at ``node`` (or an explicit ``line``/``column``)
        unless a noqa marker suppresses it."""
        if line is None:
            line = getattr(node, "lineno", None)
        if column is None:
            column = getattr(node, "col_offset", None)
        if self.is_suppressed(code, line):
            return
        source_line = None
        if line is not None and 1 <= line <= len(self.lines):
            source_line = self.lines[line - 1]
        self.report.add(
            code,
            message,
            span=SourceSpan(
                file=self.path,
                line=line,
                column=(column + 1) if column is not None else None,
            ),
            hint=hint,
            source_line=source_line,
        )


class Checker:
    """Base class for one lint rule (one ``GAxxx`` code)."""

    #: The diagnostic code this checker emits.
    code: str = ""
    #: Node types the engine should dispatch to :meth:`visit`.
    interests: Tuple[Type[ast.AST], ...] = ()

    def applies_to(self, context: FileContext) -> bool:
        """Whether this rule is in scope for the file (default: yes)."""
        return True

    def begin(self, context: FileContext) -> None:
        """Called once before traversal (reset per-file state)."""

    def visit(
        self,
        node: ast.AST,
        enclosing: Sequence[ast.AST],
        context: FileContext,
    ) -> None:
        """Called for each node matching :attr:`interests`.

        ``enclosing`` is the stack of function/class definitions above
        ``node``, outermost first (``node`` itself excluded).
        """

    def finish(self, context: FileContext) -> None:
        """Called once after traversal (emit whole-file findings)."""


_SCOPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


def _dispatch(
    checkers: Sequence[Checker], context: FileContext
) -> None:
    """One traversal, shared: route nodes to interested checkers."""
    interest_map: Dict[Type[ast.AST], List[Checker]] = {}
    for checker in checkers:
        for node_type in checker.interests:
            interest_map.setdefault(node_type, []).append(checker)

    stack: List[ast.AST] = []

    def walk(node: ast.AST) -> None:
        for checker in interest_map.get(type(node), ()):
            checker.visit(node, stack, context)
        is_scope = isinstance(node, _SCOPES)
        if is_scope:
            stack.append(node)
        for child in ast.iter_child_nodes(node):
            walk(child)
        if is_scope:
            stack.pop()

    walk(context.tree)


def lint_source(
    path: str, source: str, checkers: Sequence[Checker]
) -> Report:
    """Lint one file's source text with the given checkers."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        report = Report()
        report.diagnostics.append(Diagnostic(
            code="GA500",
            severity=Severity.ERROR,
            message=f"cannot parse file: {exc.msg}",
            span=SourceSpan(file=path, line=exc.lineno, column=exc.offset),
        ))
        return report
    context = FileContext(path, source, tree)
    active = [c for c in checkers if c.applies_to(context)]
    for checker in active:
        checker.begin(context)
    if active:
        _dispatch(active, context)
    for checker in active:
        checker.finish(context)
    return context.report


def lint_paths(
    paths: Iterable[str], checkers: Sequence[Checker]
) -> Report:
    """Lint files and directory trees; directories are walked for .py."""
    report = Report()
    for path in _expand(paths):
        source = Path(path).read_text(encoding="utf-8")
        report.extend(lint_source(path, source, checkers))
    return report


def _expand(paths: Iterable[str]) -> List[str]:
    files: List[str] = []
    for entry in paths:
        path = Path(entry)
        if path.is_dir():
            files.extend(sorted(str(p) for p in path.rglob("*.py")))
        else:
            files.append(str(path))
    return files


def _module_name(path: str) -> str:
    """Best-effort dotted module path (anchor at the last ``repro`` dir)."""
    parts = list(Path(path).with_suffix("").parts)
    if "repro" in parts:
        parts = parts[len(parts) - 1 - parts[::-1].index("repro"):]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)
