"""``python -m repro.analysis.analyze`` — whole-program analysis (GA6xx).

Thin command-line front end over the two GA6xx analysis families, also
reachable as ``repro analyze``:

* :func:`repro.analysis.concurrency.analyze_paths` — interprocedural
  lock-order, lock-across-wait and guarded-state analysis (GA600–602);
* :func:`repro.analysis.protocol.check_models` /
  :func:`~repro.analysis.protocol.check_conformance` — exhaustive
  bounded model checking of the wire protocol and the model↔code
  conformance pass (GA610–613).

Output matches ``repro check``/``repro lint``: a rustc-style text
report, or the stable machine-readable JSON document with ``--json``.
The exit code is 0 only when the report is completely clean — any
diagnostic, in either output mode, exits 1.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.analysis.concurrency import analyze_paths
from repro.analysis.diagnostics import Report
from repro.analysis.protocol import check_conformance, check_models, load_models
from repro.net.protocol_model import ProtocolModel

__all__ = ["analyze", "main"]

#: What ``repro analyze`` analyzes when no paths are given.
DEFAULT_TARGETS = ("src/repro",)


def analyze(
    paths: List[str],
    models: Optional[Sequence[ProtocolModel]] = None,
) -> Report:
    """Run every GA6xx analysis over ``paths``.

    ``models`` replaces the built-in bounded protocol configurations
    (:func:`repro.net.protocol_model.bounded_models`); the conformance
    pass picks the protocol role files out of ``paths`` itself.
    """
    report = Report()
    report.extend(analyze_paths(paths))
    report.extend(check_models(models))
    report.extend(check_conformance(paths))
    return report


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro analyze",
        description="whole-program concurrency analysis (lock order, locks "
                    "across waits, guarded state) and protocol model "
                    "checking with model<->code conformance; see "
                    "docs/static_analysis.md",
    )
    parser.add_argument(
        "paths", nargs="*", default=list(DEFAULT_TARGETS),
        help="files or directories to analyze "
             f"(default: {' '.join(DEFAULT_TARGETS)})",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit the machine-readable JSON report instead of text",
    )
    parser.add_argument(
        "--models", metavar="FILE", default=None,
        help="check the MODELS list from this Python file instead of the "
             "built-in bounded protocol configurations",
    )
    args = parser.parse_args(argv)
    models: Optional[Sequence[ProtocolModel]] = None
    if args.models is not None:
        try:
            models = load_models(args.models)
        except (OSError, SyntaxError, ValueError) as exc:
            print(f"cannot load models from {args.models!r}: {exc}",
                  file=sys.stderr)
            return 2
    report = analyze(args.paths, models=models)
    output = report.render_json() if args.json else report.render_text()
    stream = sys.stdout if report.ok else sys.stderr
    print(output, file=stream)
    return 0 if report.clean else 1


if __name__ == "__main__":
    sys.exit(main())
