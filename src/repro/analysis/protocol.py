"""Protocol model checking and model↔code conformance (GA61x).

Two halves, both driven by :mod:`repro.net.protocol_model`:

* :func:`check_models` — an explicit-state model checker.  For every
  bounded model configuration it explores the full reachable state
  space breadth-first (deterministic successor order, so every run
  visits states in the same order) and reports:

  - **GA610** a reachable state with no enabled transition that is not
    a legitimate end of the run (deadlock),
  - **GA611** a reachable state violating the model's safety invariant
    (credit conservation, the export fence, the SYNC barrier),
  - **GA612** a completed run that never met its goal (EOS delivery,
    item conservation across a migration).

  BFS means the reported counterexample trace is a *shortest* one.

* :func:`check_conformance` — an AST pass over the protocol's role
  files (``coordinator.py``, ``worker.py``, ``channels.py``) that maps
  every frame send site (``send_frame``/``encode_frame``/``finish_frame``
  and one level of wrappers whose parameter flows into them) and every
  frame receive
  site (comparisons against ``FrameType.X``) onto the declarative
  transition tables' ``(role, direction, frame)`` alphabet, reporting
  **GA613** in both drift directions: a site the model forbids, and a
  modelled flow the scanned role never implements.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.diagnostics import Report, SourceSpan
from repro.analysis.engine import FileContext
from repro.net.protocol_model import FLOWS, ProtocolModel, bounded_models

__all__ = [
    "FrameSite",
    "ModelFailure",
    "ModelResult",
    "check_conformance",
    "check_models",
    "explore",
    "load_models",
    "scan_frame_sites",
]


# ---------------------------------------------------------------------------
# Explicit-state exploration (GA610/GA611/GA612)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ModelFailure:
    """The first (shortest-trace) defect BFS found in a model."""

    #: ``deadlock`` | ``invariant`` | ``goal``.
    kind: str
    message: str
    #: Action labels from the initial state to the failing state.
    trace: Tuple[str, ...]


@dataclass(frozen=True)
class ModelResult:
    """Outcome of exhaustively exploring one bounded model."""

    name: str
    states: int
    transitions: int
    failure: Optional[ModelFailure]

    @property
    def ok(self) -> bool:
        return self.failure is None


def explore(model: ProtocolModel, max_states: int = 200_000) -> ModelResult:
    """Exhaustively explore ``model`` breadth-first.

    Stops at the first defect; because exploration is breadth-first and
    successor order is fixed, the defect found — and its counterexample
    trace — is deterministic and the trace is a shortest one.
    """
    initial = model.initial()
    parents: Dict[Hashable, Optional[Tuple[Hashable, str]]] = {initial: None}
    queue: "deque[Hashable]" = deque([initial])
    transitions = 0

    def trace_to(state: Hashable) -> Tuple[str, ...]:
        actions: List[str] = []
        at: Optional[Hashable] = state
        while at is not None:
            step = parents[at]
            if step is None:
                break
            at, action = step
            actions.append(action)
        return tuple(reversed(actions))

    while queue:
        state = queue.popleft()
        broken = model.invariant(state)
        if broken is not None:
            return ModelResult(model.name, len(parents), transitions, ModelFailure(
                kind="invariant", message=broken, trace=trace_to(state),
            ))
        successors = model.successors(state)
        if not successors:
            if not model.is_final(state):
                return ModelResult(
                    model.name, len(parents), transitions, ModelFailure(
                        kind="deadlock",
                        message="no transition is enabled in a non-final state",
                        trace=trace_to(state),
                    ))
            unmet = model.goal(state)
            if unmet is not None:
                return ModelResult(
                    model.name, len(parents), transitions, ModelFailure(
                        kind="goal", message=unmet, trace=trace_to(state),
                    ))
            continue
        for action, nxt in successors:
            transitions += 1
            if nxt not in parents:
                parents[nxt] = (state, action)
                queue.append(nxt)
                if len(parents) > max_states:
                    raise ValueError(
                        f"model {model.name!r} exceeds {max_states} states; "
                        "bounded configurations must stay exhaustively "
                        "explorable"
                    )
    return ModelResult(model.name, len(parents), transitions, None)


_FAILURE_CODES = {"deadlock": "GA610", "invariant": "GA611", "goal": "GA612"}
_TRACE_CAP = 20


def _render_trace(trace: Tuple[str, ...]) -> str:
    shown = list(trace)
    prefix = ""
    if len(shown) > _TRACE_CAP:
        prefix = f"... {len(shown) - _TRACE_CAP} step(s) ... -> "
        shown = shown[-_TRACE_CAP:]
    return prefix + " -> ".join(shown) if shown else "<initial state>"


def check_models(models: Optional[Sequence[ProtocolModel]] = None) -> Report:
    """Explore every model, one GA610/GA611/GA612 diagnostic per defect."""
    report = Report()
    for model in bounded_models() if models is None else models:
        result = explore(model)
        if result.failure is None:
            continue
        failure = result.failure
        report.add(
            _FAILURE_CODES[failure.kind],
            f"{failure.message} [counterexample: "
            f"{_render_trace(failure.trace)}]",
            span=SourceSpan(config_path=f"protocol model '{result.name}'"),
        )
    return report


def load_models(path: str) -> List[ProtocolModel]:
    """Load ``MODELS`` from a Python model file (``--models`` / fixtures)."""
    source = Path(path).read_text(encoding="utf-8")
    namespace: Dict[str, Any] = {
        "__name__": f"repro_models_{Path(path).stem}",
        "__file__": str(path),
    }
    exec(compile(source, str(path), "exec"), namespace)
    raw = namespace.get("MODELS")
    if not isinstance(raw, (list, tuple)):
        raise ValueError(
            f"{path}: expected a MODELS list of ProtocolModel instances"
        )
    models: List[ProtocolModel] = []
    for entry in raw:
        if not isinstance(entry, ProtocolModel):
            raise ValueError(
                f"{path}: MODELS entry {entry!r} is not a ProtocolModel"
            )
        models.append(entry)
    return models


# ---------------------------------------------------------------------------
# Model <-> code conformance (GA613)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class FrameSite:
    """One frame send/receive site found in a role file."""

    role: str
    direction: str
    frame: str
    path: str
    line: int
    column: int


#: Which protocol role(s) each file implements.  ``channels.py`` hosts
#: two: the data-plane sender (``OutChannel``) and receiver
#: (``InChannel``), told apart by enclosing class.
_ROLE_FILES = {"coordinator.py": "coordinator", "worker.py": "worker"}
_CHANNEL_ROLES = {"OutChannel": "sender", "InChannel": "receiver"}

#: Known frame-moving callables and the argument position carrying the
#: :class:`~repro.net.protocol.FrameType`.  ``finish_frame`` is the
#: zero-copy send path: it stamps the header onto a pre-built buffer, so
#: the call naming the FrameType *is* the send site.
_SEND_CALLS = {"send_frame": 1, "encode_frame": 0, "finish_frame": 1}


def _call_name(node: ast.Call) -> Optional[str]:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def _frame_attr(node: ast.AST) -> Optional[str]:
    """``FrameType.X`` -> ``"X"``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "FrameType"
    ):
        return node.attr
    return None


def _wrapper_positions(tree: ast.Module) -> Dict[str, int]:
    """Find functions that forward a parameter into a frame send call.

    ``OutChannel._ship(self, frame_type, ...)`` and
    ``Coordinator._expect_ready(self, handle, request, ...)`` do not
    mention a concrete frame type themselves — their *callers* do.  For
    each such wrapper, record which call-site argument position carries
    the frame type (``self`` excluded), so the scanner can classify
    ``self._ship(FrameType.DATA, ...)`` as a DATA send site.  One level
    deep: a wrapper of a wrapper is not followed.
    """
    positions: Dict[str, int] = {}
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        params = [a.arg for a in node.args.posonlyargs + node.args.args]
        for call in ast.walk(node):
            if not isinstance(call, ast.Call):
                continue
            name = _call_name(call)
            if name not in _SEND_CALLS:
                continue
            position = _SEND_CALLS[name]
            if position >= len(call.args):
                continue
            argument = call.args[position]
            if not isinstance(argument, ast.Name):
                continue
            if argument.id not in params:
                continue
            index = params.index(argument.id)
            if params and params[0] in ("self", "cls"):
                index -= 1
            if index >= 0:
                positions[node.name] = index
    return positions


class _SiteCollector(ast.NodeVisitor):
    """Walk one role file collecting frame send/receive sites."""

    def __init__(self, path: str, default_role: Optional[str],
                 wrappers: Dict[str, int]) -> None:
        self.path = path
        self.default_role = default_role
        self.wrappers = wrappers
        self.class_stack: List[str] = []
        self.sites: List[FrameSite] = []
        self.roles_seen: Set[str] = set()

    def _role_here(self) -> Optional[str]:
        if self.default_role is not None:
            return self.default_role
        for cls in reversed(self.class_stack):
            if cls in _CHANNEL_ROLES:
                return _CHANNEL_ROLES[cls]
        return None

    def _record(self, direction: str, frame: str, node: ast.AST) -> None:
        role = self._role_here()
        if role is None:
            return
        self.roles_seen.add(role)
        self.sites.append(FrameSite(
            role=role, direction=direction, frame=frame, path=self.path,
            line=getattr(node, "lineno", 0),
            column=getattr(node, "col_offset", 0),
        ))

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.class_stack.append(node.name)
        self.generic_visit(node)
        self.class_stack.pop()

    def visit_Call(self, node: ast.Call) -> None:
        name = _call_name(node)
        position = _SEND_CALLS.get(name or "", self.wrappers.get(name or "", -1))
        if position >= 0 and position < len(node.args):
            frame = _frame_attr(node.args[position])
            if frame is not None:
                self._record("send", frame, node.args[position])
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        # A comparison against FrameType.X is how every reader dispatches
        # on an incoming frame; membership tests put the attributes in a
        # tuple, so look anywhere inside the comparison.
        for child in ast.walk(node):
            frame = _frame_attr(child)
            if frame is not None:
                self._record("recv", frame, child)
        self.generic_visit(node)


def scan_frame_sites(
    path: str, tree: ast.Module
) -> Tuple[List[FrameSite], Set[str]]:
    """All frame sites in one file, plus the roles the file implements."""
    basename = Path(path).name
    default_role = _ROLE_FILES.get(basename)
    if default_role is None and basename != "channels.py":
        return [], set()
    collector = _SiteCollector(path, default_role, _wrapper_positions(tree))
    collector.visit(tree)
    roles = set([default_role] if default_role else _CHANNEL_ROLES.values())
    return collector.sites, roles


def check_conformance(paths: Iterable[str]) -> Report:
    """GA613: frame traffic must match the declarative transition tables.

    Both drift directions are reported: a send/receive site whose
    ``(role, direction, frame)`` triple no transition allows, and a
    modelled flow that a scanned role never implements.  Only roles
    whose file was actually scanned get absence findings — analyzing
    ``coordinator.py`` alone says nothing about the worker.
    """
    report = Report()
    seen: Set[Tuple[str, str, str]] = set()
    scanned_roles: Set[str] = set()
    contexts: List[Tuple[str, FileContext]] = []
    for path in _expand_role_files(paths):
        source = Path(path).read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            report.add(
                "GA500",
                f"cannot parse file: {exc.msg}",
                span=SourceSpan(file=path, line=exc.lineno, column=exc.offset),
            )
            continue
        sites, roles = scan_frame_sites(path, tree)
        if not roles:
            continue
        context = FileContext(path, source, tree)
        scanned_roles.update(roles)
        contexts.append((path, context))
        for site in sites:
            seen.add((site.role, site.direction, site.frame))
            if (site.role, site.direction, site.frame) not in FLOWS:
                verb = "sends" if site.direction == "send" else "receives"
                context.add(
                    "GA613",
                    f"the {site.role} {verb} {site.frame}, but no protocol "
                    f"transition moves {site.frame} that way",
                    line=site.line,
                    column=site.column,
                )
    # Absence direction: modelled flows the scanned roles never exhibit.
    role_contexts = {
        role: (path, context)
        for path, context in contexts
        for role in _roles_of(path)
    }
    for role, direction, frame in sorted(FLOWS):
        if role not in scanned_roles or (role, direction, frame) in seen:
            continue
        path, context = role_contexts[role]
        verb = "send" if direction == "send" else "receive"
        context.add(
            "GA613",
            f"the protocol model expects the {role} to {verb} {frame}, "
            f"but no site in {path} does",
        )
    for _, context in contexts:
        report.extend(context.report)
    return report


def _roles_of(path: str) -> Set[str]:
    basename = Path(path).name
    if basename in _ROLE_FILES:
        return {_ROLE_FILES[basename]}
    if basename == "channels.py":
        return set(_CHANNEL_ROLES.values())
    return set()


def _expand_role_files(paths: Iterable[str]) -> List[str]:
    """Expand directories, keeping only protocol role files."""
    names = set(_ROLE_FILES) | {"channels.py"}
    files: List[str] = []
    for entry in paths:
        path = Path(entry)
        if path.is_dir():
            files.extend(
                sorted(str(p) for p in path.rglob("*.py") if p.name in names)
            )
        elif path.name in names:
            files.append(str(path))
    return files
