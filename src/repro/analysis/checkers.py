"""The AST lint rules (GA501-GA509).

Each rule enforces a repo-specific invariant that a generic linter cannot
express — they encode contracts established by earlier subsystems:

* GA501 — metric names must instantiate a template from the
  :mod:`repro.obs.names` catalog (the registry enforces this at runtime;
  the lint moves the failure to authoring time).
* GA502/GA503 — the simulation is deterministic: no wall clock, no
  global RNG, in :mod:`repro.simnet` / :mod:`repro.core.runtime_sim`.
* GA504/GA505 — async hygiene in :mod:`repro.net`: no blocking calls in
  ``async def``, no synchronous lock held across an ``await``.
* GA506 — the checkpoint contract: processor classes override
  ``snapshot``/``restore`` together or not at all.
* GA507 — no bare or silently-swallowed ``except`` in data-plane code.
* GA508 — every public function/method in :mod:`repro.core` carries a
  docstring (the core API is the middleware's contract surface).
* GA509 — record/replay determinism: wall-clock and global-RNG reads in
  :mod:`repro.ledger` and in stage ``on_item`` bodies go through the
  :class:`~repro.ledger.DeterministicContext` (``context.det``).

Scoping is by module path (see each checker's ``applies_to``); a file
opts out of one rule with ``# repro: noqa[GAxxx]`` (see
:mod:`repro.analysis.engine`).
"""

from __future__ import annotations

import ast
from typing import List, Optional, Sequence, Tuple

from repro.analysis.engine import Checker, FileContext

__all__ = [
    "ALL_CHECKERS",
    "AsyncBlockingCallChecker",
    "BareExceptChecker",
    "DeterministicReadChecker",
    "LockAcrossAwaitChecker",
    "MetricNameChecker",
    "ModuleLevelRandomChecker",
    "PublicDocstringChecker",
    "SnapshotContractChecker",
    "WallClockChecker",
    "default_checkers",
]

#: Module prefixes whose event order must be reproducible run-to-run.
DETERMINISTIC_PREFIXES = ("repro.simnet", "repro.core.runtime_sim")

#: Module prefixes that move stream data (where a swallowed exception
#: silently loses items or corrupts accounting).
DATA_PLANE_PREFIXES = (
    "repro.core",
    "repro.grid",
    "repro.net",
    "repro.simnet",
    "repro.streams",
)


def _in_modules(context: FileContext, prefixes: Tuple[str, ...]) -> bool:
    return any(
        context.module == p or context.module.startswith(p + ".")
        for p in prefixes
    )


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _nearest_function(enclosing: Sequence[ast.AST]) -> Optional[ast.AST]:
    for node in reversed(enclosing):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return node
    return None


class MetricNameChecker(Checker):
    """GA501: metric-name literals must resolve in the obs catalog."""

    code = "GA501"
    interests = (ast.Call,)
    #: Registry factory methods whose first argument is a metric name.
    METHODS = ("counter", "gauge", "histogram", "series")
    #: Receiver names treated as a MetricsRegistry.
    RECEIVERS = ("metrics", "registry")

    def visit(
        self, node: ast.Call, enclosing: Sequence[ast.AST],
        context: FileContext,
    ) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr not in self.METHODS:
            return
        receiver = _dotted(func.value)
        if receiver is None or receiver.split(".")[-1] not in self.RECEIVERS:
            return
        if not node.args:
            return
        name = self._literal_template(node.args[0])
        if name is None:
            return  # dynamic name; the registry still validates at runtime
        from repro.obs.names import METRICS, spec_for

        if name.startswith("\x00"):
            # f-string starting with a placeholder: the prefix may carry
            # dots, so match the literal suffix against the catalog.
            suffix = name[1:]
            if suffix and any(s.template.endswith(suffix) for s in METRICS):
                return
        elif spec_for(name) is not None:
            return
        shown = name.replace("\x00", "{...}")
        context.add(
            self.code,
            f"metric name {shown!r} matches no template in "
            "repro.obs.names.METRICS",
            node.args[0],
        )

    @staticmethod
    def _literal_template(node: ast.expr) -> Optional[str]:
        """A checkable name: literal, or f-string with placeholder marks.

        Interior placeholders become a dot-free marker (entity names
        never contain dots, matching the catalog's ``{x}`` semantics); a
        *leading* placeholder is NUL-prefixed so the caller knows only
        the suffix is trustworthy.
        """
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value
        if not isinstance(node, ast.JoinedStr):
            return None
        parts: List[str] = []
        for i, piece in enumerate(node.values):
            if isinstance(piece, ast.Constant) and isinstance(piece.value, str):
                parts.append(piece.value)
            elif i == 0:
                parts.append("\x00")
            else:
                parts.append("X")
        return "".join(parts)


class WallClockChecker(Checker):
    """GA502: no wall-clock reads in deterministic modules."""

    code = "GA502"
    interests = (ast.Call,)
    FORBIDDEN = (
        "time.time", "time.monotonic", "time.perf_counter",
        "time.time_ns", "time.monotonic_ns",
        "datetime.now", "datetime.utcnow",
        "datetime.datetime.now", "datetime.datetime.utcnow",
    )

    def applies_to(self, context: FileContext) -> bool:
        return _in_modules(context, DETERMINISTIC_PREFIXES)

    def visit(
        self, node: ast.Call, enclosing: Sequence[ast.AST],
        context: FileContext,
    ) -> None:
        name = _dotted(node.func)
        if name in self.FORBIDDEN:
            context.add(
                self.code,
                f"{name}() reads the wall clock in deterministic module "
                f"{context.module}",
                node,
            )


class ModuleLevelRandomChecker(Checker):
    """GA503: no global-RNG calls in deterministic modules."""

    code = "GA503"
    interests = (ast.Call,)
    #: ``random.<attr>`` calls that are *not* violations (constructors of
    #: seedable instances).
    ALLOWED = ("Random", "SystemRandom")

    def applies_to(self, context: FileContext) -> bool:
        return _in_modules(context, DETERMINISTIC_PREFIXES)

    def visit(
        self, node: ast.Call, enclosing: Sequence[ast.AST],
        context: FileContext,
    ) -> None:
        func = node.func
        if not (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "random"):
            return
        if func.attr in self.ALLOWED:
            return
        context.add(
            self.code,
            f"random.{func.attr}() uses the unseeded module-level RNG in "
            f"deterministic module {context.module}; use a "
            "random.Random(seed) instance",
            node,
        )


class AsyncBlockingCallChecker(Checker):
    """GA504: no blocking calls inside ``async def`` bodies."""

    code = "GA504"
    interests = (ast.Call,)
    BLOCKING = (
        "time.sleep",
        "socket.create_connection",
        "socket.getaddrinfo",
        "subprocess.run",
        "subprocess.check_output",
        "subprocess.check_call",
    )

    def applies_to(self, context: FileContext) -> bool:
        return _in_modules(context, ("repro.net",))

    def visit(
        self, node: ast.Call, enclosing: Sequence[ast.AST],
        context: FileContext,
    ) -> None:
        if not isinstance(_nearest_function(enclosing), ast.AsyncFunctionDef):
            return
        name = _dotted(node.func)
        if name in self.BLOCKING or name == "open":
            context.add(
                self.code,
                f"blocking call {name}() inside an async function stalls "
                "the event loop",
                node,
            )


class LockAcrossAwaitChecker(Checker):
    """GA505: no synchronous lock held across an ``await`` point."""

    code = "GA505"
    interests = (ast.With,)

    def applies_to(self, context: FileContext) -> bool:
        return _in_modules(context, ("repro.net",))

    def visit(
        self, node: ast.With, enclosing: Sequence[ast.AST],
        context: FileContext,
    ) -> None:
        if not isinstance(_nearest_function(enclosing), ast.AsyncFunctionDef):
            return
        if not self._manages_lock(node):
            return
        for child in node.body:
            for inner in ast.walk(child):
                if isinstance(inner, ast.Await):
                    context.add(
                        self.code,
                        "synchronous lock held across an await point; the "
                        "event loop can deadlock behind it",
                        node,
                    )
                    return

    @staticmethod
    def _manages_lock(node: ast.With) -> bool:
        for item in node.items:
            expr = item.context_expr
            if isinstance(expr, ast.Call):
                expr = expr.func
            name = _dotted(expr)
            if name and "lock" in name.split(".")[-1].lower():
                return True
        return False


class SnapshotContractChecker(Checker):
    """GA506: processor classes override snapshot/restore together."""

    code = "GA506"
    interests = (ast.ClassDef,)
    #: Base-name suffixes marking a class as a stream processor.
    BASE_MARKERS = ("StreamProcessor", "Stage")

    def visit(
        self, node: ast.ClassDef, enclosing: Sequence[ast.AST],
        context: FileContext,
    ) -> None:
        if not self._is_processor(node):
            return
        methods = {
            item.name
            for item in node.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        has_snapshot = "snapshot" in methods
        has_restore = "restore" in methods
        if has_snapshot != has_restore:
            present = "snapshot" if has_snapshot else "restore"
            missing = "restore" if has_snapshot else "snapshot"
            context.add(
                self.code,
                f"class {node.name} overrides {present}() without "
                f"{missing}(); failover cannot rebuild its state",
                node,
            )

    def _is_processor(self, node: ast.ClassDef) -> bool:
        for base in node.bases:
            name = _dotted(base)
            if name is None:
                continue
            tail = name.split(".")[-1]
            if any(tail.endswith(marker) for marker in self.BASE_MARKERS):
                return True
        return False


class BareExceptChecker(Checker):
    """GA507: no bare or silently-swallowed except in data-plane code."""

    code = "GA507"
    interests = (ast.ExceptHandler,)
    BROAD = ("Exception", "BaseException")

    def applies_to(self, context: FileContext) -> bool:
        return _in_modules(context, DATA_PLANE_PREFIXES)

    def visit(
        self, node: ast.ExceptHandler, enclosing: Sequence[ast.AST],
        context: FileContext,
    ) -> None:
        if node.type is None:
            context.add(
                self.code,
                "bare except: catches everything, including KeyboardInterrupt",
                node,
            )
            return
        name = _dotted(node.type)
        if name is None or name.split(".")[-1] not in self.BROAD:
            return
        if all(self._is_noop(stmt) for stmt in node.body):
            context.add(
                self.code,
                f"except {name}: swallows the exception silently",
                node,
            )

    @staticmethod
    def _is_noop(stmt: ast.stmt) -> bool:
        if isinstance(stmt, ast.Pass):
            return True
        return (isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Constant)
                and stmt.value.value is Ellipsis)


class PublicDocstringChecker(Checker):
    """GA508: public functions in :mod:`repro.core` carry docstrings.

    Scope: module-level functions and methods whose name does not start
    with an underscore (dunders are therefore exempt), defined in a
    public class if any, and not nested inside another function.  The
    core package is the API surface users program stages against, so an
    undocumented public callable there is an undocumented contract.
    """

    code = "GA508"
    interests = (ast.FunctionDef, ast.AsyncFunctionDef)

    def applies_to(self, context: FileContext) -> bool:
        return _in_modules(context, ("repro.core",))

    def visit(
        self, node: ast.AST, enclosing: Sequence[ast.AST],
        context: FileContext,
    ) -> None:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        if node.name.startswith("_"):
            return
        if _nearest_function(enclosing) is not None:
            return  # a closure, not API surface
        classes = [n for n in enclosing if isinstance(n, ast.ClassDef)]
        if any(cls.name.startswith("_") for cls in classes):
            return  # a method of a private class
        if ast.get_docstring(node) is not None:
            return
        where = ".".join([cls.name for cls in classes] + [node.name])
        context.add(
            self.code,
            f"public function {where}() has no docstring; repro.core is "
            "the user-facing API and must document its contract",
            node,
        )


class DeterministicReadChecker(Checker):
    """GA509: nondeterministic reads must go through ``context.det``.

    Scope: everywhere in :mod:`repro.ledger` (the replay subsystem must
    itself be replay-clean), plus every stage ``on_item`` body anywhere
    (the per-item path is what record/replay pins).  A direct wall-clock
    or global-RNG call there produces values the run ledger never sees,
    so a recorded run cannot replay bit-identically.
    """

    code = "GA509"
    interests = (ast.Call,)
    CLOCK = WallClockChecker.FORBIDDEN
    #: ``random.<attr>`` calls that are not draws (seedable constructors).
    RNG_ALLOWED = ModuleLevelRandomChecker.ALLOWED

    def visit(
        self, node: ast.Call, enclosing: Sequence[ast.AST],
        context: FileContext,
    ) -> None:
        name = _dotted(node.func)
        if name is None:
            return
        is_clock = name in self.CLOCK
        is_rng = (
            name.startswith("random.")
            and name.count(".") == 1
            and name.split(".")[1] not in self.RNG_ALLOWED
        )
        if not (is_clock or is_rng):
            return
        in_ledger = _in_modules(context, ("repro.ledger",))
        function = _nearest_function(enclosing)
        in_on_item = (
            function is not None
            and getattr(function, "name", "") == "on_item"
        )
        if not (in_ledger or in_on_item):
            return
        where = (
            f"module {context.module}" if in_ledger
            else "a stage on_item() body"
        )
        kind = "reads the wall clock" if is_clock else "draws from the global RNG"
        context.add(
            self.code,
            f"{name}() {kind} in {where}; route it through "
            "context.det (now()/draw()) so record/replay can pin it",
            node,
        )


ALL_CHECKERS = (
    MetricNameChecker,
    WallClockChecker,
    ModuleLevelRandomChecker,
    AsyncBlockingCallChecker,
    LockAcrossAwaitChecker,
    SnapshotContractChecker,
    BareExceptChecker,
    PublicDocstringChecker,
    DeterministicReadChecker,
)


def default_checkers() -> List[Checker]:
    """Fresh instances of every registered checker."""
    return [checker() for checker in ALL_CHECKERS]
