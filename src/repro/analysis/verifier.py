"""Multi-pass semantic verifier for application configurations.

The Launcher "parses an XML file specifying the configuration information
of an application" before the Deployer touches the grid (Section 3.2).
:meth:`AppConfig.validate` only enforces the structural minimum (names,
endpoints, acyclicity); this module is the deep pre-deploy gate that the
``repro check`` command and all three runtimes run, covering what
otherwise surfaces at runtime — possibly mid-failover on a remote worker:

* **graph passes** — cycles (GA101), dangling stream endpoints (GA102),
  duplicate streams between one stage pair (GA103, which the single-edge
  stage graph would silently collapse), disconnected stages (GA104),
  duplicate names (GA105), declared fan-in vs. connected streams (GA106);
* **adaptation passes** — parameter range and shape errors (GA201-203,
  GA207), Section-4 increment-grid reachability (GA204-206), stage
  properties that mirror a parameter but disagree with it (GA208);
* **deployment passes** — stage code resolution through the repository
  (GA301), the snapshot/restore checkpoint contract (GA302), a placement
  feasibility dry-run against the Matchmaker (GA303), and summary-stream
  item sizes vs. the wire codec (GA304).

Entry points: :func:`verify_path` / :func:`verify_document` analyze XML
text (tolerantly parsed, with line numbers); :func:`verify_config`
analyzes an in-memory :class:`~repro.grid.config.AppConfig` (used by the
runtimes' pre-deploy gates).  All return a
:class:`~repro.analysis.diagnostics.Report`.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Iterable, List, Optional, Tuple

import networkx as nx

from repro.analysis.diagnostics import Report
from repro.analysis.xmlparse import (
    RawApp,
    RawParameter,
    RawStage,
    parse_document,
)

__all__ = ["verify_config", "verify_document", "verify_path", "verify_raw"]

#: Relative/absolute tolerance for the increment-grid arithmetic: config
#: values are human-written decimals, so exact float equality is wrong.
_TOL = 1e-9

#: Stage property declaring the expected number of incoming streams.
FAN_IN_PROPERTY = "fan-in"

#: Stage property marking a sketch-producing stage (its output streams
#: carry (value, count) summary pairs in the streams.wire codec).
SKETCH_PROPERTY = "sketch"

#: Stage property opting a stage into live migration ("true" / "false").
MIGRATABLE_PROPERTY = "migratable"

#: Stage property declaring the pipeline records to the run ledger.
LEDGER_ENABLED_PROPERTY = "ledger-enabled"

#: Stage property waiving the GA240 idempotent-sink requirement.
AT_LEAST_ONCE_OK_PROPERTY = "at-least-once-ok"


def verify_path(
    path: str,
    *,
    repository: Optional[object] = None,
    registry: Optional[object] = None,
) -> Report:
    """Verify the configuration document at ``path``."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    return verify_document(
        text, filename=path, repository=repository, registry=registry
    )


def verify_document(
    text: str,
    filename: Optional[str] = None,
    *,
    repository: Optional[object] = None,
    registry: Optional[object] = None,
) -> Report:
    """Verify configuration XML ``text`` (tolerant parse, all passes)."""
    app, shape_diagnostics = parse_document(text, filename)
    report = Report(shape_diagnostics)
    if app is not None:
        report.extend(verify_raw(app, repository=repository, registry=registry))
    return report


def verify_config(
    config: "AppConfig",  # noqa: F821 - imported lazily to avoid a cycle
    *,
    repository: Optional[object] = None,
    registry: Optional[object] = None,
    resilience: Optional[object] = None,
    migrating: Optional[Iterable[str]] = None,
) -> Report:
    """Verify an in-memory AppConfig (no file spans, same passes)."""
    return verify_raw(
        RawApp.from_config(config), repository=repository, registry=registry,
        resilience=resilience, migrating=migrating,
    )


def verify_raw(
    app: RawApp,
    *,
    repository: Optional[object] = None,
    registry: Optional[object] = None,
    resilience: Optional[object] = None,
    migrating: Optional[Iterable[str]] = None,
) -> Report:
    """Run every semantic pass over a tolerant document model.

    ``repository`` (a :class:`~repro.grid.repository.CodeRepository`)
    enables the code-resolution and checkpoint-contract passes;
    ``registry`` (a :class:`~repro.grid.registry.ServiceRegistry` with a
    registered network) enables the placement dry-run.  Either may be
    None, which skips the corresponding passes — the graph and parameter
    passes never need external services.

    ``migrating`` names stages treated as migration-enabled in addition
    to any declaring ``migratable: true``; ``resilience`` (a
    :class:`~repro.resilience.policy.ResilienceConfig`) lets the GA231
    pass confirm the checkpoint store backing a migration-enabled run
    is actually armed.
    """
    report = Report()
    _check_names(app, report)
    _check_graph(app, report)
    _check_fan_in(app, report)
    for stage in app.stages:
        _check_parameters(app, stage, report)
        _check_property_mirrors(app, stage, report)
        _check_batching(app, stage, report)
        _check_sharding(app, stage, report)
    _check_wire(app, report)
    _check_migration(app, repository, resilience, migrating, report)
    _check_ledger(app, repository, report)
    if repository is not None:
        _check_codes(app, repository, report)
    if registry is not None:
        _check_placement(app, registry, report)
    return report


def _add(
    report: Report,
    app: RawApp,
    code: str,
    message: str,
    *,
    line: Optional[int] = None,
    config_path: Optional[str] = None,
) -> None:
    """Report a finding located in ``app`` (attaching the source line)."""
    report.add(
        code,
        message,
        span=app.span(line, config_path),
        source_line=app.excerpt(line),
    )


# -- GA1xx: names and graph ----------------------------------------------------


def _check_names(app: RawApp, report: Report) -> None:
    """GA100 (empty app), GA105 (duplicate names), GA207 (dup parameters)."""
    if not app.stages:
        _add(report, app, "GA100",
             f"application {app.name!r} declares no stages")
    seen_stages: Dict[str, RawStage] = {}
    for stage in app.stages:
        if stage.name in seen_stages:
            _add(report, app, "GA105",
                 f"stage name {stage.name!r} declared more than once",
                 line=stage.line, config_path=f"stage {stage.name!r}")
        else:
            seen_stages[stage.name] = stage
    seen_streams: Dict[str, int] = {}
    for stream in app.streams:
        if stream.name in seen_streams:
            _add(report, app, "GA105",
                 f"stream name {stream.name!r} declared more than once",
                 line=stream.line, config_path=f"stream {stream.name!r}")
        else:
            seen_streams[stream.name] = 1
    for stage in app.stages:
        declared: Dict[str, int] = {}
        for param in stage.parameters:
            if param.name and param.name in declared:
                _add(report, app, "GA207",
                     f"stage {stage.name!r} declares parameter "
                     f"{param.name!r} twice",
                     line=param.line,
                     config_path=f"stage {stage.name!r} / "
                                 f"parameter {param.name!r}")
            declared[param.name] = 1


def _check_graph(app: RawApp, report: Report) -> None:
    """GA101 (cycles), GA102 (dangling endpoints), GA103 (duplicate
    edges), GA104 (disconnected stages)."""
    known = {stage.name for stage in app.stages}
    pairs: Dict[Tuple[str, str], List[str]] = {}
    graph = nx.DiGraph()
    graph.add_nodes_from(known)
    for stream in app.streams:
        dangling = False
        for label, endpoint in (("from", stream.src), ("to", stream.dst)):
            if endpoint not in known:
                _add(report, app, "GA102",
                     f"stream {stream.name!r} {label}= references unknown "
                     f"stage {endpoint!r}",
                     line=stream.line, config_path=f"stream {stream.name!r}")
                dangling = True
        if dangling:
            continue
        pairs.setdefault((stream.src, stream.dst), []).append(stream.name)
        graph.add_edge(stream.src, stream.dst)
    for (src, dst), names in sorted(pairs.items()):
        if len(names) > 1:
            first, rest = names[0], names[1:]
            _add(report, app, "GA103",
                 f"streams {', '.join(repr(n) for n in rest)} duplicate "
                 f"stream {first!r} between {src!r} and {dst!r}",
                 config_path=f"stream {rest[0]!r}")
    if not nx.is_directed_acyclic_graph(graph):
        cycle = nx.find_cycle(graph)
        path = " -> ".join([edge[0] for edge in cycle] + [cycle[0][0]])
        _add(report, app, "GA101",
             f"stage graph has a cycle: {path}")
    if len(app.stages) > 1:
        touched = {s.src for s in app.streams} | {s.dst for s in app.streams}
        for stage in app.stages:
            if stage.name not in touched:
                _add(report, app, "GA104",
                     f"stage {stage.name!r} has no incoming or outgoing "
                     "streams",
                     line=stage.line, config_path=f"stage {stage.name!r}")


def _check_fan_in(app: RawApp, report: Report) -> None:
    """GA106: the optional ``fan-in`` property must match the in-degree."""
    for stage in app.stages:
        declared = stage.properties.get(FAN_IN_PROPERTY)
        if declared is None:
            continue
        config_path = f"stage {stage.name!r}"
        try:
            expected = int(declared)
        except ValueError:
            _add(report, app, "GA106",
                 f"stage {stage.name!r}: {FAN_IN_PROPERTY} property "
                 f"{declared!r} is not an integer",
                 line=stage.line, config_path=config_path)
            continue
        actual = sum(1 for s in app.streams if s.dst == stage.name)
        if expected != actual:
            _add(report, app, "GA106",
                 f"stage {stage.name!r} declares {FAN_IN_PROPERTY}="
                 f"{expected} but {actual} incoming stream"
                 f"{'s connect' if actual != 1 else ' connects'} to it",
                 line=stage.line, config_path=config_path)


# -- GA2xx: adaptation parameters ----------------------------------------------


def _off_grid(offset: float, increment: float) -> bool:
    """True when ``offset`` is not a whole multiple of ``increment``."""
    steps = offset / increment
    return abs(steps - round(steps)) > _TOL * max(1.0, abs(steps))


def _check_parameters(app: RawApp, stage: RawStage, report: Report) -> None:
    """GA201-GA206 for every parameter of one stage."""
    for param in stage.parameters:
        if not param.ok:
            continue  # shape errors already reported as GA100
        config_path = f"stage {stage.name!r} / parameter {param.name!r}"

        def emit(code: str, message: str, _p: RawParameter = param,
                 _cp: str = config_path) -> None:
            _add(report, app, code, message, line=_p.line, config_path=_cp)

        range_ok = True
        if param.minimum > param.maximum:
            emit("GA202",
                 f"parameter {param.name!r}: min {param.minimum:g} > "
                 f"max {param.maximum:g}")
            range_ok = False
        elif not (param.minimum <= param.init <= param.maximum):
            emit("GA201",
                 f"parameter {param.name!r}: init {param.init:g} outside "
                 f"[{param.minimum:g}, {param.maximum:g}]")
            range_ok = False
        stepping_ok = True
        if not (param.increment > 0):  # catches NaN too
            emit("GA203",
                 f"parameter {param.name!r}: increment must be > 0, "
                 f"got {param.increment:g}")
            stepping_ok = False
        if param.direction not in (-1.0, 1.0):
            emit("GA203",
                 f"parameter {param.name!r}: direction must be +1 or -1, "
                 f"got {param.direction:g}")
            stepping_ok = False
        if not (range_ok and stepping_ok):
            continue
        span = param.maximum - param.minimum
        if span > 0 and param.increment > span + _TOL:
            emit("GA206",
                 f"parameter {param.name!r}: increment {param.increment:g} "
                 f"exceeds the adjustable span {span:g}")
            continue
        if span > 0 and _off_grid(span, param.increment):
            emit("GA204",
                 f"parameter {param.name!r}: max {param.maximum:g} is not "
                 f"min + k*increment (increment {param.increment:g}), so "
                 "adaptation only reaches it by clamping")
        if _off_grid(param.init - param.minimum, param.increment):
            emit("GA205",
                 f"parameter {param.name!r}: init {param.init:g} is off the "
                 f"min + k*increment grid (increment {param.increment:g}); "
                 "the first adjustment will move it")


def _check_property_mirrors(app: RawApp, stage: RawStage, report: Report) -> None:
    """GA208: ``name``/``name-min``/``name-max`` properties must agree
    with the parameter declaration they mirror."""
    for param in stage.parameters:
        if not param.ok or not param.name:
            continue
        mirrors = (
            (param.name, "init", param.init),
            (f"{param.name}-min", "min", param.minimum),
            (f"{param.name}-max", "max", param.maximum),
        )
        for key, attribute, declared in mirrors:
            text = stage.properties.get(key)
            if text is None:
                continue
            try:
                value = float(text)
            except ValueError:
                continue  # non-numeric property, not a mirror
            if not math.isclose(value, declared, rel_tol=_TOL, abs_tol=_TOL):
                _add(report, app, "GA208",
                     f"stage {stage.name!r}: property {key}={value:g} "
                     f"disagrees with parameter {param.name!r} "
                     f"{attribute}={declared:g}",
                     line=param.line,
                     config_path=f"stage {stage.name!r} / property {key!r}")


def _check_batching(app: RawApp, stage: RawStage, report: Report) -> None:
    """GA210: batch properties must parse, and the flush delay must stay
    under the Section-4 sampling interval.

    A partial batch held for longer than one sampling interval means the
    adaptation monitor's queue-length samples alternate between "starved"
    (everything buffered upstream) and "burst" (a whole batch landed at
    once) — load the batching itself manufactured, which the estimator
    then reacts to.
    """
    from repro.core.adaptation.policy import AdaptationPolicy
    from repro.core.batching import MAX_DELAY_PROPERTY, MAX_ITEMS_PROPERTY

    config_path = f"stage {stage.name!r}"
    items_text = stage.properties.get(MAX_ITEMS_PROPERTY)
    if items_text is not None:
        try:
            max_items = int(items_text)
        except ValueError:
            max_items = 0
        if max_items < 1:
            _add(report, app, "GA210",
                 f"stage {stage.name!r}: {MAX_ITEMS_PROPERTY}="
                 f"{items_text!r} is not an integer >= 1",
                 line=stage.line, config_path=config_path)
    delay_text = stage.properties.get(MAX_DELAY_PROPERTY)
    if delay_text is None:
        return
    try:
        max_delay = float(delay_text)
    except ValueError:
        _add(report, app, "GA210",
             f"stage {stage.name!r}: {MAX_DELAY_PROPERTY}="
             f"{delay_text!r} is not a number",
             line=stage.line, config_path=config_path)
        return
    if math.isnan(max_delay) or max_delay < 0:
        _add(report, app, "GA210",
             f"stage {stage.name!r}: {MAX_DELAY_PROPERTY}="
             f"{max_delay:g} must be >= 0",
             line=stage.line, config_path=config_path)
        return
    sample_interval = AdaptationPolicy().sample_interval
    if max_delay >= sample_interval:
        _add(report, app, "GA210",
             f"stage {stage.name!r}: {MAX_DELAY_PROPERTY}={max_delay:g} "
             f"is not below the adaptation sampling interval "
             f"({sample_interval:g}s); the monitor would sample bursts "
             "the batching itself creates",
             line=stage.line, config_path=config_path)


def _check_sharding(app: RawApp, stage: RawStage, report: Report) -> None:
    """GA220 (invalid shard/scale contract), GA221 (inert knobs).

    GA220 applies exactly the parsing that
    :func:`repro.core.sharding.expand_shards` would run at deployment, so
    a malformed ``replicas``/``shard-*``/``scale-*`` declaration fails at
    analysis time.  GA221 flags declarations that parse but do nothing: a
    ``shard-*``/``scale-*`` knob on a stage with no ``replicas`` property
    (expansion is keyed on ``replicas``, so the knob is inert), and a
    range partitioner with fewer than ``slots - 1`` boundaries (the
    boundary list induces ``len + 1`` ranges, so the replica slots above
    that can never own a key).
    """
    from repro.core.sharding import (
        BOUNDARIES_PROPERTY,
        KNOBS,
        PARTITIONER_PROPERTY,
        REPLICAS_PROPERTY,
        SHARD_GROUP_PROPERTY,
        ShardingError,
        validate_shard_properties,
    )

    config_path = f"stage {stage.name!r}"
    try:
        spec = validate_shard_properties(stage.name, dict(stage.properties))
    except ShardingError as exc:
        _add(report, app, "GA220", str(exc),
             line=stage.line, config_path=config_path)
        return
    if spec is None:
        if SHARD_GROUP_PROPERTY in stage.properties:
            return  # an already-expanded replica; markers are expected
        inert = sorted(
            knob for knob in KNOBS
            if knob != REPLICAS_PROPERTY and knob in stage.properties
        )
        if inert:
            _add(report, app, "GA221",
                 f"stage {stage.name!r}: {', '.join(inert)} without "
                 f"{REPLICAS_PROPERTY} has no effect; the stage will "
                 "not be sharded",
                 line=stage.line, config_path=config_path)
        return
    _replicas, slots, _policy = spec
    if stage.properties.get(PARTITIONER_PROPERTY, "hash") == "range":
        boundaries_text = stage.properties.get(BOUNDARIES_PROPERTY, "")
        boundaries = [b for b in boundaries_text.split(",") if b.strip()]
        if len(boundaries) < slots - 1:
            _add(report, app, "GA221",
                 f"stage {stage.name!r}: range partitioner declares "
                 f"{len(boundaries)} boundaries for {slots} replica "
                 f"slots; slots above {len(boundaries)} can never own "
                 "any keys",
                 line=stage.line, config_path=config_path)


# -- GA23x: live migration -----------------------------------------------------


def _check_migration(
    app: RawApp,
    repository: Optional[object],
    resilience: Optional[object],
    migrating: Optional[Iterable[str]],
    report: Report,
) -> None:
    """GA230 (handoff contract), GA231 (invalid or unsatisfiable gate).

    A stage is migration-enabled when it declares ``migratable: true`` or
    is named in ``migrating`` (the coordinator passes the stages its
    :class:`~repro.resilience.migration.MigrationPlan` list targets).
    The live-migration handoff transports ``snapshot()`` state into a
    fresh instance on the target node, so a migration-enabled stage whose
    class keeps the no-op defaults would silently move with empty state
    — that is GA230, checkable only when a ``repository`` resolves the
    stage class.  GA231 covers everything that makes the gate itself
    wrong: a non-boolean ``migratable`` value, a ``migrating`` name that
    matches no declared stage, a sharded stage (per-shard queues and the
    partitioner pin replicas to their slots; moving one replica is
    rescaling, not migration), and — when the caller supplies the run's
    ``resilience`` config — a disarmed checkpoint store, without which a
    mid-move crash cannot degrade to failover.
    """
    from repro.core.api import StreamProcessor
    from repro.core.sharding import REPLICAS_PROPERTY, SHARD_SEPARATOR
    from repro.grid.repository import RepositoryError

    requested = {name for name in (migrating or ())}
    known = {stage.name for stage in app.stages}
    for name in sorted(requested - known):
        _add(report, app, "GA231",
             f"migration plan targets unknown stage {name!r}")

    enabled: List[RawStage] = []
    for stage in app.stages:
        config_path = f"stage {stage.name!r}"
        declared = stage.properties.get(MIGRATABLE_PROPERTY)
        if declared is not None and declared not in ("true", "false"):
            _add(report, app, "GA231",
                 f"stage {stage.name!r}: {MIGRATABLE_PROPERTY}="
                 f"{declared!r} must be 'true' or 'false'",
                 line=stage.line, config_path=config_path)
            continue
        if declared != "true" and stage.name not in requested:
            continue
        if (REPLICAS_PROPERTY in stage.properties
                or SHARD_SEPARATOR in stage.name):
            _add(report, app, "GA231",
                 f"stage {stage.name!r} is sharded ({REPLICAS_PROPERTY} "
                 "declared) and cannot migrate; replicas are pinned to "
                 "their partitioner slots",
                 line=stage.line, config_path=config_path)
            continue
        enabled.append(stage)

    if not enabled:
        return
    if resilience is not None and getattr(
            resilience, "checkpoint_interval", None) is None:
        names = ", ".join(repr(s.name) for s in enabled)
        _add(report, app, "GA231",
             f"migration-enabled stage{'s' if len(enabled) > 1 else ''} "
             f"{names} without a checkpoint store: set "
             "resilience.checkpoint_interval so a mid-move crash can "
             "degrade to failover")
    if repository is None:
        return
    for stage in enabled:
        config_path = f"stage {stage.name!r}"
        try:
            factory: Callable[..., object] = repository.fetch(stage.code_url)
        except RepositoryError:
            continue  # unresolvable URL is GA301's finding
        if not (isinstance(factory, type)
                and issubclass(factory, StreamProcessor)):
            continue  # non-class factories cannot be checked statically
        has_snapshot = factory.snapshot is not StreamProcessor.snapshot
        has_restore = factory.restore is not StreamProcessor.restore
        if not (has_snapshot and has_restore):
            _add(report, app, "GA230",
                 f"stage {stage.name!r}: class {factory.__name__} does "
                 "not override snapshot() and restore(); the migration "
                 "handoff would move it with empty state",
                 line=stage.line, config_path=config_path)


def _check_ledger(
    app: RawApp, repository: Optional[object], report: Report
) -> None:
    """GA240: sinks in a ledger-enabled pipeline must be idempotent.

    A pipeline is ledger-enabled when any stage declares
    ``ledger-enabled: true`` (or carries a ``ledger-mode`` of record or
    replay — the properties the harness stamps).  Delivery below a sink
    is then at-least-once: failover replay and migration handoff both
    re-deliver items, and the replay harness's exactly-once claim rests
    entirely on the sink deduplicating by item key.  Every sink stage
    (no outgoing streams) must therefore resolve to a class implementing
    the :class:`~repro.ledger.sinks.SinkTxn` protocol (``txn_begin`` +
    ``txn_commit``), unless it explicitly accepts duplicates with
    ``at-least-once-ok: true``.
    """
    from repro.grid.repository import RepositoryError

    def _ledgered(stage: RawStage) -> bool:
        if stage.properties.get(LEDGER_ENABLED_PROPERTY) == "true":
            return True
        return stage.properties.get("ledger-mode") in ("record", "replay")

    if not any(_ledgered(stage) for stage in app.stages):
        return
    sources = {stream.src for stream in app.streams}
    for stage in app.stages:
        if stage.name in sources:
            continue  # not a sink
        config_path = f"stage {stage.name!r}"
        if stage.properties.get(AT_LEAST_ONCE_OK_PROPERTY) == "true":
            continue
        if repository is None:
            continue  # cannot resolve the class without a repository
        try:
            factory: Callable[..., object] = repository.fetch(stage.code_url)
        except RepositoryError:
            continue  # unresolvable URL is GA301's finding
        if not isinstance(factory, type):
            continue  # non-class factories cannot be checked statically
        if callable(getattr(factory, "txn_begin", None)) and callable(
            getattr(factory, "txn_commit", None)
        ):
            continue
        _add(report, app, "GA240",
             f"stage {stage.name!r}: sink class {factory.__name__} does "
             "not implement the SinkTxn protocol; redelivered duplicates "
             "in this ledger-enabled pipeline would double-apply effects "
             "(add txn_begin/txn_commit via repro.ledger.sinks.SinkTxn, "
             f"or declare {AT_LEAST_ONCE_OK_PROPERTY}: true)",
             line=stage.line, config_path=config_path)


# -- GA3xx: deployment ---------------------------------------------------------


def _check_codes(app: RawApp, repository: object, report: Report) -> None:
    """GA301 (unresolvable code URL), GA302 (checkpoint contract)."""
    from repro.core.api import StreamProcessor
    from repro.grid.repository import RepositoryError

    for stage in app.stages:
        config_path = f"stage {stage.name!r}"
        try:
            factory: Callable[..., object] = repository.fetch(stage.code_url)
        except RepositoryError as exc:
            _add(report, app, "GA301",
                 f"stage {stage.name!r}: {exc}",
                 line=stage.line, config_path=config_path)
            continue
        cls = factory if isinstance(factory, type) else type(factory)
        if not (isinstance(factory, type)
                and issubclass(factory, StreamProcessor)):
            # A non-class factory (closure, partial) could build anything;
            # the contract can only be checked statically for classes.
            continue
        has_snapshot = cls.snapshot is not StreamProcessor.snapshot
        has_restore = cls.restore is not StreamProcessor.restore
        if has_snapshot != has_restore:
            present = "snapshot()" if has_snapshot else "restore()"
            missing = "restore()" if has_snapshot else "snapshot()"
            _add(report, app, "GA302",
                 f"stage {stage.name!r}: class {cls.__name__} overrides "
                 f"{present} but not {missing}; failover cannot rebuild "
                 "its state",
                 line=stage.line, config_path=config_path)


def _check_wire(app: RawApp, report: Report) -> None:
    """GA304: sketch-stage output streams must use the codec pair size."""
    from repro.streams.wire import PAIR_BYTES

    for stream in app.streams:
        source = app.stage_named(stream.src)
        if source is None or SKETCH_PROPERTY not in source.properties:
            continue
        if math.isnan(stream.item_size):
            continue  # unparseable size already reported as GA100
        if not math.isclose(stream.item_size, PAIR_BYTES,
                            rel_tol=_TOL, abs_tol=_TOL):
            _add(report, app, "GA304",
                 f"stream {stream.name!r} from sketch stage {stream.src!r} "
                 f"declares item-size {stream.item_size:g}, but the wire "
                 f"codec sends {PAIR_BYTES}-byte (value, count) pairs",
                 line=stream.line, config_path=f"stream {stream.name!r}")


def _check_placement(app: RawApp, registry: object, report: Report) -> None:
    """GA303: dry-run the Matchmaker over the declared requirements."""
    from repro.grid.matchmaker import MatchError, Matchmaker
    from repro.grid.resources import ResourceRequirement

    requirements: List[Tuple[str, ResourceRequirement]] = []
    for stage in app.stages:
        raw = stage.requirement
        if math.isnan(raw.min_memory_mb) or math.isnan(raw.min_speed_factor):
            continue  # unparseable requirement already reported as GA100
        try:
            requirement = ResourceRequirement(
                min_cores=raw.min_cores,
                min_memory_mb=raw.min_memory_mb,
                min_speed_factor=raw.min_speed_factor,
                placement_hint=raw.placement_hint,
                min_bandwidth_to=dict(raw.min_bandwidth_to),
            )
        except ValueError as exc:
            _add(report, app, "GA303",
                 f"stage {stage.name!r}: invalid requirement: {exc}",
                 line=raw.line or stage.line,
                 config_path=f"stage {stage.name!r}")
            return
        requirements.append((stage.name, requirement))
    try:
        Matchmaker(registry).match_all(requirements)
    except MatchError as exc:
        _add(report, app, "GA303", f"placement dry-run failed: {exc}")
