"""Static analysis for the middleware: pipeline verifier + repo lint.

Two halves share the :mod:`~repro.analysis.diagnostics` machinery and the
``GAxxx`` code catalog (:mod:`~repro.analysis.codes`):

* the **pipeline verifier** (:mod:`~repro.analysis.verifier`) runs
  multi-pass semantic analysis over application configurations —
  ``repro check app.xml`` on the command line, and the pre-deploy gate
  inside all three runtimes;
* the **repo lint** (:mod:`~repro.analysis.lint`) runs AST checkers over
  the source tree enforcing invariants generic linters cannot express —
  ``repro lint`` / ``python -m repro.analysis.lint``.

See ``docs/static_analysis.md`` for the catalog of diagnostic codes.
"""

from repro.analysis.codes import CODES, CodeInfo, config_codes, info_for, lint_codes
from repro.analysis.diagnostics import Diagnostic, Report, Severity, SourceSpan
from repro.analysis.verifier import (
    verify_config,
    verify_document,
    verify_path,
    verify_raw,
)

__all__ = [
    "CODES",
    "CodeInfo",
    "Diagnostic",
    "Report",
    "Severity",
    "SourceSpan",
    "config_codes",
    "info_for",
    "lint_codes",
    "verify_config",
    "verify_document",
    "verify_path",
    "verify_raw",
]
