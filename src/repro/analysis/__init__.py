"""Static analysis for the middleware: verifier + lint + analyzer.

Three front ends share the :mod:`~repro.analysis.diagnostics` machinery
and the ``GAxxx`` code catalog (:mod:`~repro.analysis.codes`):

* the **pipeline verifier** (:mod:`~repro.analysis.verifier`) runs
  multi-pass semantic analysis over application configurations —
  ``repro check app.xml`` on the command line, and the pre-deploy gate
  inside all three runtimes;
* the **repo lint** (:mod:`~repro.analysis.lint`) runs AST checkers over
  the source tree enforcing invariants generic linters cannot express —
  ``repro lint`` / ``python -m repro.analysis.lint``;
* the **whole-program analyzer** (:mod:`~repro.analysis.analyze`) runs
  the interprocedural concurrency analysis
  (:mod:`~repro.analysis.concurrency`, GA60x) and the protocol model
  checker plus model↔code conformance pass
  (:mod:`~repro.analysis.protocol`, GA61x) — ``repro analyze`` /
  ``python -m repro.analysis.analyze``.

See ``docs/static_analysis.md`` for the catalog of diagnostic codes.
"""

from repro.analysis.codes import (
    CODES,
    CodeInfo,
    analyze_codes,
    concurrency_codes,
    config_codes,
    info_for,
    lint_codes,
    protocol_codes,
)
from repro.analysis.concurrency import analyze_paths
from repro.analysis.diagnostics import Diagnostic, Report, Severity, SourceSpan
from repro.analysis.protocol import check_conformance, check_models, explore
from repro.analysis.verifier import (
    verify_config,
    verify_document,
    verify_path,
    verify_raw,
)

__all__ = [
    "CODES",
    "CodeInfo",
    "Diagnostic",
    "Report",
    "Severity",
    "SourceSpan",
    "analyze_codes",
    "analyze_paths",
    "check_conformance",
    "check_models",
    "concurrency_codes",
    "config_codes",
    "explore",
    "info_for",
    "lint_codes",
    "protocol_codes",
    "verify_config",
    "verify_document",
    "verify_path",
    "verify_raw",
]
