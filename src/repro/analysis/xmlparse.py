"""Lenient, line-tracking parse of application configuration documents.

:meth:`repro.grid.config.AppConfig.from_xml` is deliberately fail-fast:
it raises :class:`~repro.grid.config.ConfigError` on the *first* defect,
which is the right contract for runtime loading but useless for a
verifier whose job is to show the author *every* problem at once, with
line numbers.  This module parses the same document format tolerantly:

* it is built directly on :mod:`xml.parsers.expat`, so every element
  carries its source line/column;
* shape defects (missing attributes, unparseable numbers, unknown
  elements) become ``GA100`` diagnostics and the offending element is
  skipped — parsing always continues;
* the result is a :class:`RawApp`: the unvalidated document model the
  semantic passes in :mod:`repro.analysis.verifier` run over.  Unlike
  :class:`~repro.grid.config.AppConfig`, a ``RawApp`` may hold cycles,
  out-of-range parameters, or dangling stream endpoints — surfacing
  those as structured diagnostics is the whole point.

``RawApp.from_config`` converts an already-built (hence already
shape-valid) ``AppConfig`` so the runtimes can verify programmatic
configurations through the identical passes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple
from xml.parsers import expat

from repro.analysis.diagnostics import Diagnostic, Report, SourceSpan

__all__ = [
    "RawApp",
    "RawParameter",
    "RawRequirement",
    "RawStage",
    "RawStream",
    "parse_document",
]


@dataclass
class RawParameter:
    """An adjustment-parameter declaration, numbers parsed best-effort.

    Unparseable numeric attributes land as ``nan`` (already reported as
    GA100 by the parser); ``ok`` is False in that case so the semantic
    passes skip range analysis instead of comparing against ``nan``.
    """

    name: str
    init: float = math.nan
    minimum: float = math.nan
    maximum: float = math.nan
    increment: float = math.nan
    direction: float = math.nan
    line: Optional[int] = None
    ok: bool = True


@dataclass
class RawRequirement:
    """A stage's resource requirement, shape-checked only."""

    min_cores: int = 1
    min_memory_mb: float = 0.0
    min_speed_factor: float = 0.0
    placement_hint: Optional[str] = None
    min_bandwidth_to: Dict[str, float] = field(default_factory=dict)
    line: Optional[int] = None


@dataclass
class RawStage:
    """One ``<stage>`` element."""

    name: str
    code_url: str
    requirement: RawRequirement = field(default_factory=RawRequirement)
    parameters: List[RawParameter] = field(default_factory=list)
    properties: Dict[str, str] = field(default_factory=dict)
    line: Optional[int] = None


@dataclass
class RawStream:
    """One ``<stream>`` element."""

    name: str
    src: str
    dst: str
    item_size: float = 8.0
    line: Optional[int] = None


@dataclass
class RawApp:
    """The tolerant document model the verifier passes consume."""

    name: str
    stages: List[RawStage] = field(default_factory=list)
    streams: List[RawStream] = field(default_factory=list)
    file: Optional[str] = None
    #: Source text split into lines (for rustc-style excerpts), if parsed.
    source_lines: Optional[List[str]] = None

    def stage_named(self, name: str) -> Optional[RawStage]:
        for stage in self.stages:
            if stage.name == name:
                return stage
        return None

    def span(
        self, line: Optional[int], config_path: Optional[str] = None
    ) -> SourceSpan:
        """A span in this document (file + line when known)."""
        return SourceSpan(file=self.file, line=line, config_path=config_path)

    def excerpt(self, line: Optional[int]) -> Optional[str]:
        """The source line at 1-based ``line``, if the text is available."""
        if self.source_lines is None or line is None:
            return None
        if 1 <= line <= len(self.source_lines):
            return self.source_lines[line - 1]
        return None

    @classmethod
    def from_config(cls, config: "AppConfig") -> "RawApp":  # noqa: F821
        """Mirror an in-memory AppConfig (no file, no line numbers)."""
        stages = [
            RawStage(
                name=stage.name,
                code_url=stage.code_url,
                requirement=RawRequirement(
                    min_cores=stage.requirement.min_cores,
                    min_memory_mb=stage.requirement.min_memory_mb,
                    min_speed_factor=stage.requirement.min_speed_factor,
                    placement_hint=stage.requirement.placement_hint,
                    min_bandwidth_to=dict(stage.requirement.min_bandwidth_to),
                ),
                parameters=[
                    RawParameter(
                        name=param.name,
                        init=param.init,
                        minimum=param.minimum,
                        maximum=param.maximum,
                        increment=param.increment,
                        direction=float(param.direction),
                    )
                    for param in stage.parameters
                ],
                properties=dict(stage.properties),
            )
            for stage in config.stages
        ]
        streams = [
            RawStream(
                name=stream.name,
                src=stream.src,
                dst=stream.dst,
                item_size=stream.item_size,
            )
            for stream in config.streams
        ]
        return cls(name=config.name, stages=stages, streams=streams)


class _DocumentBuilder:
    """Expat handler assembling a RawApp and collecting shape defects."""

    _STAGE_CHILDREN = ("requirement", "parameter", "property")

    def __init__(self, filename: Optional[str]) -> None:
        self.filename = filename
        self.report = Report()
        self.app: Optional[RawApp] = None
        self._parser = expat.ParserCreate()
        self._parser.StartElementHandler = self._start
        self._parser.EndElementHandler = self._end
        self._stage: Optional[RawStage] = None
        self._requirement: Optional[RawRequirement] = None
        self._depth_skip = 0

    # -- diagnostics helpers --------------------------------------------------

    def _line(self) -> int:
        return self._parser.CurrentLineNumber

    def _ga100(self, message: str) -> None:
        self.report.add(
            "GA100",
            message,
            span=SourceSpan(file=self.filename, line=self._line()),
        )

    def _number(
        self, tag: str, attrs: Dict[str, str], key: str, default: float
    ) -> Tuple[float, bool]:
        """Parse a float attribute; GA100 + nan marker on failure."""
        text = attrs.get(key)
        if text is None:
            return default, True
        try:
            return float(text), True
        except ValueError:
            self._ga100(f"<{tag}> attribute {key}={text!r} is not a number")
            return math.nan, False

    # -- expat handlers -------------------------------------------------------

    def _start(self, tag: str, attrs: Dict[str, str]) -> None:
        if self._depth_skip:
            self._depth_skip += 1
            return
        if self.app is None:
            if tag != "application":
                self._ga100(f"expected <application> root, got <{tag}>")
                self.app = RawApp(name="", file=self.filename)
                return
            name = attrs.get("name", "")
            if not name:
                self._ga100("<application> missing 'name' attribute")
            self.app = RawApp(name=name, file=self.filename)
            return
        if self._stage is not None:
            self._start_stage_child(tag, attrs)
            return
        if tag == "stage":
            name, code = attrs.get("name"), attrs.get("code")
            if not name or not code:
                self._ga100("<stage> requires 'name' and 'code' attributes")
                self._depth_skip = 1
                return
            self._stage = RawStage(name=name, code_url=code, line=self._line())
        elif tag == "stream":
            name, src, dst = attrs.get("name"), attrs.get("from"), attrs.get("to")
            if not name or not src or not dst:
                self._ga100("<stream> requires 'name', 'from' and 'to' attributes")
                self._depth_skip = 1
                return
            size, _ = self._number("stream", attrs, "item-size", 8.0)
            if not math.isnan(size) and size <= 0:
                self._ga100(
                    f"stream {name!r}: item-size must be > 0, got {size}"
                )
            self.app.streams.append(
                RawStream(name=name, src=src, dst=dst, item_size=size,
                          line=self._line())
            )
        else:
            self._ga100(f"unexpected element <{tag}> under <application>")
            self._depth_skip = 1

    def _start_stage_child(self, tag: str, attrs: Dict[str, str]) -> None:
        stage = self._stage
        assert stage is not None
        if self._requirement is not None:
            if tag == "bandwidth":
                peer = attrs.get("to", "")
                value, _ = self._number("bandwidth", attrs, "min", 0.0)
                if peer:
                    self._requirement.min_bandwidth_to[peer] = value
                else:
                    self._ga100("<bandwidth> missing 'to' attribute")
            else:
                self._ga100(f"unexpected element <{tag}> under <requirement>")
                self._depth_skip = 1
            return
        if tag == "requirement":
            cores_text = attrs.get("min-cores", "1")
            try:
                cores = int(cores_text)
            except ValueError:
                self._ga100(
                    f"<requirement> attribute min-cores={cores_text!r} "
                    "is not an integer"
                )
                cores = 1
            memory, _ = self._number("requirement", attrs, "min-memory-mb", 0.0)
            speed, _ = self._number("requirement", attrs, "min-speed-factor", 0.0)
            self._requirement = RawRequirement(
                min_cores=cores,
                min_memory_mb=memory,
                min_speed_factor=speed,
                placement_hint=attrs.get("placement"),
                line=self._line(),
            )
        elif tag == "parameter":
            name = attrs.get("name", "")
            if not name:
                self._ga100("<parameter> missing 'name' attribute")
            param = RawParameter(name=name, line=self._line())
            ok = bool(name)
            for key, attr in (
                ("init", "init"), ("minimum", "min"), ("maximum", "max"),
                ("increment", "increment"), ("direction", "direction"),
            ):
                if attr not in attrs:
                    self._ga100(f"<parameter> {name!r} missing {attr!r} attribute")
                    ok = False
                    continue
                value, parsed = self._number("parameter", attrs, attr, math.nan)
                setattr(param, key, value)
                ok = ok and parsed
            param.ok = ok
            stage.parameters.append(param)
            self._depth_skip = 1  # parameters have no children
        elif tag == "property":
            key = attrs.get("key")
            if not key:
                self._ga100(f"<property> in stage {stage.name!r} missing key")
            else:
                stage.properties[key] = attrs.get("value", "")
            self._depth_skip = 1
        else:
            self._ga100(
                f"unexpected element <{tag}> in stage {stage.name!r}"
            )
            self._depth_skip = 1

    def _end(self, tag: str) -> None:
        if self._depth_skip:
            self._depth_skip -= 1
            return
        if tag == "requirement" and self._requirement is not None:
            assert self._stage is not None
            self._stage.requirement = self._requirement
            self._requirement = None
        elif tag == "stage" and self._stage is not None:
            assert self.app is not None
            self.app.stages.append(self._stage)
            self._stage = None

    # -- driver ---------------------------------------------------------------

    def parse(self, text: str) -> Tuple[Optional[RawApp], List[Diagnostic]]:
        try:
            self._parser.Parse(text, True)
        except expat.ExpatError as exc:
            self.report.add(
                "GA100",
                f"malformed XML: {expat.errors.messages[exc.code]}",
                span=SourceSpan(file=self.filename, line=exc.lineno,
                                column=exc.offset),
            )
            if self.app is None:
                return None, self.report.diagnostics
        if self.app is None:
            self.report.add(
                "GA100",
                "document contains no <application> element",
                span=SourceSpan(file=self.filename),
            )
            return None, self.report.diagnostics
        self.app.source_lines = text.splitlines()
        return self.app, self.report.diagnostics


def parse_document(
    text: str, filename: Optional[str] = None
) -> Tuple[Optional[RawApp], List[Diagnostic]]:
    """Tolerantly parse a configuration document.

    Returns ``(app, diagnostics)``; ``app`` is None only when the text
    is so broken that no ``<application>`` element could be recovered.
    Shape defects are reported as ``GA100`` diagnostics and skipped.
    """
    return _DocumentBuilder(filename).parse(text)
