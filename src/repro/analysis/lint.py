"""``python -m repro.analysis.lint`` — run the AST lint suite.

Thin command-line front end over :func:`repro.analysis.engine.lint_paths`
with the default checker set; also reachable as ``repro lint``.  Exits 0
only when the report is completely clean — any diagnostic, warning or
error, in either output mode, exits 1.  That is what the CI job keys
off, and it matches ``repro check`` and ``repro analyze``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.checkers import default_checkers
from repro.analysis.diagnostics import Report
from repro.analysis.engine import lint_paths

__all__ = ["lint", "main"]

#: What ``repro lint`` analyzes when no paths are given.
DEFAULT_TARGETS = ("src/repro",)


def lint(paths: List[str]) -> Report:
    """Lint files/directories with the default checker set."""
    return lint_paths(paths, default_checkers())


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="AST lint suite enforcing repo-specific invariants "
                    "(metric catalog, determinism, async hygiene, "
                    "checkpoint contract); see docs/static_analysis.md",
    )
    parser.add_argument(
        "paths", nargs="*", default=list(DEFAULT_TARGETS),
        help=f"files or directories to lint (default: {' '.join(DEFAULT_TARGETS)})",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit the machine-readable JSON report instead of text",
    )
    args = parser.parse_args(argv)
    report = lint(args.paths)
    output = report.render_json() if args.json else report.render_text()
    stream = sys.stdout if report.ok else sys.stderr
    print(output, file=stream)
    # Any finding fails the run, in both output modes: a warning-only
    # text run and a warning-only --json run must agree on the verdict.
    return 0 if report.clean else 1


if __name__ == "__main__":
    sys.exit(main())
