"""repro — reproduction of GATES (HPDC 2004).

GATES (Grid-based Adaptive Execution on Streams) is a middleware for
processing distributed data streams as pipelines of stages deployed onto
grid resources, with self-adaptation of application-exposed *adjustment
parameters* so the analysis stays as accurate as possible while meeting
the real-time constraint.

Package map
-----------
``repro.simnet``       discrete-event simulation substrate (kernel, links,
                       hosts, queues, topology, tracing)
``repro.grid``         OGSA/Globus-like grid services (registry, broker,
                       service containers, code repository, XML config,
                       Launcher, Deployer)
``repro.core``         the GATES middleware (stage API, the Section 4
                       self-adaptation algorithm, simulated and threaded
                       runtimes)
``repro.streams``      stream sources, samplers, frequency sketches
``repro.apps``         the paper's application templates
``repro.metrics``      accuracy metrics
``repro.experiments``  one harness per evaluation table/figure

Quickstart
----------
>>> from repro.experiments import build_star_fabric, run_comp_steer
>>> run = run_comp_steer(analysis_ms_per_byte=10.0, duration_seconds=60.0)
>>> 0.0 < run.converged_rate <= 1.0
True
"""

from repro.core import (
    AdaptationPolicy,
    AdjustmentParameter,
    RunResult,
    SimulatedRuntime,
    SourceBinding,
    StageContext,
    StreamProcessor,
    ThreadedRuntime,
)
from repro.grid import (
    AppConfig,
    CodeRepository,
    Deployer,
    Launcher,
    ServiceRegistry,
    StageConfig,
    StreamConfig,
)
from repro.simnet import Environment, Host, Link, Network

__version__ = "1.0.0"

__all__ = [
    "AdaptationPolicy",
    "AdjustmentParameter",
    "AppConfig",
    "CodeRepository",
    "Deployer",
    "Environment",
    "Host",
    "Launcher",
    "Link",
    "Network",
    "RunResult",
    "ServiceRegistry",
    "SimulatedRuntime",
    "SourceBinding",
    "StageConfig",
    "StageContext",
    "StreamConfig",
    "StreamProcessor",
    "ThreadedRuntime",
    "__version__",
]
