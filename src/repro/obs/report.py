"""Terminal run-summary reports (the ``repro report`` subcommand).

Renders a :class:`~repro.core.results.RunResult` as:

* a per-stage table (flow counters, busy time, latency p50/p95/p99);
* the latency decomposition — queue vs. compute vs. network seconds per
  stage, from the sampled hop traces (the paper's Figure 4 queue model,
  measured rather than assumed);
* adaptation trajectories (adjustment parameters and d-tilde) as ASCII
  strip charts via :mod:`repro.metrics.ascii_chart`;
* a resilience table (checkpoints, failovers, replay, quarantine from
  the ``fault.*`` / ``recovery.*`` metric families);
* an event summary.

All sections degrade gracefully: runs without tracing skip the
decomposition, runs without adaptation skip the charts, fault-free runs
without resilience skip the resilience table.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.results import RunResult
from repro.metrics.ascii_chart import multi_chart
from repro.simnet.trace import percentile

__all__ = ["render_report", "run_quickstart_demo"]


def _format_table(headers: List[str], rows: List[List[str]]) -> str:
    """Left-align the first column, right-align the rest."""
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]

    def fmt(cells: List[str]) -> str:
        parts = [cells[0].ljust(widths[0])]
        parts += [c.rjust(w) for c, w in zip(cells[1:], widths[1:])]
        return "  " + "  ".join(parts)

    lines = [fmt(headers), "  " + "  ".join("-" * w for w in widths)]
    lines += [fmt(row) for row in rows]
    return "\n".join(lines)


def _stage_table(result: RunResult) -> str:
    headers = ["stage", "host", "in", "out", "drop", "bytes_in",
               "busy_s", "p50", "p95", "p99"]
    rows = []
    for name in sorted(result.stages):
        stats = result.stages[name]
        pct = stats.latency_percentiles()
        rows.append([
            name, stats.host_name,
            str(stats.items_in), str(stats.items_out), str(stats.items_dropped),
            f"{stats.bytes_in:.0f}", f"{stats.busy_seconds:.3f}",
            f"{pct[50.0]:.4f}", f"{pct[95.0]:.4f}", f"{pct[99.0]:.4f}",
        ])
    return _format_table(headers, rows)


def _hop_samples(result: RunResult) -> Dict[str, Dict[str, List[float]]]:
    """Per-stage queue/compute/network samples from the hop traces."""
    samples: Dict[str, Dict[str, List[float]]] = {}
    for trace in result.traces:
        for hop in trace.hops:
            if not hop.completed:
                continue
            bucket = samples.setdefault(
                hop.stage, {"queue": [], "compute": [], "network": []}
            )
            bucket["queue"].append(hop.queue_t)
            bucket["compute"].append(hop.process_t)
            bucket["network"].append(hop.tx_t)
    return samples


def _decomposition_table(result: RunResult) -> Optional[str]:
    samples = _hop_samples(result)
    if not samples:
        return None
    headers = ["stage", "hops",
               "queue_p50", "queue_p95", "queue_p99",
               "compute_p50", "compute_p95", "compute_p99",
               "net_p50", "net_p95", "net_p99"]
    rows = []
    for stage in sorted(samples):
        bucket = samples[stage]
        row = [stage, str(len(bucket["queue"]))]
        for component in ("queue", "compute", "network"):
            for q in (50.0, 95.0, 99.0):
                row.append(f"{percentile(bucket[component], q, default=0.0):.4f}")
        rows.append(row)
    return _format_table(headers, rows)


def _resilience_table(result: RunResult) -> Optional[str]:
    """Per-stage fault/recovery counters; None when none were emitted."""
    if result.metrics is None:
        return None
    metrics = result.metrics
    if not metrics.names("fault.") and not metrics.names("recovery."):
        return None

    def val(name: str) -> float:
        return metrics.value(name, default=0.0)

    headers = ["stage", "ckpts", "failovers", "replayed", "dups",
               "dropped", "quarantined", "retries", "recovery_s"]
    rows = []
    for name in sorted(result.stages):
        latency = (
            metrics.get(f"recovery.{name}.latency")
            if f"recovery.{name}.latency" in metrics
            else None
        )
        cells = [
            name,
            f"{val(f'recovery.{name}.checkpoints'):.0f}",
            f"{val(f'fault.{name}.failovers'):.0f}",
            f"{val(f'recovery.{name}.items_replayed'):.0f}",
            f"{val(f'recovery.{name}.duplicates'):.0f}",
            f"{val(f'recovery.{name}.replay_dropped'):.0f}",
            f"{val(f'fault.{name}.quarantined'):.0f}",
            f"{val(f'fault.{name}.retries'):.0f}",
            f"{max(latency.samples):.3f}" if latency and latency.count else "-",
        ]
        rows.append(cells)
    return _format_table(headers, rows)


def _trajectory_charts(result: RunResult, width: int) -> List[str]:
    charts = []
    for stage_name in sorted(result.stages):
        stats = result.stages[stage_name]
        series_map: Dict[str, List[Tuple[float, float]]] = {
            f"{stage_name}.{param}": list(series)
            for param, series in sorted(stats.parameter_history.items())
            if len(series)
        }
        if series_map:
            charts.append(
                f"adaptation trajectory — {stage_name}\n"
                + multi_chart(series_map, width=width)
            )
    return charts


def render_report(result: RunResult, width: int = 72) -> str:
    """The full multi-section run summary as one printable string."""
    total_items = sum(s.items_in for s in result.stages.values())
    sections = [
        f"run: {result.app_name}",
        f"  execution time : {result.execution_time:.3f}s\n"
        f"  stages         : {len(result.stages)}\n"
        f"  items processed: {total_items}\n"
        f"  bytes moved    : {result.total_bytes_moved():.0f}\n"
        f"  load exceptions: {result.total_exceptions()}\n"
        f"  sampled traces : {len(result.traces)}",
        "per-stage summary (latency seconds)\n" + _stage_table(result),
    ]
    decomposition = _decomposition_table(result)
    if decomposition is not None:
        sections.append(
            "latency decomposition from sampled hop traces "
            "(seconds; queue = waiting, compute = processing, "
            "net = sender-side transmission)\n" + decomposition
        )
    sections.extend(_trajectory_charts(result, width))
    resilience = _resilience_table(result)
    if resilience is not None:
        sections.append(
            "resilience (checkpoints, failover/replay, quarantine)\n" + resilience
        )
    if len(result.events):
        kinds = sorted({kind for _, kind, _ in result.events.entries})
        counts = ", ".join(f"{k}={result.events.count(k)}" for k in kinds)
        sections.append(f"events: {counts}")
    return "\n\n".join(sections)


def run_quickstart_demo(trace_every: int = 1) -> RunResult:
    """Run the quickstart two-stage pipeline with tracing enabled.

    The same application as ``examples/quickstart.py`` (squares on an
    edge host, running mean on a central host, a 10 KB/s link between) —
    the built-in data source for ``repro report`` when no export file is
    given.  Imports are local: this module is otherwise import-light.
    """
    from repro.core.api import StageContext, StreamProcessor
    from repro.core.runtime_sim import SimulatedRuntime, SourceBinding
    from repro.grid.deployer import Deployer
    from repro.grid.launcher import Launcher
    from repro.grid.registry import ServiceRegistry
    from repro.grid.repository import CodeRepository
    from repro.simnet.engine import Environment
    from repro.simnet.hosts import CpuCostModel
    from repro.simnet.topology import Network

    class Squarer(StreamProcessor):
        cost_model = CpuCostModel(per_item=1e-4)

        def on_item(self, payload, context: StageContext) -> None:
            context.emit(payload * payload, size=8.0)

    class Averager(StreamProcessor):
        cost_model = CpuCostModel(per_item=1e-4)

        def __init__(self) -> None:
            self._count = 0
            self._total = 0.0

        def on_item(self, payload, context: StageContext) -> None:
            self._count += 1
            self._total += payload

        def result(self):
            return self._total / self._count if self._count else 0.0

    app_xml = """
    <application name="quickstart">
      <stage name="square" code="repo://quickstart/square">
        <requirement placement="near:edge"/>
      </stage>
      <stage name="average" code="repo://quickstart/average">
        <requirement min-cores="2"/>
      </stage>
      <stream name="squares" from="square" to="average" item-size="8.0"/>
    </application>
    """
    env = Environment()
    network = Network(env)
    network.create_host("edge", cores=1)
    network.create_host("central", cores=4)
    network.connect("edge", "central", bandwidth=10_000.0, latency=0.01)
    registry = ServiceRegistry()
    registry.register_network(network)
    repository = CodeRepository()
    repository.publish("repo://quickstart/square", Squarer)
    repository.publish("repo://quickstart/average", Averager)
    launcher = Launcher(Deployer(registry, repository))
    deployment = launcher.launch(app_xml)
    runtime = SimulatedRuntime(
        env, network, deployment, adaptation_enabled=False,
        trace_every=trace_every,
    )
    runtime.bind_source(
        SourceBinding("numbers", "square", payloads=range(1, 101), rate=200.0)
    )
    return runtime.run()
