"""Per-item hop tracing: the Figure 4 queue model, made inspectable.

A sampled :class:`ItemTrace` rides on an :class:`~repro.core.items.Item`
through the pipeline.  At each stage it accumulates one :class:`Hop`
record — when the item entered the stage's queue, when the worker
dequeued it, how long the processor computed, how long the worker was
blocked transmitting emissions — so an end-to-end latency decomposes into
**queueing vs. compute vs. network** time.  That is exactly the
decomposition the paper's adaptation reasons about implicitly (a backed-up
queue means processing or the network cannot keep up); the trace makes it
observable per item.

Sampling is deterministic (every N-th item per source), so traced runs
stay reproducible.  Emissions inherit the trace of the item being
processed; on fan-out all downstream copies append hops to the same
trace, which therefore records the item's full tree of journeys.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = ["Hop", "ItemTrace", "TraceCollector", "publish_traces"]


@dataclass
class Hop:
    """One stage visit of a traced item.

    ``enqueue_t``/``dequeue_t`` are absolute times (simulation or scaled
    wall clock); ``process_t``/``tx_t`` are durations in seconds.
    """

    stage: str
    enqueue_t: float
    dequeue_t: float = -1.0
    process_t: float = 0.0
    tx_t: float = 0.0

    @property
    def queue_t(self) -> float:
        """Seconds spent waiting in the stage's queue."""
        if self.dequeue_t < 0:
            return 0.0
        return max(0.0, self.dequeue_t - self.enqueue_t)

    @property
    def completed(self) -> bool:
        """True once the worker has dequeued (and stamped) this hop."""
        return self.dequeue_t >= 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "stage": self.stage,
            "enqueue_t": self.enqueue_t,
            "dequeue_t": self.dequeue_t,
            "process_t": self.process_t,
            "tx_t": self.tx_t,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Hop":
        return cls(
            stage=data["stage"],
            enqueue_t=data["enqueue_t"],
            dequeue_t=data["dequeue_t"],
            process_t=data["process_t"],
            tx_t=data["tx_t"],
        )


@dataclass
class ItemTrace:
    """The recorded journey of one sampled item (and its descendants)."""

    trace_id: int
    origin: str
    created_at: float
    hops: List[Hop] = field(default_factory=list)

    def begin_hop(self, stage: str, enqueue_t: float) -> Hop:
        """Open a hop as the item is offered to ``stage``'s queue.

        Back-pressure wait on a full bounded queue counts as queue time:
        the hop opens when the sender starts the put, not when space
        frees up.
        """
        hop = Hop(stage=stage, enqueue_t=enqueue_t)
        self.hops.append(hop)
        return hop

    def decompose(self) -> Dict[str, float]:
        """Split the trace's total latency into queue/compute/network.

        ``total`` runs from item creation to the end of the last completed
        hop; ``network`` is everything not accounted to queueing or
        compute — sender-side transmission plus propagation delays (and,
        on the threaded runtime, scheduler noise).
        """
        done = [h for h in self.hops if h.completed]
        queue = sum(h.queue_t for h in done)
        compute = sum(h.process_t for h in done)
        if not done:
            return {"total": 0.0, "queue": 0.0, "compute": 0.0, "network": 0.0}
        end = max(h.dequeue_t + h.process_t + h.tx_t for h in done)
        total = max(0.0, end - self.created_at)
        network = max(0.0, total - queue - compute)
        return {"total": total, "queue": queue, "compute": compute,
                "network": network}

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "origin": self.origin,
            "created_at": self.created_at,
            "hops": [hop.to_dict() for hop in self.hops],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ItemTrace":
        return cls(
            trace_id=data["trace_id"],
            origin=data["origin"],
            created_at=data["created_at"],
            hops=[Hop.from_dict(h) for h in data["hops"]],
        )


class TraceCollector:
    """Deterministic 1-in-N trace sampler and store.

    ``sample_every=1`` traces everything (the ``repro report`` demo and
    tests); larger values bound overhead on big runs.  ``max_traces``
    caps memory: once reached, no new traces start (existing ones keep
    accumulating hops).
    """

    def __init__(self, sample_every: int = 1, max_traces: int = 10_000) -> None:
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {sample_every}")
        if max_traces < 1:
            raise ValueError(f"max_traces must be >= 1, got {max_traces}")
        self.sample_every = sample_every
        self.max_traces = max_traces
        self.traces: List[ItemTrace] = []
        self._seen = 0
        self._next_id = 0
        # The threaded runtime samples from several feeder threads.
        self._lock = threading.Lock()

    def maybe_trace(self, origin: str, created_at: float) -> Optional[ItemTrace]:
        """Start a trace for this arrival if it falls on the sample grid."""
        with self._lock:
            index = self._seen
            self._seen += 1
            if index % self.sample_every != 0 or len(self.traces) >= self.max_traces:
                return None
            trace = ItemTrace(
                trace_id=self._next_id, origin=origin, created_at=created_at
            )
            self._next_id += 1
            self.traces.append(trace)
            return trace

    def __len__(self) -> int:
        return len(self.traces)


def publish_traces(registry, traces) -> None:
    """Feed completed hops into the per-stage latency-split histograms.

    Called by both runtimes at end of run so ``stage.<name>.latency_queue``
    / ``latency_compute`` / ``latency_network`` carry the sampled
    decomposition alongside the full ``stage.<name>.latency`` histogram.
    """
    for trace in traces:
        for hop in trace.hops:
            if not hop.completed:
                continue
            prefix = f"stage.{hop.stage}"
            registry.histogram(f"{prefix}.latency_queue").observe(hop.queue_t)
            registry.histogram(f"{prefix}.latency_compute").observe(hop.process_t)
            registry.histogram(f"{prefix}.latency_network").observe(hop.tx_t)
