"""Unified observability: metrics registry, hop tracing, exporters, reports.

The measurement substrate the adaptation paper presumes ("you cannot tune
what you cannot observe"):

* :mod:`repro.obs.names` — the canonical catalog of stable dotted metric
  names (the contract ``docs/observability.md`` documents and the
  docs-consistency check enforces);
* :mod:`repro.obs.registry` — counters, gauges, histograms and time
  series both runtimes publish into;
* :mod:`repro.obs.tracing` — sampled per-item hop traces decomposing
  end-to-end latency into queue / compute / network time;
* :mod:`repro.obs.export` — JSONL and CSV exporters plus the lossless
  loader backing ``repro report``;
* :mod:`repro.obs.report` — the terminal run-summary renderer.

``export`` and ``report`` sit *above* :mod:`repro.core` (they consume
``RunResult``), so they are loaded lazily here — the registry/tracing
layer below the core must import without them.
"""

from repro.obs.names import METRICS, MetricSpec, spec_for, validate_name
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Series,
)
from repro.obs.tracing import Hop, ItemTrace, TraceCollector, publish_traces

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Hop",
    "ItemTrace",
    "METRICS",
    "MetricSpec",
    "MetricsRegistry",
    "Series",
    "TraceCollector",
    "export_csv",
    "export_jsonl",
    "load_jsonl",
    "publish_traces",
    "render_report",
    "spec_for",
    "validate_name",
]

_LAZY = {
    "export_csv": "repro.obs.export",
    "export_jsonl": "repro.obs.export",
    "load_jsonl": "repro.obs.export",
    "render_report": "repro.obs.report",
}


def __getattr__(name: str):
    """Load the core-dependent layers on first use (PEP 562)."""
    if name in _LAZY:
        import importlib

        return getattr(importlib.import_module(_LAZY[name]), name)
    raise AttributeError(f"module 'repro.obs' has no attribute {name!r}")
