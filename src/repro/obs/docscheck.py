"""Docs-consistency check: the catalog and the docs must agree.

``docs/observability.md`` documents every metric-name template in a
markdown table whose first column is the backticked template and whose
second column is the kind.  :func:`check_docs` diffs that table against
the authoritative catalog (:data:`repro.obs.names.METRICS`) in both
directions — a metric added without a docs row, a docs row for a removed
metric, or a kind mismatch each produce one problem string.  The tier-1
test ``tests/obs/test_docscheck.py`` asserts the list is empty, so the
reference cannot drift.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, List

from repro.obs.names import METRICS

__all__ = ["check_docs", "default_docs_path", "documented_metrics"]

#: A metrics-table row: ``| `template` | kind | ...``.
_ROW = re.compile(r"^\|\s*`(?P<template>[a-z0-9_.{}>-]+)`\s*\|\s*(?P<kind>\w+)\s*\|")


def default_docs_path() -> Path:
    """``docs/observability.md`` relative to the repository root."""
    return Path(__file__).resolve().parents[3] / "docs" / "observability.md"


def documented_metrics(path: Path) -> Dict[str, str]:
    """Parse ``{template: kind}`` from the docs' metrics table rows."""
    documented: Dict[str, str] = {}
    for line in path.read_text(encoding="utf-8").splitlines():
        match = _ROW.match(line.strip())
        if match and "." in match.group("template"):
            documented[match.group("template")] = match.group("kind")
    return documented


def check_docs(path: Path = None) -> List[str]:
    """Problems keeping the docs and the catalog apart (empty = in sync)."""
    path = path if path is not None else default_docs_path()
    if not path.exists():
        return [f"docs file missing: {path}"]
    documented = documented_metrics(path)
    cataloged: Dict[str, str] = {spec.template: spec.kind for spec in METRICS}
    problems: List[str] = []
    for template, kind in sorted(cataloged.items()):
        if template not in documented:
            problems.append(
                f"cataloged metric {template!r} is not documented in {path.name}"
            )
        elif documented[template] != kind:
            problems.append(
                f"{template!r}: catalog says {kind}, docs say "
                f"{documented[template]}"
            )
    for template in sorted(documented):
        if template not in cataloged:
            problems.append(
                f"{path.name} documents {template!r}, which is not in the "
                "catalog (repro.obs.names.METRICS)"
            )
    return problems
