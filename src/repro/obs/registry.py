"""The metrics registry: one namespace for everything the middleware measures.

The paper's premise is that adaptation needs monitoring ("the system
monitors the arrival rate at each source, the available computing
resources and memory, and the available network bandwidth", Section 1).
Before this module, those signals lived in ad-hoc fields scattered over
the runtimes, the link statistics, and the grid monitor.  The registry
gives them one home with four metric kinds:

* :class:`Counter` — monotone totals (items, bytes, exceptions);
* :class:`Gauge` — point-in-time values, either set directly or read
  lazily from a callback (link statistics);
* :class:`Histogram` — raw sample sets reduced to percentiles (latency);
* :class:`Series` — (time, value) trajectories, wrapping the existing
  :class:`~repro.simnet.trace.TimeSeries` (queue length, d-tilde,
  adjustment parameters, fabric utilization).

Every name must instantiate a template from the catalog in
:mod:`repro.obs.names`; registering an uncataloged name raises.  Both
runtimes publish into a registry, :class:`~repro.core.results.StageStats`
is materialized *from* it (so the two runtimes report identically), and
the exporters in :mod:`repro.obs.export` serialize it losslessly.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.obs.names import validate_name
from repro.simnet.trace import StatSummary, TimeSeries, percentile

__all__ = [
    "BatchMetrics",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Series",
    "StageMetrics",
]


class Counter:
    """A monotonically increasing total (thread-safe)."""

    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0: counters only go up)."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r}: negative increment {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "value": self._value}


class Gauge:
    """A point-in-time value; optionally read through a callback.

    A callback gauge (``fn=...``) evaluates lazily at read time — the
    pattern link statistics use so the registry always reflects the live
    counters without per-message publication overhead.
    """

    kind = "gauge"

    def __init__(self, name: str, fn: Optional[Callable[[], float]] = None) -> None:
        self.name = name
        self._fn = fn
        self._value = 0.0

    def set(self, value: float) -> None:
        if self._fn is not None:
            raise ValueError(f"gauge {self.name!r} is callback-backed; cannot set()")
        self._value = float(value)

    @property
    def value(self) -> float:
        return float(self._fn()) if self._fn is not None else self._value

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "value": self.value}


class Histogram:
    """Raw samples reduced to count/mean/percentiles (thread-safe append).

    Samples are kept raw rather than bucketed: run sizes here are test- and
    experiment-scale, and raw samples are what the latency decomposition
    and the existing ``StageStats.latencies`` contract need.
    """

    kind = "histogram"

    def __init__(self, name: str) -> None:
        self.name = name
        self._samples: List[float] = []
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self._samples.append(float(value))

    @property
    def samples(self) -> List[float]:
        return list(self._samples)

    @property
    def count(self) -> int:
        return len(self._samples)

    def summary(self) -> StatSummary:
        return StatSummary.of(self._samples)

    def percentiles(self, qs: Sequence[float] = (50.0, 95.0, 99.0)) -> Dict[float, float]:
        """Percentiles of the samples; empty histograms zero-fill.

        Uses the unified empty-input contract of
        :func:`repro.simnet.trace.percentile` (``default=0.0``).
        """
        return {q: percentile(self._samples, q, default=0.0) for q in qs}

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "samples": list(self._samples)}


class Series:
    """A (time, value) trajectory metric wrapping a :class:`TimeSeries`."""

    kind = "series"

    def __init__(self, name: str, series: Optional[TimeSeries] = None) -> None:
        self.name = name
        self.series = series if series is not None else TimeSeries(name)

    def record(self, time: float, value: float) -> None:
        self.series.record(time, value)

    @property
    def values(self) -> List[float]:
        return self.series.values

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "series": self.series.to_dict()}


_METRIC_TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram,
                 "series": Series}


class MetricsRegistry:
    """Get-or-create store of named metrics, validated against the catalog.

    ``counter(name)`` etc. return the existing metric when the name is
    already registered (so two publishers of ``link.X.bytes`` share one
    gauge) and raise if it is registered under a different kind.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Any] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, name: str, kind: str, factory: Callable[[], Any]) -> Any:
        validate_name(name, kind)
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if existing.kind != kind:
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind}"
                    )
                return existing
            metric = factory()
            self._metrics[name] = metric
            return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, "counter", lambda: Counter(name))

    def gauge(self, name: str, fn: Optional[Callable[[], float]] = None) -> Gauge:
        return self._get_or_create(name, "gauge", lambda: Gauge(name, fn=fn))

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, "histogram", lambda: Histogram(name))

    def series(self, name: str, series: Optional[TimeSeries] = None) -> Series:
        """Register a trajectory; ``series`` adopts an existing TimeSeries.

        Adopting (rather than copying) is deliberate: the runtimes keep
        recording into the same object they always did, and the registry
        view stays live.
        """
        metric = self._get_or_create(name, "series", lambda: Series(name, series))
        if series is not None and metric.series is not series:
            raise ValueError(f"metric {name!r} already wraps a different series")
        return metric

    # -- queries ------------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def get(self, name: str) -> Any:
        """The metric registered under ``name`` (KeyError if absent)."""
        try:
            return self._metrics[name]
        except KeyError:
            raise KeyError(
                f"no metric {name!r} (have {len(self._metrics)} metrics; "
                "see names() for the full list)"
            ) from None

    def value(self, name: str, default: Optional[float] = None) -> float:
        """Scalar value of a counter/gauge; ``default`` when unregistered."""
        if name not in self._metrics:
            if default is not None:
                return default
            raise KeyError(f"no metric {name!r}")
        return self._metrics[name].value

    def names(self, prefix: str = "") -> List[str]:
        """Sorted registered names, optionally filtered by dotted prefix."""
        return sorted(n for n in self._metrics if n.startswith(prefix))

    def metrics(self, prefix: str = "") -> List[Any]:
        """The metric objects, sorted by name."""
        return [self._metrics[n] for n in self.names(prefix)]

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready ``{name: {kind, payload}}`` mapping (sorted names)."""
        return {name: self._metrics[name].to_dict() for name in self.names()}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "MetricsRegistry":
        """Inverse of :meth:`to_dict` (callback gauges become plain)."""
        registry = cls()
        for name, payload in data.items():
            kind = payload["kind"]
            if kind == "counter":
                registry.counter(name).inc(payload["value"])
            elif kind == "gauge":
                registry.gauge(name).set(payload["value"])
            elif kind == "histogram":
                hist = registry.histogram(name)
                for sample in payload["samples"]:
                    hist.observe(sample)
            elif kind == "series":
                registry.series(name, TimeSeries.from_dict(payload["series"]))
            else:
                raise ValueError(f"unknown metric kind {kind!r} for {name!r}")
        return registry


class StageMetrics:
    """Pre-resolved metric handles for one stage's hot path.

    Both runtimes construct one per stage at build time, so the per-item
    code increments bound :class:`Counter` objects instead of re-resolving
    dotted names — and, because the names come from one place, the
    simulated and threaded runtimes are guaranteed to register identical
    ``stage.*`` / ``adapt.*`` families (the registry-parity contract).
    """

    def __init__(self, registry: MetricsRegistry, stage_name: str) -> None:
        prefix = f"stage.{stage_name}"
        self.items_in = registry.counter(f"{prefix}.items_in")
        self.items_out = registry.counter(f"{prefix}.items_out")
        self.items_dropped = registry.counter(f"{prefix}.items_dropped")
        self.bytes_in = registry.counter(f"{prefix}.bytes_in")
        self.bytes_out = registry.counter(f"{prefix}.bytes_out")
        self.busy_seconds = registry.counter(f"{prefix}.busy_seconds")
        self.exceptions_reported = registry.counter(f"{prefix}.exceptions_reported")
        self.exceptions_received = registry.counter(f"{prefix}.exceptions_received")
        self.latency = registry.histogram(f"{prefix}.latency")
        self.queue_len = registry.series(f"{prefix}.queue_len")
        self.arrival_rate = registry.gauge(f"{prefix}.arrival_rate")


class BatchMetrics:
    """Pre-resolved handles for one stage's micro-batching accounting.

    Constructed only when a stage runs with an enabled
    :class:`~repro.core.batching.BatchPolicy`, by whichever runtime hosts
    it — the ``batch.*`` family is identical across all three runtimes.
    """

    def __init__(self, registry: MetricsRegistry, stage_name: str) -> None:
        prefix = f"batch.{stage_name}"
        self.batches = registry.counter(f"{prefix}.batches")
        self.items = registry.counter(f"{prefix}.batched_items")
        self.flush_size = registry.histogram(f"{prefix}.flush_size")
        self.age_flushes = registry.counter(f"{prefix}.age_flushes")
