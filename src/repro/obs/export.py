"""Run exporters: JSONL (lossless) and CSV (spreadsheet-friendly).

The JSONL format is a stream of typed records, one JSON object per line::

    {"type": "run",    "app_name": ..., "execution_time": ...}
    {"type": "stage",  ...StageStats.to_dict()...}
    {"type": "event",  "time": ..., "kind": ..., ...attributes...}
    {"type": "metric", "name": ..., "kind": ..., ...payload...}
    {"type": "trace",  "trace_id": ..., "origin": ..., "hops": [...]}

:func:`load_jsonl` reassembles a :class:`~repro.core.results.RunResult`
whose ``to_dict()`` equals the exported run's — the round-trip is
lossless (enforced by ``tests/obs/test_export_roundtrip.py``).  Streaming
records rather than one monolithic object keeps exports greppable and
lets downstream tools (jq, pandas ``read_json(lines=True)``) consume them
incrementally.

The CSV exporter writes two sibling files — ``<base>.stages.csv`` (one
scalar row per stage) and ``<base>.metrics.csv`` (long-format
``name,kind,time,value`` rows) — trading losslessness for pivot-table
convenience; use JSONL when the export must be reloadable.
"""

from __future__ import annotations

import csv
import json
from typing import Any, Dict, List

from repro.core.results import RunResult, StageStats

__all__ = ["export_csv", "export_jsonl", "load_jsonl"]

#: Scalar StageStats columns in the stages CSV, in order.
_STAGE_COLUMNS = (
    "stage_name", "host_name", "items_in", "items_out", "items_dropped",
    "arrival_rate", "bytes_in", "bytes_out", "busy_seconds",
    "exceptions_received", "exceptions_reported", "latency_mean",
)


def export_jsonl(result: RunResult, path: str) -> int:
    """Write ``result`` as JSONL records; returns the record count."""
    records: List[Dict[str, Any]] = [
        {
            "type": "run",
            "app_name": result.app_name,
            "execution_time": result.execution_time,
        }
    ]
    for name, stats in result.stages.items():
        records.append({"type": "stage", **stats.to_dict(include_series=True)})
    for time, kind, attrs in result.events.entries:
        records.append({"type": "event", "time": time, "kind": kind, **attrs})
    if result.metrics is not None:
        for name, payload in result.metrics.to_dict().items():
            records.append({"type": "metric", "name": name, **payload})
    for trace in result.traces:
        records.append({"type": "trace", **trace.to_dict()})
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record) + "\n")
    return len(records)


def load_jsonl(path: str) -> RunResult:
    """Reassemble a :class:`RunResult` from a JSONL export.

    Inverse of :func:`export_jsonl`:
    ``load_jsonl(p).to_dict() == result.to_dict()`` for the exported
    ``result``.
    """
    run: Dict[str, Any] = {
        "app_name": "", "execution_time": 0.0, "stages": {},
        "events": [], "metrics": None, "traces": [],
    }
    metrics: Dict[str, Any] = {}
    with open(path, "r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                rtype = record.pop("type")
            except (ValueError, KeyError) as exc:
                raise ValueError(f"{path}:{line_no}: bad JSONL record: {exc}")
            if rtype == "run":
                run["app_name"] = record["app_name"]
                run["execution_time"] = record["execution_time"]
            elif rtype == "stage":
                run["stages"][record["stage_name"]] = record
            elif rtype == "event":
                run["events"].append(record)
            elif rtype == "metric":
                metrics[record.pop("name")] = record
            elif rtype == "trace":
                run["traces"].append(record)
            else:
                raise ValueError(f"{path}:{line_no}: unknown record type {rtype!r}")
    if metrics:
        run["metrics"] = metrics
    return RunResult.from_dict(run)


def _stage_row(stats: StageStats) -> Dict[str, Any]:
    data = stats.to_dict(include_series=False)
    return {column: data[column] for column in _STAGE_COLUMNS}


def export_csv(result: RunResult, base_path: str) -> List[str]:
    """Write ``<base>.stages.csv`` and ``<base>.metrics.csv``.

    Returns the written paths.  Scalar metrics get one row with an empty
    ``time`` column; series/histograms get one row per sample.
    """
    stages_path = f"{base_path}.stages.csv"
    metrics_path = f"{base_path}.metrics.csv"
    with open(stages_path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=_STAGE_COLUMNS)
        writer.writeheader()
        for name in sorted(result.stages):
            writer.writerow(_stage_row(result.stages[name]))
    with open(metrics_path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["name", "kind", "time", "value"])
        if result.metrics is not None:
            for name, payload in result.metrics.to_dict().items():
                kind = payload["kind"]
                if kind in ("counter", "gauge"):
                    writer.writerow([name, kind, "", payload["value"]])
                elif kind == "histogram":
                    for sample in payload["samples"]:
                        writer.writerow([name, kind, "", sample])
                elif kind == "series":
                    series = payload["series"]
                    for time, value in zip(series["times"], series["values"]):
                        writer.writerow([name, kind, time, value])
    return [stages_path, metrics_path]
