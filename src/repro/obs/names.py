"""The canonical metric-name catalog.

Every metric the middleware publishes has a **stable dotted name** built
from one of the templates below (``{stage}``, ``{link}``, ``{host}`` and
``{parameter}`` are filled with the runtime entity's name; entity names
never contain dots).  The catalog is the single source of truth three
consumers share:

* :class:`~repro.obs.registry.MetricsRegistry` validates every
  registration against it (an unknown name is a bug, not a new metric);
* ``docs/observability.md`` documents exactly these templates, and the
  docs-consistency check (:mod:`repro.obs.docscheck`, run as a tier-1
  test) fails when either side drifts;
* the metric-name stability snapshot test pins the templates so renames
  are deliberate, reviewed events.

The ``paper`` column ties each signal back to GATES (HPDC 2004): the
Section 1 monitoring claim ("the system monitors the arrival rate at each
source, the available computing resources and memory, and the available
network bandwidth"), the Figure 4 queue model, and the Section 4
adaptation quantities (load factors phi1/phi2/phi3, the long-term load
score d-tilde, over-/under-load exceptions).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

__all__ = ["METRICS", "MetricSpec", "spec_for", "validate_name"]


@dataclass(frozen=True)
class MetricSpec:
    """One catalog entry: a metric-name template and its meaning."""

    #: Dotted template, e.g. ``"stage.{stage}.items_in"``.
    template: str
    #: ``counter`` | ``gauge`` | ``histogram`` | ``series``.
    kind: str
    #: Unit of the recorded value.
    unit: str
    #: Which runtimes emit it: subset of {"sim", "threaded", "net"}.
    runtimes: Tuple[str, ...]
    #: The paper signal this metric corresponds to (or "—" for
    #: reproduction-only instrumentation).
    paper: str
    #: One-line human description.
    description: str


METRICS: Tuple[MetricSpec, ...] = (
    # -- per-stage flow accounting -----------------------------------------
    MetricSpec("stage.{stage}.items_in", "counter", "items", ("sim", "threaded"),
               "arrival accounting feeding the arrival-rate monitor (§1)",
               "Items dequeued and processed by the stage."),
    MetricSpec("stage.{stage}.items_out", "counter", "items", ("sim", "threaded"),
               "data-reduction factor of a stage (§3.1 selectivity)",
               "Items emitted by the stage's processor."),
    MetricSpec("stage.{stage}.items_dropped", "counter", "items", ("sim", "threaded"),
               "\"it is often not feasible to store all data\" (§1)",
               "Arrivals dropped at ingestion (lossy source bindings; "
               "always 0 on the threaded runtime, which has no lossy mode)."),
    MetricSpec("stage.{stage}.bytes_in", "counter", "bytes", ("sim", "threaded"),
               "network volume the evaluation measures (Fig 5 bytes column)",
               "Bytes received by the stage."),
    MetricSpec("stage.{stage}.bytes_out", "counter", "bytes", ("sim", "threaded"),
               "network volume the evaluation measures (Fig 5 bytes column)",
               "Bytes emitted by the stage."),
    MetricSpec("stage.{stage}.busy_seconds", "counter", "seconds", ("sim", "threaded"),
               "server busy time in the Fig 4 queue model",
               "Seconds the stage spent executing processor work."),
    MetricSpec("stage.{stage}.exceptions_reported", "counter", "exceptions",
               ("sim", "threaded"),
               "over-/under-load exceptions sent upstream (§4.2)",
               "Load exceptions this stage reported to its upstream stages."),
    MetricSpec("stage.{stage}.exceptions_received", "counter", "exceptions",
               ("sim", "threaded"),
               "over-/under-load exceptions received from downstream (§4.2)",
               "Load exceptions received from downstream stages."),
    # -- per-stage signals --------------------------------------------------
    MetricSpec("stage.{stage}.arrival_rate", "gauge", "items/second",
               ("sim", "threaded"),
               "\"the system monitors the arrival rate at each source\" (§1)",
               "EWMA arrival-rate estimate at end of run (silence-decayed)."),
    MetricSpec("stage.{stage}.queue_len", "series", "items", ("sim", "threaded"),
               "queue of the server, Fig 4 — the phi3 input",
               "Queue length sampled on the adaptation cadence."),
    MetricSpec("stage.{stage}.latency", "histogram", "seconds", ("sim", "threaded"),
               "the real-time constraint (§1: processing keeps up with arrival)",
               "End-to-end latency (item creation -> processed here), every item."),
    MetricSpec("stage.{stage}.latency_queue", "histogram", "seconds",
               ("sim", "threaded"),
               "waiting time in the Fig 4 queue",
               "Per-hop queue-wait seconds at this stage (sampled hop traces)."),
    MetricSpec("stage.{stage}.latency_compute", "histogram", "seconds",
               ("sim", "threaded"),
               "service time in the Fig 4 queue model",
               "Per-hop processing seconds at this stage (sampled hop traces)."),
    MetricSpec("stage.{stage}.latency_network", "histogram", "seconds",
               ("sim", "threaded"),
               "transmission on the bandwidth-constrained link (Fig 9 regime)",
               "Per-hop sender-side transmission seconds (sampled hop traces)."),
    # -- micro-batching (see docs/performance.md) ---------------------------
    MetricSpec("batch.{stage}.batches", "counter", "batches",
               ("sim", "threaded", "net"),
               "throughput-vs-latency trade the adaptation loop tunes (§4)",
               "Micro-batches flushed by the stage (all out-streams)."),
    MetricSpec("batch.{stage}.batched_items", "counter", "items",
               ("sim", "threaded", "net"),
               "throughput-vs-latency trade the adaptation loop tunes (§4)",
               "Items shipped through the batched fast path."),
    MetricSpec("batch.{stage}.flush_size", "histogram", "items",
               ("sim", "threaded", "net"),
               "throughput-vs-latency trade the adaptation loop tunes (§4)",
               "Items per flushed batch (full batches hit max_items; "
               "age flushes are smaller)."),
    MetricSpec("batch.{stage}.age_flushes", "counter", "flushes",
               ("sim", "threaded", "net"),
               "the real-time constraint (§1) bounding batch wait",
               "Batches flushed by the max_delay age bound rather than "
               "by reaching max_items."),
    # -- sharding and elastic scaling (see docs/sharding.md) ----------------
    MetricSpec("shard.{stage}.items", "counter", "items",
               ("sim", "threaded", "net"),
               "scheduling/brokering direction of the related work "
               "(Grid Service Broker, cs/0405023)",
               "Items routed to this replica by its group's partitioner."),
    MetricSpec("shard.{group}.replicas", "gauge", "replicas",
               ("sim", "threaded", "net"),
               "resource allocation the Section-4 load signal drives",
               "Active replica count of the shard group at end of run."),
    MetricSpec("scale.{group}.scale_ups", "counter", "transitions",
               ("threaded",),
               "scale-up on sustained queue-band breach (§4 signal reuse)",
               "Completed scale-up transitions of the group's autoscaler."),
    MetricSpec("scale.{group}.scale_downs", "counter", "transitions",
               ("threaded",),
               "scale-down on sustained idleness (§4 signal reuse)",
               "Completed scale-down transitions of the group's autoscaler."),
    MetricSpec("scale.{group}.replicas", "series", "replicas",
               ("threaded",),
               "resource allocation trajectory under the §4 load signal",
               "Active replica count over time (one point per transition, "
               "plus the starting count)."),
    MetricSpec("scale.{group}.rebalance_seconds", "histogram", "seconds",
               ("threaded",),
               "the real-time constraint (§1) bounding handoff stalls",
               "Wall-clock duration of each drain-and-handoff rebalance."),
    # -- benchmark harness (see docs/performance.md) ------------------------
    MetricSpec("bench.{case}.items_per_second", "gauge", "items/second",
               ("sim", "threaded", "net"),
               "execution time of Figures 5 and 6, as throughput",
               "Sustained throughput measured by one `repro bench` case."),
    MetricSpec("bench.{case}.p99_latency", "gauge", "seconds",
               ("sim", "threaded", "net"),
               "the real-time constraint (§1: processing keeps up)",
               "99th-percentile per-item latency of one `repro bench` case."),
    # -- adaptation ---------------------------------------------------------
    MetricSpec("adapt.{stage}.d_tilde", "series", "load score", ("sim", "threaded"),
               "the long-term load score d-tilde (§4.1)",
               "Long-term load trajectory driving the exception protocol."),
    MetricSpec("adapt.{stage}.param.{parameter}", "series", "parameter units",
               ("sim", "threaded"),
               "adjustment-parameter trajectory (Figures 8 and 9)",
               "Value of one adjustment parameter over time."),
    # -- network fabric -----------------------------------------------------
    MetricSpec("link.{link}.tx_busy", "gauge", "seconds", ("sim",),
               "\"the available network bandwidth\" (§1)",
               "Cumulative transmitter-busy seconds of the link."),
    MetricSpec("link.{link}.bytes", "gauge", "bytes", ("sim",),
               "network volume over the delay-injected links (§5)",
               "Cumulative bytes delivered by the link."),
    MetricSpec("link.{link}.messages", "gauge", "messages", ("sim",),
               "network volume over the delay-injected links (§5)",
               "Cumulative messages delivered by the link."),
    MetricSpec("link.{link}.throughput", "series", "bytes/second", ("sim",),
               "\"the available network bandwidth\" (§1)",
               "Delivered bytes/second per MonitoringService period."),
    MetricSpec("link.{link}.utilization", "series", "fraction", ("sim",),
               "\"the available network bandwidth\" (§1)",
               "TX-busy fraction per MonitoringService period."),
    MetricSpec("host.{host}.utilization", "series", "fraction", ("sim",),
               "\"the available computing resources\" (§1)",
               "Busy-core fraction per MonitoringService period."),
    # -- faults and recovery (see docs/fault_tolerance.md) ------------------
    MetricSpec("fault.{stage}.failovers", "counter", "failovers", ("sim",),
               "\"24 hours a day, 7 days a week\" (§1) — recovery extension",
               "Times the stage was re-placed and restored after a host "
               "failure (includes in-place restarts after recovery)."),
    MetricSpec("fault.{stage}.retries", "counter", "retries", ("sim",),
               "transient faults on the delay-injected links (§5) — extension",
               "Transmission retries after transient link losses."),
    MetricSpec("fault.{stage}.quarantined", "counter", "items",
               ("sim", "threaded"),
               "—",
               "Poison items quarantined under the skip/dead-letter error "
               "policy (on_item raised, or transmission retries exhausted)."),
    MetricSpec("recovery.{stage}.checkpoints", "counter", "checkpoints",
               ("sim", "threaded"),
               "—",
               "Stage checkpoints taken on the configured cadence."),
    MetricSpec("recovery.{stage}.latency", "histogram", "seconds", ("sim",),
               "\"24 hours a day, 7 days a week\" (§1) — recovery extension",
               "Outage per failover: last heartbeat (or worker death) to "
               "the restored worker starting."),
    MetricSpec("recovery.{stage}.items_replayed", "counter", "items", ("sim",),
               "—",
               "Messages re-delivered from the replay buffer after a "
               "failover."),
    MetricSpec("recovery.{stage}.duplicates", "counter", "items", ("sim",),
               "—",
               "Replayed items the pre-failure worker had already processed "
               "(the at-least-once duplicates; counted, not hidden)."),
    MetricSpec("recovery.{stage}.replay_dropped", "counter", "items", ("sim",),
               "—",
               "Unacknowledged items the bounded replay buffer had already "
               "evicted when a failover needed them (permanently lost)."),
    # -- planned live migration (see docs/migration.md) ---------------------
    MetricSpec("migration.{stage}.moves", "counter", "moves",
               ("sim", "threaded", "net"),
               "deployment-time assumptions drift (§1) — re-placement loop",
               "Completed planned moves of the stage (manual or "
               "controller-triggered)."),
    MetricSpec("migration.{stage}.pause_seconds", "histogram", "seconds",
               ("sim", "threaded", "net"),
               "—",
               "Per-move pause: migration request to the replacement "
               "consuming again (the bounded-pause guarantee; p99 is the "
               "acceptance number)."),
    MetricSpec("migration.{stage}.triggers", "counter", "triggers",
               ("sim",),
               "observed bandwidth/occupancy vs. deployment assumptions (§4)",
               "MigrationController decisions that requested a move after "
               "a hysteresis breach (link drift or host occupancy)."),
    MetricSpec("migration.{stage}.items_replayed", "counter", "items",
               ("sim",),
               "—",
               "Replay performed because a planned move degraded to a "
               "crash failover (source host died mid-move); zero on the "
               "planned path."),
    MetricSpec("migration.{stage}.duplicates", "counter", "items",
               ("sim",),
               "—",
               "At-least-once duplicates from a degraded (crash-interrupted) "
               "migration; zero on the planned path."),
    # -- record/replay ledger (see docs/replay.md) --------------------------
    MetricSpec("ledger.{stage}.records", "counter", "records",
               ("sim", "threaded", "net"),
               "—",
               "Nondeterministic reads (CLOCK/RNG/PARAM) the stage recorded "
               "into its run-ledger sidecar."),
    MetricSpec("ledger.{stage}.effects", "counter", "effects",
               ("sim", "threaded", "net"),
               "—",
               "Sink effects committed exactly once through the SinkTxn "
               "protocol (SINK records)."),
    MetricSpec("ledger.{stage}.dedup_hits", "counter", "reads",
               ("sim", "threaded", "net"),
               "—",
               "Reads served from the recorded coordinate instead of a "
               "fresh value (redelivered items reproducing their original "
               "output bit for bit)."),
    MetricSpec("ledger.{stage}.replay_misses", "counter", "reads",
               ("sim", "threaded", "net"),
               "—",
               "Replay-mode reads whose coordinate was absent from the "
               "recording (fell back to a live value; nonzero means the "
               "replay drifted off the recorded path)."),
    # -- networked data plane (see docs/networking.md) ----------------------
    MetricSpec("net.{channel}.frames", "counter", "frames", ("net",),
               "inter-server stream traffic (§2: stages on distinct hosts)",
               "DATA + EOS frames sent on the channel (sender side)."),
    MetricSpec("net.{channel}.bytes", "counter", "bytes", ("net",),
               "network volume the evaluation measures (Fig 5 bytes column)",
               "Encoded frame bytes (header + payload) put on the wire "
               "by the channel's sender."),
    MetricSpec("net.{channel}.credit_stalls", "counter", "stalls", ("net",),
               "backpressure in the Fig 4 queue model, made explicit",
               "Sends that blocked because the credit window was exhausted."),
    MetricSpec("net.{channel}.credit_wait_seconds", "counter", "seconds",
               ("net",),
               "backpressure in the Fig 4 queue model, made explicit",
               "Total seconds the sender spent blocked awaiting credit."),
    MetricSpec("net.{channel}.in_flight_peak", "gauge", "items", ("net",),
               "bounded buffering replacing unbounded socket queues",
               "Peak unacknowledged items in flight (credit is charged "
               "per item, not per frame, so a batched DATA frame costs "
               "its item count); never exceeds the receiver's granted "
               "credit window."),
    MetricSpec("net.{channel}.exceptions", "counter", "exceptions", ("net",),
               "over-/under-load exceptions sent upstream over the wire (§4.2)",
               "Load exceptions delivered upstream over the channel's "
               "socket (counted at the sending stage's worker)."),
    MetricSpec("net.{worker}.rtt", "histogram", "seconds", ("net",),
               "\"the available network bandwidth\" (§1) — liveness probe",
               "Coordinator -> worker ping round-trip-time samples."),
    # -- whole-run ----------------------------------------------------------
    MetricSpec("run.execution_time", "gauge", "seconds", ("sim", "threaded"),
               "execution time of Figures 5 and 6",
               "Simulated (or wall-clock) seconds from start to completion."),
    MetricSpec("run.traced_items", "counter", "items", ("sim", "threaded"),
               "—",
               "Items that carried a sampled hop-trace context."),
)

_PLACEHOLDER = re.compile(r"\{[a-z]+\}")


def _compile(template: str) -> "re.Pattern[str]":
    pattern = _PLACEHOLDER.sub("[^.]+", re.escape(template).replace(r"\{", "{").replace(r"\}", "}"))
    return re.compile(f"^{pattern}$")


_COMPILED: Dict[str, "re.Pattern[str]"] = {
    spec.template: _compile(spec.template) for spec in METRICS
}


def spec_for(name: str) -> Optional[MetricSpec]:
    """The catalog entry a concrete metric name instantiates, or None."""
    for spec in METRICS:
        if _COMPILED[spec.template].match(name):
            return spec
    return None


def validate_name(name: str, kind: str) -> MetricSpec:
    """Assert ``name`` instantiates a catalog template of ``kind``.

    Returns the matching spec; raises ``ValueError`` otherwise.  This is
    what keeps metric names stable: new metrics require a catalog entry
    (and therefore a ``docs/observability.md`` row) first.
    """
    spec = spec_for(name)
    if spec is None:
        raise ValueError(
            f"metric name {name!r} matches no template in the catalog "
            "(repro.obs.names.METRICS); add a MetricSpec and document it "
            "in docs/observability.md"
        )
    if spec.kind != kind:
        raise ValueError(
            f"metric {name!r} is cataloged as a {spec.kind}, "
            f"registered as a {kind}"
        )
    return spec
