"""Heartbeat-driven live failover for a running simulated pipeline.

:class:`FailoverCoordinator` is the glue between three layers that each
know only their own job:

* the :class:`~repro.grid.heartbeat.HeartbeatDetector` notices a silent
  host and fires its suspicion callbacks;
* the :class:`~repro.grid.faults.Redeployer` re-places the dead host's
  stages on healthy hosts (fresh service instances, no state);
* :meth:`~repro.core.runtime_sim.SimulatedRuntime.failover_stage`
  restores each moved stage from its last checkpoint and replays its
  unacknowledged input — while the rest of the pipeline keeps running.

The outage clock for the recovery-latency histogram starts at the failed
host's *last heartbeat*: the undetected silent period is part of the
outage the failover pays for, not free time.
"""

from __future__ import annotations

from typing import List, Optional

from repro.grid.deployer import Deployment
from repro.grid.faults import Redeployer
from repro.grid.heartbeat import HeartbeatDetector
from repro.core.runtime_sim import SimulatedRuntime

__all__ = ["FailoverCoordinator"]


class FailoverCoordinator:
    """Wires detector suspicions to redeployment plus state restoration.

    Typical use::

        runtime = SimulatedRuntime(env, net, deployment,
                                   resilience=ResilienceConfig())
        detector = HeartbeatDetector(env, net, interval=0.5, timeout=1.5)
        coordinator = FailoverCoordinator(runtime, detector, Redeployer(deployer))
        coordinator.arm()
        detector.start()
        result = runtime.run()

    Every handled suspicion is recorded in :attr:`recoveries` as
    ``(time, host, moved_stage_names)``.
    """

    def __init__(
        self,
        runtime: SimulatedRuntime,
        detector: HeartbeatDetector,
        redeployer: Redeployer,
        deployment: Optional[Deployment] = None,
    ) -> None:
        if runtime.resilience is None:
            raise ValueError(
                "FailoverCoordinator requires a runtime constructed with "
                "resilience= (checkpointing and replay are what make a live "
                "failover possible)"
            )
        self.runtime = runtime
        self.detector = detector
        self.redeployer = redeployer
        self.deployment = deployment if deployment is not None else runtime.deployment
        self.recoveries: List[tuple] = []
        self._armed = False

    def arm(self) -> None:
        """Register the suspicion handler (idempotent)."""
        if self._armed:
            return
        self._armed = True
        self.detector.on_suspect(self._on_suspect)

    def _on_suspect(self, host_name: str, time: float) -> None:
        # A stage in the middle of a planned migration must not also be
        # failed over: its migration drainer owns the re-placement (and
        # handles a mid-move source-host crash itself).  Redeploying it
        # here would race the drainer — two fresh instances, two
        # restores, duplicated replay.
        migrating = self.runtime.migrating_stages()
        report = self.redeployer.redeploy(
            self.deployment, host_name, exclude_stages=migrating
        )
        down_since = self.detector.last_beat(host_name)
        for stage_name in report.moved_stages:
            self.runtime.failover_stage(stage_name, down_since=down_since)
        self.recoveries.append((time, host_name, tuple(report.moved_stages)))
