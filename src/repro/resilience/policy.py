"""Resilience configuration and the dead-letter queue.

One :class:`ResilienceConfig` object switches a runtime from the seed's
fail-stop behaviour (any fault aborts the run) into recovery mode; every
knob has a conservative default so ``ResilienceConfig()`` is a sensible
starting point.  The :class:`DeadLetterQueue` holds quarantined poison
items — input that made ``on_item`` raise under the ``dead-letter``
error policy, or messages that exhausted their transmission retries —
so operators can inspect *what* was dropped rather than just a count.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, List, Optional

__all__ = ["DeadLetter", "DeadLetterQueue", "ERROR_POLICIES", "ResilienceConfig"]

#: What the runtime does when ``on_item`` raises:
#: ``fail`` aborts the run (seed behaviour), ``skip`` drops the item and
#: counts it, ``dead-letter`` drops it into the :class:`DeadLetterQueue`.
ERROR_POLICIES = ("fail", "skip", "dead-letter")


@dataclass(frozen=True)
class ResilienceConfig:
    """Fault-tolerance knobs for a runtime.

    Parameters
    ----------
    checkpoint_interval:
        Seconds (simulated, or scaled wall-clock on the threaded runtime)
        between stage checkpoints; ``None`` disables checkpointing (a
        failover then restarts the stage from empty state and replays the
        whole retained buffer).
    replay_limit:
        Per-(stage, channel) bound on retained unacknowledged input.
        Deliveries beyond it evict the oldest entries; evictions that a
        later replay needed are surfaced as ``recovery.*.replay_dropped``.
    error_policy:
        One of :data:`ERROR_POLICIES`; governs ``on_item`` exceptions.
    dead_letter_limit:
        Bound on retained :class:`DeadLetter` records (counters keep
        counting past it).
    max_retries:
        Transmission retries after the first failed attempt.
    retry_base_delay:
        Backoff before the first retry, in seconds.
    retry_multiplier:
        Exponential backoff factor per subsequent retry.
    retry_jitter:
        Uniform jitter fraction ``j``: each delay is scaled by a factor
        drawn from ``[1 - j/2, 1 + j/2]`` (centered on the exponential
        delay, floored at 0), so concurrent retriers spread out instead
        of marching in lockstep.
    recovery_poll:
        How often the simulated runtime re-checks a down host for
        in-place recovery (crash + ``recover()`` without redeployment).
    seed:
        Seeds the retry-jitter RNG (keeps simulated runs deterministic).
    """

    checkpoint_interval: Optional[float] = 1.0
    replay_limit: int = 1024
    error_policy: str = "fail"
    dead_letter_limit: int = 1000
    max_retries: int = 3
    retry_base_delay: float = 0.05
    retry_multiplier: float = 2.0
    retry_jitter: float = 0.5
    recovery_poll: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.checkpoint_interval is not None and self.checkpoint_interval <= 0:
            raise ValueError(
                f"checkpoint_interval must be > 0 or None, got {self.checkpoint_interval}"
            )
        if self.replay_limit < 1:
            raise ValueError(f"replay_limit must be >= 1, got {self.replay_limit}")
        if self.error_policy not in ERROR_POLICIES:
            raise ValueError(
                f"error_policy must be one of {ERROR_POLICIES}, got {self.error_policy!r}"
            )
        if self.dead_letter_limit < 1:
            raise ValueError(
                f"dead_letter_limit must be >= 1, got {self.dead_letter_limit}"
            )
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.retry_base_delay < 0:
            raise ValueError(
                f"retry_base_delay must be >= 0, got {self.retry_base_delay}"
            )
        if self.retry_multiplier < 1.0:
            raise ValueError(
                f"retry_multiplier must be >= 1, got {self.retry_multiplier}"
            )
        if self.retry_jitter < 0:
            raise ValueError(f"retry_jitter must be >= 0, got {self.retry_jitter}")
        if self.recovery_poll <= 0:
            raise ValueError(f"recovery_poll must be > 0, got {self.recovery_poll}")

    def retry_delay(self, attempt: int, rng: Any) -> float:
        """Backoff before retry number ``attempt`` (0-based), with jitter.

        The jitter is *centered*: the exponential delay is scaled by a
        factor drawn uniformly from ``[1 - j/2, 1 + j/2]`` and floored
        at 0.  A one-sided ``[1, 1 + j]`` scale would only ever lengthen
        delays, leaving simultaneous failures synchronized (every
        retrier waits at least the same base backoff, so retry storms
        arrive together); centering desynchronizes them while keeping
        the mean delay equal to the exponential schedule.  Determinism
        is preserved: ``rng`` is the caller's seeded generator.
        """
        base = self.retry_base_delay * (self.retry_multiplier ** attempt)
        factor = 1.0 + self.retry_jitter * (rng.random() - 0.5)
        return max(0.0, base * factor)


@dataclass(frozen=True)
class DeadLetter:
    """One quarantined item."""

    stage: str
    payload: Any
    time: float
    error: str
    #: ``"processing"`` (on_item raised) or ``"transmission"`` (retries
    #: exhausted on the wire).
    reason: str = "processing"


class DeadLetterQueue:
    """Bounded FIFO of quarantined items, shared by a whole run."""

    def __init__(self, limit: int = 1000) -> None:
        if limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        self.limit = limit
        self._letters: Deque[DeadLetter] = deque(maxlen=limit)
        #: Letters evicted because the queue was full (still quarantined,
        #: no longer inspectable).
        self.evicted = 0
        self.total = 0

    def add(self, letter: DeadLetter) -> None:
        if len(self._letters) == self.limit:
            self.evicted += 1
        self._letters.append(letter)
        self.total += 1

    @property
    def letters(self) -> List[DeadLetter]:
        return list(self._letters)

    def for_stage(self, stage: str) -> List[DeadLetter]:
        return [l for l in self._letters if l.stage == stage]

    def __len__(self) -> int:
        return len(self._letters)

    def __repr__(self) -> str:
        return f"DeadLetterQueue(retained={len(self._letters)}, total={self.total})"
