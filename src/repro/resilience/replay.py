"""Bounded per-channel replay buffers (at-least-once redelivery).

Every message delivered into a stage's input queue is also appended here
under its *channel* (the message's ``origin`` — one per source binding or
incoming stream, each of which is FIFO end-to-end).  Sequence numbers are
per-channel and 1-based; the stage's worker acknowledges a delivery by
advancing its cursor after fully processing the message, and checkpoints
trim the buffer up to the checkpointed cursor.

On failover the runtime re-enqueues every retained entry past the
restored cursor.  Entries the pre-failure worker had already processed
(sequence <= its live cursor) are the documented at-least-once
*duplicates*; entries evicted by the bound before they could be replayed
are *dropped* — both are counted, never hidden.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Tuple

__all__ = ["ReplayBuffers"]


class _Channel:
    """One (stage, origin) channel: a bounded deque of (seq, message)."""

    __slots__ = ("entries", "next_seq", "evicted_up_to", "limit")

    def __init__(self, limit: int) -> None:
        self.limit = limit
        self.entries: Deque[Tuple[int, Any]] = deque()
        self.next_seq = 1
        #: Highest sequence number evicted by the bound (0 = none).
        self.evicted_up_to = 0


class ReplayBuffers:
    """Retained unacknowledged input, per stage and channel."""

    def __init__(self, limit: int = 1024) -> None:
        if limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        self.limit = limit
        self._channels: Dict[Tuple[str, str], _Channel] = {}

    def _channel(self, stage: str, channel: str) -> _Channel:
        key = (stage, channel)
        found = self._channels.get(key)
        if found is None:
            found = self._channels[key] = _Channel(self.limit)
        return found

    def append(self, stage: str, channel: str, message: Any) -> int:
        """Record one delivery; returns its sequence number."""
        chan = self._channel(stage, channel)
        seq = chan.next_seq
        chan.next_seq += 1
        chan.entries.append((seq, message))
        while len(chan.entries) > chan.limit:
            evicted_seq, _ = chan.entries.popleft()
            chan.evicted_up_to = evicted_seq
        return seq

    def trim(self, stage: str, channel: str, upto_seq: int) -> int:
        """Drop acknowledged entries (seq <= ``upto_seq``); returns count."""
        chan = self._channels.get((stage, channel))
        if chan is None:
            return 0
        dropped = 0
        while chan.entries and chan.entries[0][0] <= upto_seq:
            chan.entries.popleft()
            dropped += 1
        return dropped

    def replay_from(
        self, stage: str, channel: str, cursor: int
    ) -> Tuple[int, List[Tuple[int, Any]]]:
        """Entries to re-deliver after a failover.

        Returns ``(dropped, entries)`` where ``entries`` is every retained
        ``(seq, message)`` with ``seq > cursor`` in order, and ``dropped``
        is how many needed entries the bound already evicted (the gap
        between ``cursor`` and the oldest retained sequence).
        """
        chan = self._channels.get((stage, channel))
        if chan is None:
            return 0, []
        dropped = max(0, chan.evicted_up_to - cursor)
        return dropped, [(seq, msg) for seq, msg in chan.entries if seq > cursor]

    def channels(self, stage: str) -> List[str]:
        """Channel names with any recorded history for ``stage``."""
        return sorted(c for s, c in self._channels if s == stage)

    def retained(self, stage: str, channel: str) -> int:
        chan = self._channels.get((stage, channel))
        return len(chan.entries) if chan else 0

    def last_seq(self, stage: str, channel: str) -> int:
        """Sequence number of the most recent delivery (0 = none)."""
        chan = self._channels.get((stage, channel))
        return chan.next_seq - 1 if chan else 0
