"""Stage checkpoints and their stores.

A :class:`StageCheckpoint` is everything the runtime needs to rebuild a
stage after its host crashes: the processor's own ``snapshot()`` state,
the current :class:`~repro.core.api.AdjustmentParameter` values, the
adaptation state (:class:`~repro.core.adaptation.load.LoadEstimator` and
:class:`~repro.core.adaptation.protocol.ExceptionCounter`), and the
per-channel input cursors that anchor replay.

Stores are deliberately simple: :class:`MemoryCheckpointStore` for tests
and simulated runs, :class:`JsonlCheckpointStore` appending one JSON line
per checkpoint for runs that should survive the process.  State values
must be JSON-representable for the JSONL store; ``snapshot()``
implementations in this repo stick to lists/dicts/numbers/strings (numpy
arrays are converted to lists by the encoder fallback).
"""

from __future__ import annotations

import abc
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = [
    "CheckpointStore",
    "JsonlCheckpointStore",
    "MemoryCheckpointStore",
    "StageCheckpoint",
]


@dataclass(frozen=True)
class StageCheckpoint:
    """A consistent snapshot of one stage at one instant."""

    stage: str
    time: float
    #: Stage incarnation the snapshot was taken from (bumped per failover).
    generation: int = 0
    #: ``StreamProcessor.snapshot()`` result (None = stateless processor).
    processor_state: Any = None
    #: Adjustment-parameter name -> value.
    parameters: Dict[str, float] = field(default_factory=dict)
    #: ``LoadEstimator.snapshot()`` (None when the stage has none).
    estimator: Optional[Dict[str, Any]] = None
    #: ``ExceptionCounter.snapshot()``.
    exceptions: Dict[str, Any] = field(default_factory=dict)
    #: Input channel -> sequence number of the last *acknowledged*
    #: (fully processed) delivery; replay resumes after it.
    cursors: Dict[str, int] = field(default_factory=dict)
    #: End-of-stream markers already consumed.
    eos_seen: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "stage": self.stage,
            "time": self.time,
            "generation": self.generation,
            "processor_state": self.processor_state,
            "parameters": dict(self.parameters),
            "estimator": self.estimator,
            "exceptions": dict(self.exceptions),
            "cursors": dict(self.cursors),
            "eos_seen": self.eos_seen,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "StageCheckpoint":
        return cls(
            stage=data["stage"],
            time=float(data["time"]),
            generation=int(data.get("generation", 0)),
            processor_state=data.get("processor_state"),
            parameters={k: float(v) for k, v in data.get("parameters", {}).items()},
            estimator=data.get("estimator"),
            exceptions=dict(data.get("exceptions", {})),
            cursors={k: int(v) for k, v in data.get("cursors", {}).items()},
            eos_seen=int(data.get("eos_seen", 0)),
        )


class CheckpointStore(abc.ABC):
    """Where checkpoints go; ``latest`` is what recovery reads."""

    @abc.abstractmethod
    def save(self, checkpoint: StageCheckpoint) -> None:
        """Persist one checkpoint."""

    @abc.abstractmethod
    def latest(self, stage: str) -> Optional[StageCheckpoint]:
        """Most recent checkpoint of ``stage``, or None."""

    @abc.abstractmethod
    def history(self, stage: str) -> List[StageCheckpoint]:
        """All retained checkpoints of ``stage``, oldest first."""

    @abc.abstractmethod
    def stages(self) -> List[str]:
        """Stage names with at least one checkpoint."""


class MemoryCheckpointStore(CheckpointStore):
    """In-process store; optionally keeps only the last ``keep`` per stage."""

    def __init__(self, keep: Optional[int] = None) -> None:
        if keep is not None and keep < 1:
            raise ValueError(f"keep must be >= 1 or None, got {keep}")
        self.keep = keep
        self._by_stage: Dict[str, List[StageCheckpoint]] = {}

    def save(self, checkpoint: StageCheckpoint) -> None:
        history = self._by_stage.setdefault(checkpoint.stage, [])
        history.append(checkpoint)
        if self.keep is not None and len(history) > self.keep:
            del history[: len(history) - self.keep]

    def latest(self, stage: str) -> Optional[StageCheckpoint]:
        history = self._by_stage.get(stage)
        return history[-1] if history else None

    def history(self, stage: str) -> List[StageCheckpoint]:
        return list(self._by_stage.get(stage, ()))

    def stages(self) -> List[str]:
        return sorted(self._by_stage)


def _jsonable(value: Any) -> Any:
    """Encoder fallback: numpy scalars/arrays, sets, and tuples."""
    if hasattr(value, "tolist"):  # numpy array or scalar
        return value.tolist()
    if isinstance(value, (set, frozenset, tuple)):
        return list(value)
    raise TypeError(f"checkpoint state is not JSON-serializable: {type(value).__name__}")


class JsonlCheckpointStore(CheckpointStore):
    """Appends one JSON line per checkpoint; reads serve from memory.

    ``load`` rebuilds the in-memory mirror from an existing file, so a
    new process can resume from a previous run's checkpoints.  Note that
    JSON round-trips dict *keys* as strings and tuples as lists — the
    ``restore()`` implementations in this repo accept those forms.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._memory = MemoryCheckpointStore()
        self._handle = open(path, "a", encoding="utf-8")

    @classmethod
    def load(cls, path: str) -> "JsonlCheckpointStore":
        store = cls(path)
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    store._memory.save(StageCheckpoint.from_dict(json.loads(line)))
        return store

    def save(self, checkpoint: StageCheckpoint) -> None:
        line = json.dumps(checkpoint.to_dict(), default=_jsonable)
        self._handle.write(line + "\n")
        self._handle.flush()
        # Mirror what the file now says (round-trip, so latest() returns
        # exactly what a reload would).
        self._memory.save(StageCheckpoint.from_dict(json.loads(line)))

    def latest(self, stage: str) -> Optional[StageCheckpoint]:
        return self._memory.latest(stage)

    def history(self, stage: str) -> List[StageCheckpoint]:
        return self._memory.history(stage)

    def stages(self) -> List[str]:
        return self._memory.stages()

    def close(self) -> None:
        self._handle.close()

    def __enter__(self) -> "JsonlCheckpointStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
