"""Planned live migration: move a *healthy* stage with a bounded pause.

PR 2 gave the repo crash-driven failover: kill a host, restore its
stages from checkpoints, replay unacknowledged input.  This module adds
the non-destructive counterpart — the control-plane move GATES's
long-running-pipeline pitch actually needs when deployment-time
assumptions drift but nothing has failed:

* :class:`Migrator` — the grid-layer half of a planned move.  Given a
  live :class:`~repro.grid.deployer.Deployment`, it asks the ordinary
  :class:`~repro.grid.matchmaker.Matchmaker` for a better node
  (excluding the current one), secures the replacement service instance
  *before* destroying the old one (the Redeployer's ordering), and
  swaps the placement record.  It moves no state: draining, snapshot
  hand-off and channel switch-over are the runtime's job
  (:meth:`~repro.core.runtime_sim.SimulatedRuntime.migrate_stage`,
  :meth:`~repro.core.runtime_threads.ThreadedRuntime.migrate_stage`,
  and the networked runtime's MIGRATE/HANDOFF exchange).

* :class:`MigrationController` — the closed loop.  It watches observed
  per-link bandwidth and per-host occupancy (the Section 4 load signal
  as sampled by :class:`~repro.grid.monitor.MonitoringService`, plus
  raw ``simnet`` link capacity drift) against the values captured when
  the controller started, and triggers a re-placement when they diverge
  past the hysteresis bands of :class:`MigrationPolicy` — sustained
  breaches only, with a per-stage cooldown, exactly the
  breach/idle/cooldown shape the PR 6 autoscaler uses.

Every move is reported as a :class:`MigrationReport` and surfaced under
the ``migration.*`` metric family (see docs/migration.md).

Unlike failover, a *planned* move is loss-free and duplicate-free by
construction: the stage is drained to an item boundary, checkpointed,
and its queued backlog survives in place — nothing is replayed unless
the source host dies mid-move, in which case the move degrades to the
PR 2 failover path and is reported with ``planned=False``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from repro.grid.deployer import Deployer, Deployment, DeploymentError, Placement
from repro.grid.monitor import MonitoringService

__all__ = [
    "KNOBS",
    "MigrationError",
    "MigrationPlan",
    "MigrationPolicy",
    "MigrationReport",
    "MigrationController",
    "Migrator",
    "check_docs",
    "default_docs_path",
    "documented_knobs",
]

#: The user-facing migration knobs — the :class:`MigrationPolicy` fields,
#: single source of truth for the ``docs/migration.md`` knobs table
#: (diffed by :func:`check_docs`; the tier-1 docs test also asserts this
#: dict and the dataclass never drift apart).
KNOBS: Dict[str, str] = {
    "interval": "seconds between controller drift evaluations",
    "host_high": "sustained host occupancy that counts as a breach",
    "host_low": "destination occupancy ceiling an occupancy move requires",
    "bandwidth_ratio": "fraction of baseline link capacity that counts as drift",
    "breach_samples": "consecutive breach samples before a trigger",
    "cooldown": "seconds a stage is immune after each of its moves",
}


class MigrationError(Exception):
    """Raised when a planned stage move cannot be carried out."""


@dataclass(frozen=True)
class MigrationPlan:
    """One scheduled migration request (networked runtime).

    ``at`` is seconds after START; ``target`` pins the destination
    worker, or None to let the coordinator's matchmaker choose.
    """

    stage: str
    at: float
    target: Optional[str] = None

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError(f"at must be >= 0, got {self.at}")


@dataclass
class MigrationReport:
    """What one migration did, as measured by the runtime that ran it."""

    stage: str
    from_host: str
    to_host: str
    #: "manual" for API-triggered moves, "drift" for controller-triggered.
    trigger: str = "manual"
    requested_at: float = 0.0
    completed_at: float = 0.0
    #: The stop-the-stage window: drain + snapshot + re-place + restore.
    pause_seconds: float = 0.0
    #: Replayed input (only the failover fallback path replays).
    items_replayed: int = 0
    duplicates: int = 0
    #: False when the source host died mid-move and the planned switch
    #: degraded to a checkpoint-restore failover.
    planned: bool = True


class Migrator:
    """Grid-layer re-placement of one healthy stage (create before destroy).

    The service-instance dance mirrors :class:`~repro.grid.faults.Redeployer`
    — replacement fully secured (created, customized, activated) before
    the old instance is destroyed — but for a single, *live* stage, and
    with the current host excluded rather than a failed one.
    """

    def __init__(self, deployer: Deployer, deployment: Deployment) -> None:
        self.deployer = deployer
        self.deployment = deployment
        #: Every committed placement swap: (stage, old_host, new_host).
        self.moves: List[Tuple[str, str, str]] = []

    def select_target(
        self, stage_name: str, exclude: Iterable[str] = ()
    ) -> str:
        """Matchmake a destination host for ``stage_name``.

        The stage's current host is always excluded; a placement hint
        pinning the stage to its current host is relaxed (the pin is
        what we are deliberately overriding).
        """
        current = self.deployment.host_of(stage_name)
        stage_cfg = self.deployment.config.stage(stage_name)
        requirement = stage_cfg.requirement
        excluded = {current} | set(exclude)
        matchmaker = self.deployer.matchmaker
        try:
            choice = matchmaker.match_one(requirement, exclude=excluded)
        except Exception:
            choice = None
        # A pinned hint overrides ``exclude`` in the matchmaker, so the
        # first attempt can hand back the very host we are leaving —
        # treat that as a miss and retry with the pin relaxed (the pin
        # is what we are deliberately overriding).
        if choice is not None and choice not in excluded:
            return choice
        if requirement.placement_hint is None:
            raise MigrationError(
                f"no eligible target host for stage {stage_name!r} "
                f"(excluded: {sorted(excluded)})"
            )
        from dataclasses import replace as dc_replace

        relaxed = dc_replace(requirement, placement_hint=None)
        try:
            choice = matchmaker.match_one(relaxed, exclude=excluded)
        except Exception as exc:
            raise MigrationError(
                f"no eligible target host for stage {stage_name!r}: {exc}"
            ) from exc
        if choice in excluded:
            raise MigrationError(
                f"no eligible target host for stage {stage_name!r} "
                f"(excluded: {sorted(excluded)})"
            )
        return choice

    def place(
        self, stage_name: str, target_host: Optional[str] = None
    ) -> Tuple[str, str]:
        """Swap ``stage_name``'s service instance onto a better host.

        Returns ``(old_host, new_host)``.  The old instance is destroyed
        only after the replacement is fully activated, so a failed move
        leaves the deployment record pointing at the still-running old
        instance.
        """
        old_host = self.deployment.host_of(stage_name)
        stage_cfg = self.deployment.config.stage(stage_name)
        if target_host is None:
            new_host = self.select_target(stage_name)
        else:
            host = self.deployer.registry.network.host(target_host)
            if host.failed:
                raise MigrationError(
                    f"cannot migrate {stage_name!r} onto failed host "
                    f"{target_host!r}"
                )
            new_host = target_host
        if new_host == old_host:
            raise MigrationError(
                f"stage {stage_name!r} is already on {old_host!r}"
            )
        try:
            factory = self.deployer.repository.fetch(stage_cfg.code_url)
        except Exception as exc:
            raise MigrationError(
                f"stage {stage_name!r}: code vanished from repository: {exc}"
            ) from exc
        container = self.deployer.container_for(new_host)
        instance = container.create_instance(
            f"{self.deployment.config.name}/{stage_name}",
            lifetime=self.deployer.service_lifetime,
        )
        try:
            instance.customize(factory, **stage_cfg.properties)
            instance.activate()
        except Exception as exc:
            instance.destroy()
            raise MigrationError(
                f"cannot migrate stage {stage_name!r}: replacement "
                f"activation failed: {exc}"
            ) from exc
        try:
            self.deployment.placements[stage_name].instance.destroy()
        except DeploymentError:
            pass
        self.deployment.placements[stage_name] = Placement(
            stage_name=stage_name, host_name=new_host, instance=instance
        )
        self.moves.append((stage_name, old_host, new_host))
        return old_host, new_host


@dataclass(frozen=True)
class MigrationPolicy:
    """Hysteresis bands for the drift-watching control loop.

    A stage is re-placed only after its host's occupancy stays above
    ``host_high`` — or a link touching its host decays below
    ``bandwidth_ratio`` of its start-time capacity — for
    ``breach_samples`` consecutive samples, and never again within
    ``cooldown`` simulated seconds of its previous move.  ``host_low``
    keeps the loop from ping-ponging: a host-occupancy move needs a
    destination below that band to be worth the pause.
    """

    interval: float = 0.5
    host_high: float = 0.85
    host_low: float = 0.5
    bandwidth_ratio: float = 0.5
    breach_samples: int = 3
    cooldown: float = 5.0

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ValueError(f"interval must be > 0, got {self.interval}")
        if not 0.0 < self.bandwidth_ratio < 1.0:
            raise ValueError(
                f"bandwidth_ratio must be in (0, 1), got {self.bandwidth_ratio}"
            )
        if not 0.0 < self.host_low <= self.host_high:
            raise ValueError(
                f"need 0 < host_low <= host_high, got "
                f"{self.host_low}/{self.host_high}"
            )
        if self.breach_samples < 1:
            raise ValueError(
                f"breach_samples must be >= 1, got {self.breach_samples}"
            )
        if self.cooldown < 0:
            raise ValueError(f"cooldown must be >= 0, got {self.cooldown}")


@dataclass
class _Decision:
    """One trigger the controller fired."""

    time: float
    stage: str
    reason: str
    target: Optional[str]


class MigrationController:
    """Watches fabric drift and triggers planned moves (simulated runtime).

    Runs as a simulation process next to the pipeline::

        controller = MigrationController(runtime, migrator, monitor=monitor)
        controller.start()
        result = runtime.run()

    Baseline link capacities are captured at :meth:`start`; host
    occupancy comes from the :class:`MonitoringService` samples (the
    same utilization signal the Matchmaker's ranking consumes).  Every
    firing increments ``migration.{stage}.triggers`` and is recorded in
    :attr:`decisions`; the actual move (and its queueing when one is
    already in flight) is :meth:`SimulatedRuntime.migrate_stage`'s job.
    """

    def __init__(
        self,
        runtime,
        migrator: Migrator,
        monitor: Optional[MonitoringService] = None,
        policy: Optional[MigrationPolicy] = None,
    ) -> None:
        self.runtime = runtime
        self.migrator = migrator
        self.monitor = monitor
        self.policy = policy if policy is not None else MigrationPolicy()
        self.decisions: List[_Decision] = []
        self._baseline: Dict[str, float] = {}
        self._breaches: Dict[Tuple[str, str], int] = {}
        self._last_move: Dict[str, float] = {}
        self._started = False

    def start(self) -> None:
        """Capture the capacity baseline and arm the watch process."""
        if self._started:
            return
        self._started = True
        env = self.runtime.env
        network = self.runtime.network
        for _src, _dst, link in network.edges():
            self._baseline[link.name] = link.bandwidth
        env.process(self._watch(), name="migration-controller")

    # -- the control loop --------------------------------------------------

    def _watch(self):
        env = self.runtime.env
        while True:
            yield env.timeout(self.policy.interval)
            if all(s.done for s in self.runtime._stages.values()):
                return
            self._evaluate()

    def _evaluate(self) -> None:
        now = self.runtime.env.now
        network = self.runtime.network
        drifted_hosts = set()
        for _src, _dst, link in network.edges():
            assumed = self._baseline.get(link.name)
            if not assumed:
                continue
            if link.bandwidth < self.policy.bandwidth_ratio * assumed:
                head, _, tail = link.name.partition("->")
                drifted_hosts.update((head, tail))
        snapshot = None
        if self.monitor is not None:
            try:
                snapshot = self.monitor.snapshot
            except RuntimeError:
                snapshot = None  # no sample yet
        for name, stage in list(self.runtime._stages.items()):
            if stage.done or stage.migrating:
                continue
            host_name = stage.host_name
            if self.runtime.network.host(host_name).failed:
                continue  # failover territory, not a planned move
            reason = None
            if host_name in drifted_hosts:
                reason = "link-drift"
            elif snapshot is not None:
                sample = snapshot.hosts.get(host_name)
                if sample is not None and sample.utilization > self.policy.host_high:
                    idlest = snapshot.idlest_host()
                    if (
                        idlest is not None
                        and idlest != host_name
                        and snapshot.hosts[idlest].utilization < self.policy.host_low
                    ):
                        reason = "host-occupancy"
            key = (name, reason or "")
            if reason is None:
                self._breaches.pop((name, "link-drift"), None)
                self._breaches.pop((name, "host-occupancy"), None)
                continue
            count = self._breaches.get(key, 0) + 1
            self._breaches[key] = count
            if count < self.policy.breach_samples:
                continue
            if now - self._last_move.get(name, -self.policy.cooldown) < self.policy.cooldown:
                continue
            self._breaches[key] = 0
            self._last_move[name] = now
            try:
                target = self.migrator.select_target(name)
            except MigrationError:
                continue  # nowhere better to go; keep watching
            self.runtime.metrics.counter(f"migration.{name}.triggers").inc()
            self.decisions.append(_Decision(now, name, reason, target))
            self.runtime.migrate_stage(
                name, migrator=self.migrator, target_host=target, trigger="drift"
            )


# -- docs consistency ------------------------------------------------------


def default_docs_path() -> Path:
    """``docs/migration.md`` relative to the repository root.

    Returns:
        The documented migration model's path in a source checkout.
    """
    return Path(__file__).resolve().parents[3] / "docs" / "migration.md"


#: A knobs-table row: ``| `field` | meaning |``.
_KNOB_ROW = re.compile(r"^\|\s*`(?P<knob>[a-z][a-z0-9_]*)`\s*\|")


def documented_knobs(path: Path) -> List[str]:
    """Parse the policy knobs documented in ``docs/migration.md``.

    Arguments:
        path: The document to parse.

    Returns:
        Every backticked first-column entry of its knobs table rows.
    """
    knobs = []
    for line in path.read_text(encoding="utf-8").splitlines():
        match = _KNOB_ROW.match(line.strip())
        if match:
            knobs.append(match.group("knob"))
    return knobs


def check_docs(path: Optional[Path] = None) -> List[str]:
    """Problems keeping ``docs/migration.md`` and the code apart.

    Arguments:
        path: Document to check (defaults to :func:`default_docs_path`).

    Returns:
        One problem string per drift — a knob in :data:`KNOBS` missing
        from the document, a documented knob the code no longer defines,
        or a ``migration.*`` metric template from the
        :data:`repro.obs.names.METRICS` catalog the page never mentions.
        Empty means in sync; the tier-1 test
        ``tests/resilience/test_migration_docs.py`` asserts exactly that.
    """
    from repro.obs.names import METRICS

    path = path if path is not None else default_docs_path()
    if not path.exists():
        return [f"docs file missing: {path}"]
    text = path.read_text(encoding="utf-8")
    documented = set(documented_knobs(path))
    problems = []
    for knob in sorted(KNOBS):
        if knob not in documented:
            problems.append(
                f"migration knob {knob!r} is not documented in {path.name}"
            )
    for knob in sorted(documented):
        if knob not in KNOBS:
            problems.append(
                f"{path.name} documents {knob!r}, which is not a migration "
                "knob (repro.resilience.migration.KNOBS)"
            )
    for spec in METRICS:
        if spec.template.startswith("migration.") and spec.template not in text:
            problems.append(
                f"{path.name} does not mention the metric template "
                f"{spec.template!r}"
            )
    return problems
