"""Data-plane fault tolerance: checkpoints, replay, failover, quarantine.

GATES is pitched as middleware that runs "24 hours a day, 7 days a week"
(Section 1).  The grid substrate already injects crash-stop faults
(:mod:`repro.grid.faults`) and detects them (:mod:`repro.grid.heartbeat`);
this package supplies the *data-plane* half of the story:

* :mod:`repro.resilience.policy` — :class:`ResilienceConfig` (checkpoint
  cadence, replay-buffer bound, ``error_policy``, retry/backoff knobs)
  and the per-run :class:`DeadLetterQueue` of quarantined poison items;
* :mod:`repro.resilience.checkpoint` — :class:`StageCheckpoint` capturing
  a stage's processor state, adjustment-parameter values, and adaptation
  state, plus in-memory and JSONL stores;
* :mod:`repro.resilience.replay` — bounded per-channel buffers of
  delivered-but-unacknowledged input giving at-least-once redelivery;
* :mod:`repro.resilience.failover` — :class:`FailoverCoordinator` wiring
  a :class:`~repro.grid.heartbeat.HeartbeatDetector` suspicion through
  the :class:`~repro.grid.faults.Redeployer` into a *running*
  :class:`~repro.core.runtime_sim.SimulatedRuntime`;
* :mod:`repro.resilience.migration` — planned, non-destructive live
  moves of *healthy* stages (:class:`Migrator`,
  :class:`MigrationController` drift-watch control loop), documented in
  ``docs/migration.md``;
* :mod:`repro.resilience.demo` — the chaos demo behind ``repro chaos``.

Delivery semantics and the failure model are documented in
``docs/fault_tolerance.md``.
"""

from __future__ import annotations

from repro.resilience.checkpoint import (
    CheckpointStore,
    JsonlCheckpointStore,
    MemoryCheckpointStore,
    StageCheckpoint,
)
from repro.resilience.migration import (
    MigrationController,
    MigrationError,
    MigrationPlan,
    MigrationPolicy,
    MigrationReport,
    Migrator,
)
from repro.resilience.policy import DeadLetter, DeadLetterQueue, ResilienceConfig
from repro.resilience.replay import ReplayBuffers

__all__ = [
    "CheckpointStore",
    "DeadLetter",
    "DeadLetterQueue",
    "FailoverCoordinator",
    "JsonlCheckpointStore",
    "MemoryCheckpointStore",
    "MigrationController",
    "MigrationError",
    "MigrationPlan",
    "MigrationPolicy",
    "MigrationReport",
    "Migrator",
    "ReplayBuffers",
    "ResilienceConfig",
    "StageCheckpoint",
]


def __getattr__(name: str):
    # FailoverCoordinator lives behind a lazy import: failover.py imports
    # the simulated runtime, which imports this package for the config
    # types — eager re-export would create a cycle.
    if name == "FailoverCoordinator":
        from repro.resilience.failover import FailoverCoordinator

        return FailoverCoordinator
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
