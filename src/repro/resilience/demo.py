"""The chaos demo behind ``repro chaos``.

A two-stage pipeline (``work`` on an edge host, ``sink`` on the central
host, a spare host standing by) run under injected faults: a mid-run
crash of the edge host with heartbeat-driven live failover to the spare,
optionally lossy links (exercising transmission retries) and poison
items (exercising the error policy).  It is deliberately the smallest
scenario that shows every fault-tolerance mechanism at once, and the
summary it returns reconciles the books: every item fed is either in the
sink, a counted duplicate, or a counted quarantine.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.core.api import StageContext, StreamProcessor
from repro.core.results import RunResult
from repro.resilience.policy import ResilienceConfig

__all__ = ["run_chaos_demo", "run_migrate_demo"]


class _ChaosWork(StreamProcessor):
    """Doubles each payload; raises on poison markers; checkpointable."""

    def __init__(self, poison_every: Optional[int] = None) -> None:
        from repro.simnet.hosts import CpuCostModel

        self.cost_model = CpuCostModel(per_item=0.01)
        self.poison_every = poison_every
        self.count = 0

    def on_item(self, payload: Any, context: StageContext) -> None:
        if (
            self.poison_every is not None
            and payload % self.poison_every == 0
            and payload > 0
        ):
            raise ValueError(f"poison payload {payload}")
        self.count += 1
        context.emit(payload * 2, size=8.0)

    def snapshot(self) -> Any:
        return {"count": self.count}

    def restore(self, state: Any) -> None:
        self.count = int(state["count"])

    def result(self) -> Any:
        return self.count


class _ChaosSink(StreamProcessor):
    """Collects everything; checkpointable so replay keeps it honest."""

    def __init__(self) -> None:
        self.items: list = []

    def on_item(self, payload: Any, context: StageContext) -> None:
        self.items.append(payload)

    def snapshot(self) -> Any:
        return {"items": list(self.items)}

    def restore(self, state: Any) -> None:
        self.items = list(state["items"])

    def result(self) -> Any:
        return list(self.items)


def run_chaos_demo(
    items: int = 500,
    fail_at: Optional[float] = 1.0,
    checkpoint_interval: float = 0.5,
    loss: float = 0.0,
    policy: str = "dead-letter",
    poison_every: Optional[int] = None,
    rate: float = 100.0,
) -> Tuple[RunResult, Dict[str, Any]]:
    """Run the chaos pipeline; returns ``(result, summary)``.

    Parameters
    ----------
    items:
        Integers fed to the ``work`` stage.
    fail_at:
        Simulated second at which the edge host crash-stops (``None``
        disables the crash; the spare then just idles).
    checkpoint_interval:
        Simulated seconds between stage checkpoints.
    loss:
        Transmission-failure probability per link send (0 disables).
    policy:
        Error policy (``fail`` / ``skip`` / ``dead-letter``) for poison
        items and exhausted transmission retries.
    poison_every:
        Every payload divisible by this (and > 0) makes ``work`` raise.
    rate:
        Source rate in items per simulated second.
    """
    from repro.core.runtime_sim import SimulatedRuntime, SourceBinding
    from repro.grid.config import AppConfig, StageConfig, StreamConfig
    from repro.grid.deployer import Deployer
    from repro.grid.faults import FaultInjector, FaultPlan, Redeployer
    from repro.grid.heartbeat import HeartbeatDetector
    from repro.grid.registry import ServiceRegistry
    from repro.grid.repository import CodeRepository
    from repro.grid.resources import ResourceRequirement
    from repro.resilience.failover import FailoverCoordinator
    from repro.simnet.engine import Environment
    from repro.simnet.topology import Network

    env = Environment()
    net = Network(env)
    for name in ("edge", "spare", "central"):
        net.create_host(name, cores=2)
    net.connect("edge", "central", bandwidth=10_000.0, latency=0.01)
    net.connect("spare", "central", bandwidth=10_000.0, latency=0.01)
    if loss > 0:
        for a, b in (("edge", "central"), ("spare", "central")):
            net.link(a, b).set_loss(loss, seed=7)

    registry = ServiceRegistry()
    registry.register_network(net)
    repo = CodeRepository()
    repo.publish("repo://chaos/work", lambda: _ChaosWork(poison_every))
    repo.publish("repo://chaos/sink", _ChaosSink)
    config = AppConfig(
        name="chaos",
        stages=[
            StageConfig("work", "repo://chaos/work",
                        requirement=ResourceRequirement(placement_hint="edge")),
            StageConfig("sink", "repo://chaos/sink",
                        requirement=ResourceRequirement(placement_hint="central")),
        ],
        streams=[StreamConfig("doubled", "work", "sink")],
    )
    deployer = Deployer(registry, repo)
    deployment = deployer.deploy(config)

    resilience = ResilienceConfig(
        checkpoint_interval=checkpoint_interval,
        error_policy=policy,
        max_retries=5,
    )
    runtime = SimulatedRuntime(
        env, net, deployment, adaptation_enabled=False, resilience=resilience
    )
    runtime.bind_source(
        SourceBinding("feed", "work", payloads=list(range(items)), rate=rate)
    )

    coordinator = None
    if fail_at is not None:
        FaultInjector(env, net).schedule(FaultPlan("edge", fail_at=fail_at))
        detector = HeartbeatDetector(env, net, interval=0.2, timeout=0.6)
        coordinator = FailoverCoordinator(runtime, detector, Redeployer(deployer))
        coordinator.arm()
        detector.start()

    result = runtime.run()

    metrics = result.metrics
    sink_items = result.final_value("sink")
    latency_hist = (
        metrics.get("recovery.work.latency")
        if "recovery.work.latency" in metrics
        else None
    )
    quarantined = sum(
        metrics.value(f"fault.{stage}.quarantined", default=0.0)
        for stage in ("work", "sink")
    )
    retries = sum(
        metrics.value(f"fault.{stage}.retries", default=0.0)
        for stage in ("work", "sink")
    )
    summary: Dict[str, Any] = {
        "items_fed": items,
        "sink_items": len(sink_items),
        "unique_items": len(set(sink_items)),
        "work_host": result.stage("work").host_name,
        "failovers": metrics.value("fault.work.failovers", default=0.0),
        "checkpoints": sum(
            metrics.value(f"recovery.{stage}.checkpoints", default=0.0)
            for stage in ("work", "sink")
        ),
        "replayed": metrics.value("recovery.work.items_replayed", default=0.0),
        "duplicates": metrics.value("recovery.work.duplicates", default=0.0),
        "replay_dropped": metrics.value("recovery.work.replay_dropped", default=0.0),
        "quarantined": quarantined,
        "retries": retries,
        "dead_letters": (
            len(runtime.dead_letters) if runtime.dead_letters is not None else 0
        ),
        "recovery_latency": (
            max(latency_hist.samples) if latency_hist is not None else None
        ),
        "recoveries": list(coordinator.recoveries) if coordinator is not None else [],
    }
    return result, summary


def run_migrate_demo(
    items: int = 500,
    drift_at: float = 1.0,
    drift_duration: float = 0.5,
    drift_factor: float = 0.2,
    checkpoint_interval: float = 0.5,
    rate: float = 100.0,
) -> Tuple[RunResult, Dict[str, Any]]:
    """Run the live-migration scenario; returns ``(result, summary)``.

    The same three-host chaos topology, but nothing crashes: instead
    the edge host *slows down* (competing load), ramping its speed down
    to ``drift_factor`` × nominal between ``drift_at`` and ``drift_at +
    drift_duration``.  A :class:`~repro.resilience.migration.MigrationController`
    watches the :class:`~repro.grid.monitor.MonitoringService` occupancy
    signal and re-places the ``work`` stage — a planned, loss-free move
    with a bounded pause, not a failover (see docs/migration.md).
    """
    from repro.core.runtime_sim import SimulatedRuntime, SourceBinding
    from repro.grid.config import AppConfig, StageConfig, StreamConfig
    from repro.grid.deployer import Deployer
    from repro.grid.faults import DriftPlan, FaultInjector
    from repro.grid.monitor import MonitoringService
    from repro.grid.registry import ServiceRegistry
    from repro.grid.repository import CodeRepository
    from repro.grid.resources import ResourceRequirement
    from repro.resilience.migration import MigrationController, Migrator
    from repro.simnet.engine import Environment
    from repro.simnet.hosts import CpuCostModel
    from repro.simnet.topology import Network

    env = Environment()
    net = Network(env)
    for name in ("edge", "spare", "central"):
        # Single-core hosts so one saturated stage reads as ~1.0
        # occupancy (utilization is busy core-seconds over capacity).
        net.create_host(name, cores=1)
    net.connect("edge", "central", bandwidth=10_000.0, latency=0.01)
    net.connect("spare", "central", bandwidth=10_000.0, latency=0.01)

    def _work() -> _ChaosWork:
        work = _ChaosWork(None)
        # Light enough that the edge host idles below the occupancy
        # band at nominal speed and saturates once slowed down.
        work.cost_model = CpuCostModel(per_item=0.005)
        return work

    registry = ServiceRegistry()
    registry.register_network(net)
    repo = CodeRepository()
    repo.publish("repo://chaos/work", _work)
    repo.publish("repo://chaos/sink", _ChaosSink)
    config = AppConfig(
        name="migrate",
        stages=[
            StageConfig("work", "repo://chaos/work",
                        requirement=ResourceRequirement(placement_hint="edge")),
            StageConfig("sink", "repo://chaos/sink",
                        requirement=ResourceRequirement(placement_hint="central")),
        ],
        streams=[StreamConfig("doubled", "work", "sink")],
    )
    deployer = Deployer(registry, repo)
    deployment = deployer.deploy(config)

    runtime = SimulatedRuntime(
        env, net, deployment, adaptation_enabled=False,
        resilience=ResilienceConfig(checkpoint_interval=checkpoint_interval),
    )
    runtime.bind_source(
        SourceBinding("feed", "work", payloads=list(range(items)), rate=rate)
    )

    FaultInjector(env, net).schedule_drift(DriftPlan(
        kind="host-slowdown", target="edge", start_at=drift_at,
        duration=drift_duration, factor=drift_factor,
    ))
    monitor = MonitoringService(env, net, interval=0.25,
                                registry=runtime.metrics)
    monitor.start()
    controller = MigrationController(
        runtime, Migrator(deployer, deployment), monitor=monitor
    )
    controller.start()

    result = runtime.run()

    metrics = result.metrics
    sink_items = result.final_value("sink")
    pause_hist = (
        metrics.get("migration.work.pause_seconds")
        if "migration.work.pause_seconds" in metrics
        else None
    )
    summary: Dict[str, Any] = {
        "items_fed": items,
        "sink_items": len(sink_items),
        "unique_items": len(set(sink_items)),
        "work_host": result.stage("work").host_name,
        "moves": [
            (r.stage, r.from_host, r.to_host) for r in runtime.migrations
        ],
        "triggers": metrics.value("migration.work.triggers", default=0.0),
        "replayed": metrics.value("migration.work.items_replayed", default=0.0),
        "duplicates": metrics.value("migration.work.duplicates", default=0.0),
        "max_pause": max(pause_hist.samples) if pause_hist is not None else None,
        "decisions": [
            (d.time, d.stage, d.reason, d.target)
            for d in controller.decisions
        ],
    }
    return result, summary
