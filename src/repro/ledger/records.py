"""Typed, CRC'd, hash-chained run-ledger records.

A run ledger is a JSON-lines file.  Each line is one :class:`Record`
serialized flat, carrying two integrity fields computed over the
canonical JSON of everything else:

* ``crc`` — CRC-32 of the record body (detects bit rot in place);
* ``h`` — SHA-256 of ``previous h + body`` (chains every record to its
  predecessor, so truncation, reordering, or tampering breaks the chain
  from that point on).

The record *types* are the catalog below; ``docs/replay.md`` documents
exactly these types and the docs-consistency check
(:mod:`repro.ledger.docscheck`, run as a tier-1 test) fails when either
side drifts.  Sequence numbers come in two flavours: ``seq`` is the
position in the containing file, ``sseq`` is the per-stage sequence
number (the paper-facing ordering used for first-divergence reports).
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field
from hashlib import sha256
from typing import Any, Dict, List, Tuple

__all__ = [
    "GENESIS",
    "RECORD_TYPES",
    "Record",
    "RecordError",
    "RecordTypeInfo",
    "body_json",
    "chain_digest",
    "decode_line",
    "encode_line",
    "sort_key",
    "type_info",
]

#: Schema tag written into META records and used as the chain seed.
SCHEMA = "repro-ledger/1"

#: Chain seed: the digest "before" the first record.
GENESIS = sha256(SCHEMA.encode("utf-8")).hexdigest()


class RecordError(Exception):
    """Raised for malformed, corrupt, or mis-chained ledger records."""


@dataclass(frozen=True)
class RecordTypeInfo:
    """One catalog entry: a record type and its meaning."""

    name: str
    #: Merge rank: records sort by (rank, stage, key, idx, sseq) when
    #: per-stage sidecar files are merged into one run ledger.
    rank: int
    #: One-line description (mirrored in docs/replay.md).
    description: str


#: The record-type catalog (pinned by docs/replay.md).
RECORD_TYPES: Tuple[RecordTypeInfo, ...] = (
    RecordTypeInfo("META", 0,
                   "Run header: application config XML, source bindings, "
                   "schema version."),
    RecordTypeInfo("INGRESS", 1,
                   "One source item: source name, ingress sequence number "
                   "(the item's stable key), payload."),
    RecordTypeInfo("ADJUST", 2,
                   "Section-4 adaptation decision: a parameter value "
                   "change suggested by the middleware."),
    RecordTypeInfo("SCALE", 3,
                   "Autoscaler decision: a shard group's active replica "
                   "count changed."),
    RecordTypeInfo("MIGRATE", 4,
                   "Migration trigger: a stage was re-placed (planned or "
                   "degraded to failover)."),
    RecordTypeInfo("FAILOVER", 5,
                   "Recovery event: a stage was restored from checkpoint "
                   "after its host failed."),
    RecordTypeInfo("REBALANCE", 6,
                   "Partition rebalance: keyed state moved between shard "
                   "replicas."),
    RecordTypeInfo("CLOCK", 7,
                   "Recorded wall-clock read made by stage code through "
                   "the DeterministicContext."),
    RecordTypeInfo("RNG", 7,
                   "Recorded random draw made by stage code through the "
                   "DeterministicContext."),
    RecordTypeInfo("PARAM", 7,
                   "Recorded getSuggestedValue() read: the parameter value "
                   "the stage observed for one item."),
    RecordTypeInfo("SINK", 8,
                   "One committed sink effect: item key and the effect "
                   "value (duplicates deduplicated away never appear)."),
    RecordTypeInfo("STATE", 9,
                   "Final stage state at flush (the replay_state()/"
                   "snapshot() of the processor)."),
    RecordTypeInfo("END", 10,
                   "Chain seal: record counts plus the sink-output and "
                   "final-state digests replay must reproduce."),
)

_BY_NAME: Dict[str, RecordTypeInfo] = {info.name: info for info in RECORD_TYPES}

#: Read-kinds served by the DeterministicContext per (stage, key, idx).
READ_TYPES = ("CLOCK", "RNG", "PARAM")


def type_info(name: str) -> RecordTypeInfo:
    """The catalog entry for ``name``; raises :class:`RecordError` if unknown."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise RecordError(f"unknown ledger record type {name!r}") from None


@dataclass(frozen=True)
class Record:
    """One ledger record (see :data:`RECORD_TYPES` for the catalog)."""

    type: str
    #: Position in the containing ledger file (assigned by the writer).
    seq: int
    #: Per-stage sequence number ("" stages share the run-level counter).
    sseq: int
    #: Owning stage (base name, without any ``#i`` shard suffix); ""
    #: for run-level records (META, INGRESS, END).
    stage: str = ""
    #: Item key (the ingress sequence number as a string); "" when the
    #: record is not tied to one item.
    key: str = ""
    #: Occurrence index among same (type, stage, key) reads.
    idx: int = 0
    #: Type-specific payload (JSON-representable).
    data: Dict[str, Any] = field(default_factory=dict)

    def body(self) -> Dict[str, Any]:
        """The integrity-covered fields, in canonical order."""
        return {
            "type": self.type,
            "seq": self.seq,
            "sseq": self.sseq,
            "stage": self.stage,
            "key": self.key,
            "idx": self.idx,
            "data": self.data,
        }


def body_json(record: Record) -> str:
    """Canonical JSON of the record body (what crc/h are computed over)."""
    return json.dumps(record.body(), sort_keys=True, separators=(",", ":"))


def chain_digest(prev: str, body: str) -> str:
    """The chained digest of one record given its predecessor's."""
    return sha256((prev + body).encode("utf-8")).hexdigest()


def encode_line(record: Record, prev: str) -> Tuple[str, str]:
    """Serialize one record; returns ``(line, digest)``.

    ``prev`` is the previous record's chained digest (:data:`GENESIS`
    for the first record).
    """
    type_info(record.type)  # reject unknown types at write time
    body = body_json(record)
    crc = zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF
    digest = chain_digest(prev, body)
    envelope = dict(record.body())
    envelope["crc"] = crc
    envelope["h"] = digest
    return json.dumps(envelope, sort_keys=True, separators=(",", ":")), digest


def decode_line(line: str, prev: str) -> Tuple[Record, str]:
    """Parse and verify one ledger line; returns ``(record, digest)``.

    Verifies the CRC against the body and the chained digest against
    ``prev``; raises :class:`RecordError` on any mismatch.
    """
    try:
        envelope = json.loads(line)
    except json.JSONDecodeError as exc:
        raise RecordError(f"malformed ledger line: {exc}") from exc
    if not isinstance(envelope, dict):
        raise RecordError("ledger line is not a JSON object")
    try:
        record = Record(
            type=str(envelope["type"]),
            seq=int(envelope["seq"]),
            sseq=int(envelope["sseq"]),
            stage=str(envelope.get("stage", "")),
            key=str(envelope.get("key", "")),
            idx=int(envelope.get("idx", 0)),
            data=dict(envelope.get("data", {})),
        )
        crc = int(envelope["crc"])
        digest = str(envelope["h"])
    except (KeyError, TypeError, ValueError) as exc:
        raise RecordError(f"ledger line missing required fields: {exc}") from exc
    type_info(record.type)
    body = body_json(record)
    if zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF != crc:
        raise RecordError(
            f"CRC mismatch on record seq={record.seq} ({record.type}); "
            "the record was altered in place"
        )
    expected = chain_digest(prev, body)
    if digest != expected:
        raise RecordError(
            f"hash-chain break at record seq={record.seq} ({record.type}); "
            "a predecessor was dropped, reordered, or tampered with"
        )
    return record, digest


def _key_num(key: str) -> Tuple[int, str]:
    """Numeric-first ordering for item keys ("10" after "9")."""
    try:
        return (int(key), "")
    except ValueError:
        return (1 << 62, key)


def sort_key(record: Record) -> Tuple[Any, ...]:
    """Deterministic merge order for records from per-stage sidecars."""
    return (
        type_info(record.type).rank,
        record.stage,
        _key_num(record.key),
        record.idx,
        record.sseq,
        record.type,
    )


def merge_order(records: List[Record]) -> List[Record]:
    """The canonical order of a merged run ledger."""
    return sorted(records, key=sort_key)
