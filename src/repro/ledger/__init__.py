"""repro.ledger: deterministic record/replay with exactly-once sinks.

The run ledger is an append-only, hash-chained log of everything a run
did that a re-execution could not derive on its own: every ingress
item, every Section-4 adaptation decision (parameter adjustments,
autoscaler transitions, migrations, failovers, rebalances), and every
nondeterministic read stage code made (wall clock, RNG, suggested
parameter values).  Recording is property-driven (``ledger-mode`` /
``ledger-dir`` on each stage), so all three runtimes — simulated,
threaded, and networked with out-of-process workers — write the same
sidecar files, which :func:`~repro.ledger.ledger.merge_ledgers` folds
into one canonically ordered, digest-sealed ``run.ledger``.

Layers:

* :mod:`repro.ledger.records` — typed, CRC'd, hash-chained records;
* :mod:`repro.ledger.ledger` — writer / verifying reader / merge;
* :mod:`repro.ledger.context` — the :class:`DeterministicContext`
  behind every ``StageContext.det``;
* :mod:`repro.ledger.sinks` — the :class:`SinkTxn` idempotent-sink
  protocol upgrading at-least-once delivery to exactly-once effects;
* :mod:`repro.ledger.harness` — record on any runtime, replay on any
  runtime, compare digests (``repro replay`` CLI).

See ``docs/replay.md`` for the record format and determinism contract.
"""

from .context import (
    DeterministicContext,
    MODE_OFF,
    MODE_RECORD,
    MODE_REPLAY,
    base_stage_name,
    deterministic_context_for,
    reset_registry,
)
from .harness import (
    RUNTIMES,
    RecordResult,
    ReplayReport,
    ReplaySpec,
    record,
    replay,
)
from .ledger import LedgerError, LedgerReader, LedgerWriter, merge_ledgers
from .records import GENESIS, RECORD_TYPES, Record, RecordError
from .sinks import SinkTxn, TxnCollectStage
from .stages import DetRelayStage, key_of, value_of, wrap

__all__ = [
    "DetRelayStage",
    "DeterministicContext",
    "GENESIS",
    "LedgerError",
    "LedgerReader",
    "LedgerWriter",
    "MODE_OFF",
    "MODE_RECORD",
    "MODE_REPLAY",
    "RECORD_TYPES",
    "RUNTIMES",
    "Record",
    "RecordError",
    "RecordResult",
    "ReplayReport",
    "ReplaySpec",
    "SinkTxn",
    "TxnCollectStage",
    "base_stage_name",
    "deterministic_context_for",
    "key_of",
    "merge_ledgers",
    "record",
    "replay",
    "reset_registry",
    "value_of",
    "wrap",
]
