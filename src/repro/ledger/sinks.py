"""Idempotent sinks: the exactly-once *effects* layer.

Delivery below a sink stays at-least-once (failover replay and
migration handoff both re-deliver items, counted in
``recovery.*.duplicates``).  A sink implementing :class:`SinkTxn`
absorbs those duplicates: each item carries a stable key (its ledger
ingress sequence number, travelling in the item envelope — see
:mod:`repro.ledger.stages`), and the sink runs a two-phase
begin/commit per key against a dedup window that is part of the
processor snapshot, so it survives checkpoints, failover restores, and
migration handoffs.  The observable *effect* of each key therefore
happens exactly once, which is what the replay harness's digest
comparison proves.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..core.api import StageContext, StreamProcessor
from .stages import key_of, value_of

__all__ = ["SinkTxn", "TxnCollectStage"]

#: Stage property that waives the GA240 idempotency requirement.
AT_LEAST_ONCE_OK = "at-least-once-ok"


class SinkTxn:
    """Mixin protocol for idempotent sink stages.

    A sink implements two-phase effect application:

    * :meth:`txn_begin` — called with the item's stable key before any
      effect; returns False when the key is already in the dedup window
      (a redelivered duplicate), in which case the sink must skip the
      effect entirely;
    * :meth:`txn_commit` — called after the effect was applied; adds
      the key to the dedup window and records the effect in the run
      ledger (``SINK`` record) when recording is on.

    The GA240 verifier pass requires every sink in a ``ledger-enabled``
    pipeline to subclass this (or define both methods), unless the
    stage explicitly opts out with the ``at-least-once-ok`` property.
    """

    #: Keys whose effect has been committed (the dedup window).
    _txn_window: Dict[str, bool]

    def txn_begin(self, key: Any) -> bool:
        """True if ``key`` is new (apply the effect), False if duplicate."""
        window = self.__dict__.setdefault("_txn_window", {})
        return str(key) not in window

    def txn_commit(self, key: Any, effect: Any, context: Optional[StageContext] = None) -> None:
        """Mark ``key`` committed and ledger its effect."""
        window = self.__dict__.setdefault("_txn_window", {})
        window[str(key)] = True
        if context is not None:
            context.det.sink_effect(key, effect)

    def txn_window_snapshot(self) -> List[str]:
        """The dedup window as checkpointable data."""
        return sorted(self.__dict__.get("_txn_window", {}))

    def txn_window_restore(self, keys: Any) -> None:
        """Rebuild the dedup window from a checkpoint."""
        self.__dict__["_txn_window"] = {str(k): True for k in (keys or [])}


class TxnCollectStage(StreamProcessor, SinkTxn):
    """Collecting sink with exactly-once effects.

    Expects enveloped items (``{"lk": key, "lv": value}``); applies each
    key's effect — storing the value — at most once.  Redelivered
    duplicates are counted in :attr:`duplicates` but leave the effect
    map untouched, so the effect count after any amount of failover,
    migration, or autoscaling matches a fault-free run exactly.
    """

    def __init__(self) -> None:
        self.effects: Dict[str, Any] = {}
        self.duplicates = 0

    def on_item(self, payload: Any, context: StageContext) -> None:
        """Apply the item's effect unless its key was already committed."""
        key = key_of(payload)
        value = value_of(payload)
        context.det.begin(key)
        if not self.txn_begin(key):
            self.duplicates += 1
            return
        self.effects[str(key)] = value
        self.txn_commit(key, value, context)

    def result(self) -> Any:
        """Effects in canonical (numeric key) order, plus duplicate count."""
        return {
            "effects": [[k, self.effects[k]] for k in self._ordered_keys()],
            "duplicates": self.duplicates,
        }

    def _ordered_keys(self) -> List[str]:
        def num(k: str) -> Any:
            try:
                return (0, int(k), "")
            except ValueError:
                return (1, 0, k)

        return sorted(self.effects, key=num)

    def snapshot(self) -> Any:
        """Effects + dedup window + duplicate count (checkpoint payload)."""
        return {
            "effects": [[k, self.effects[k]] for k in self._ordered_keys()],
            "window": self.txn_window_snapshot(),
            "duplicates": self.duplicates,
        }

    def restore(self, state: Any) -> None:
        """Rebuild effects and the dedup window from a checkpoint."""
        if not isinstance(state, dict):
            return
        self.effects = {str(k): v for k, v in state.get("effects", [])}
        self.txn_window_restore(state.get("window"))
        self.duplicates = int(state.get("duplicates", 0))

    def replay_state(self) -> Any:
        """Order-insensitive final state for the ledger STATE record.

        Excludes :attr:`duplicates` — the duplicate count depends on the
        faults a particular run experienced, not on the computation, so
        it must not perturb the state digest.
        """
        return [[k, self.effects[k]] for k in self._ordered_keys()]
