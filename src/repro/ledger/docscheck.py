"""Docs-consistency check: the record-type catalog and docs must agree.

``docs/replay.md`` documents every ledger record type in a markdown
table whose first column is the backticked type name and whose second
column is the merge rank.  :func:`check_docs` diffs that table against
the authoritative catalog (:data:`repro.ledger.records.RECORD_TYPES`)
in both directions — a type added without a docs row, a docs row for a
removed type, or a rank mismatch each produce one problem string.  The
tier-1 test ``tests/ledger/test_docs.py`` asserts the list is empty, so
the record-format reference cannot drift.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, List, Optional

from repro.ledger.records import RECORD_TYPES

__all__ = ["check_docs", "default_docs_path", "documented_types"]

#: A record-type table row: ``| `TYPE` | rank | ...``.
_ROW = re.compile(r"^\|\s*`(?P<name>[A-Z]+)`\s*\|\s*(?P<rank>\d+)\s*\|")


def default_docs_path() -> Path:
    """``docs/replay.md`` relative to the repository root."""
    return Path(__file__).resolve().parents[3] / "docs" / "replay.md"


def documented_types(path: Path) -> Dict[str, int]:
    """Parse ``{type: rank}`` from the docs' record-type table rows."""
    documented: Dict[str, int] = {}
    for line in path.read_text(encoding="utf-8").splitlines():
        match = _ROW.match(line.strip())
        if match:
            documented[match.group("name")] = int(match.group("rank"))
    return documented


def check_docs(path: Optional[Path] = None) -> List[str]:
    """Problems keeping the docs and the catalog apart (empty = in sync)."""
    path = path if path is not None else default_docs_path()
    if not path.exists():
        return [f"docs file missing: {path}"]
    documented = documented_types(path)
    cataloged: Dict[str, int] = {info.name: info.rank for info in RECORD_TYPES}
    problems: List[str] = []
    for name, rank in cataloged.items():
        if name not in documented:
            problems.append(
                f"cataloged record type {name!r} is not documented in {path.name}"
            )
        elif documented[name] != rank:
            problems.append(
                f"{name!r}: catalog says rank {rank}, docs say "
                f"{documented[name]}"
            )
    for name in sorted(documented):
        if name not in cataloged:
            problems.append(
                f"{path.name} documents record type {name!r}, which is not "
                "in the catalog (repro.ledger.records.RECORD_TYPES)"
            )
    return problems
