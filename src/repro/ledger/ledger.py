"""Append-only ledger files: writer, verifying reader, sidecar merge.

A run produces one sidecar ledger per stage (plus one for the run-level
records the harness emits).  ``merge_ledgers`` folds the sidecars into a
single ``run.ledger`` in the canonical record order, re-sequencing and
re-chaining so the merged file carries one unbroken hash chain that any
verifier can walk.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Optional

from .records import (
    GENESIS,
    Record,
    RecordError,
    decode_line,
    encode_line,
    merge_order,
)

__all__ = ["LedgerError", "LedgerReader", "LedgerWriter", "merge_ledgers"]


class LedgerError(RecordError):
    """Raised when a ledger file cannot be read, verified, or extended."""


class LedgerWriter:
    """Appends hash-chained records to one ledger file.

    Opening an existing file resumes the chain from its last record (the
    whole file is re-verified first), so a stage re-incarnated after a
    failover or a cross-host migration keeps extending the same chain.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._seq = 0
        self._head = GENESIS
        self._sseq: Dict[str, int] = {}
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        if os.path.exists(path) and os.path.getsize(path) > 0:
            for record in self._resume():
                self._seq = record.seq + 1
                if record.stage:
                    self._sseq[record.stage] = max(
                        self._sseq.get(record.stage, 0), record.sseq + 1
                    )
        self._fh = open(path, "a", encoding="utf-8")

    def _resume(self) -> Iterable[Record]:
        reader = LedgerReader(self.path)
        records = reader.read()
        self._head = reader.head
        return records

    @property
    def head(self) -> str:
        """The chained digest of the last record written (GENESIS if none)."""
        return self._head

    @property
    def count(self) -> int:
        """Number of records in the file."""
        return self._seq

    def next_sseq(self, stage: str) -> int:
        """Allocate the next per-stage sequence number for ``stage``."""
        value = self._sseq.get(stage, 0)
        self._sseq[stage] = value + 1
        return value

    def append(
        self,
        type: str,
        *,
        stage: str = "",
        key: str = "",
        idx: int = 0,
        data: Optional[dict] = None,
        sseq: Optional[int] = None,
    ) -> Record:
        """Append one record, assigning file and per-stage sequence numbers."""
        if sseq is None:
            sseq = self.next_sseq(stage) if stage else self._seq
        record = Record(
            type=type,
            seq=self._seq,
            sseq=sseq,
            stage=stage,
            key=key,
            idx=idx,
            data=dict(data or {}),
        )
        line, digest = encode_line(record, self._head)
        self._fh.write(line + "\n")
        self._fh.flush()
        self._head = digest
        self._seq += 1
        return record

    def close(self) -> None:
        """Flush and close the underlying file."""
        try:
            self._fh.flush()
        finally:
            self._fh.close()


class LedgerReader:
    """Reads a ledger file, verifying CRCs and the hash chain as it goes."""

    def __init__(self, path: str) -> None:
        self.path = path
        self.head = GENESIS

    def read(self) -> List[Record]:
        """All records, in file order; raises :class:`LedgerError` on damage."""
        records: List[Record] = []
        prev = GENESIS
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                for lineno, line in enumerate(fh, start=1):
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record, prev = decode_line(line, prev)
                    except RecordError as exc:
                        raise LedgerError(
                            f"{self.path}:{lineno}: {exc}"
                        ) from exc
                    records.append(record)
        except OSError as exc:
            raise LedgerError(f"cannot read ledger {self.path}: {exc}") from exc
        self.head = prev
        return records


def merge_ledgers(sidecar_paths: Iterable[str], out_path: str) -> List[Record]:
    """Merge per-stage sidecar ledgers into one canonical run ledger.

    Records are re-ordered by :func:`repro.ledger.records.sort_key` and
    re-chained from genesis so the merged file verifies end to end.
    Returns the merged records (with their new sequence numbers).
    """
    collected: List[Record] = []
    for path in sidecar_paths:
        if not os.path.exists(path):
            continue
        collected.extend(LedgerReader(path).read())
    ordered = merge_order(collected)
    if os.path.exists(out_path + ".tmp"):
        os.remove(out_path + ".tmp")
    writer = LedgerWriter(out_path + ".tmp")
    try:
        merged: List[Record] = []
        for record in ordered:
            merged.append(
                writer.append(
                    record.type,
                    stage=record.stage,
                    key=record.key,
                    idx=record.idx,
                    data=record.data,
                    sseq=record.sseq,
                )
            )
    finally:
        writer.close()
    os.replace(out_path + ".tmp", out_path)
    return merged
