"""DeterministicContext: the single gateway for nondeterminism in stages.

Stage code that wants to be replayable routes every wall-clock read,
random draw, and ``get_suggested_value`` read through the lazy ``det``
attribute of its :class:`~repro.core.api.StageContext`.  The context has
three modes, selected entirely by stage *properties* so all three
runtimes (including out-of-process networked workers) construct it the
same way:

``off`` (default)
    Pure passthrough — no ledger, no overhead beyond one attribute hop.

``record`` (``ledger-mode: record`` + ``ledger-dir``)
    Every read is assigned a ``(kind, item-key, idx)`` coordinate and
    appended to the stage's sidecar ledger.  Reads are *idempotent*: if
    the same coordinate was already recorded (failover re-processing a
    delivered-but-unacknowledged item, or a migrated stage re-running an
    item), the recorded value is returned instead of a fresh one, so
    every delivery attempt of an item produces bit-identical output.

``replay`` (``ledger-mode: replay`` + ``ledger-path`` + ``ledger-dir``)
    Reads are served from the recorded run ledger at ``ledger-path``;
    a coordinate missing from the recording falls back to the live
    value and increments ``replay_misses``.  Sink effects and final
    state are still written to fresh sidecars under ``ledger-dir`` so
    the harness can compare digests against the recording.

Contexts are registered process-wide by sidecar path, so a stage
re-incarnated in the same process (sim failover, threaded hot swap,
migration adopt) resumes its existing read memory; a stage restarted in
a *different* process reloads the same memory from the sidecar file,
which the :class:`~repro.ledger.ledger.LedgerWriter` re-verifies and
extends in place.
"""

from __future__ import annotations

import random
import threading
import zlib
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from .ledger import LedgerReader, LedgerWriter

__all__ = [
    "DeterministicContext",
    "MODE_OFF",
    "MODE_RECORD",
    "MODE_REPLAY",
    "base_stage_name",
    "deterministic_context_for",
]

MODE_OFF = "off"
MODE_RECORD = "record"
MODE_REPLAY = "replay"

#: Stage properties that configure the context (shared with config docs).
PROP_MODE = "ledger-mode"
PROP_DIR = "ledger-dir"
PROP_PATH = "ledger-path"

_KIND_TO_TYPE = {"clock": "CLOCK", "rng": "RNG", "param": "PARAM"}

#: Process-wide registry: sidecar path -> live context, so in-process
#: stage re-incarnations keep their read memory.
_ACTIVE: Dict[str, "DeterministicContext"] = {}
_ACTIVE_LOCK = threading.Lock()

#: Replay stores cached per recorded-ledger path (read once per process).
_REPLAY_CACHE: Dict[str, Dict[Tuple[str, str, str, int], Any]] = {}


def base_stage_name(stage_name: str) -> str:
    """The shard-group base name: ``"work#2"`` -> ``"work"``.

    Ledger records are keyed by base name so a replay with a different
    active replica count (autoscale, rebalance) still finds them.
    """
    return stage_name.split("#", 1)[0]


def _sidecar_filename(stage_name: str) -> str:
    return stage_name.replace("#", "_") + ".ledger"


def _load_replay_store(path: str) -> Dict[Tuple[str, str, str, int], Any]:
    with _ACTIVE_LOCK:
        cached = _REPLAY_CACHE.get(path)
    if cached is not None:
        return cached
    store: Dict[Tuple[str, str, str, int], Any] = {}
    for record in LedgerReader(path).read():
        if record.type in ("CLOCK", "RNG", "PARAM"):
            store[(record.type, record.stage, record.key, record.idx)] = (
                record.data.get("v")
            )
    with _ACTIVE_LOCK:
        _REPLAY_CACHE[path] = store
    return store


class DeterministicContext:
    """Records or replays every nondeterministic read a stage makes.

    One instance per (stage, sidecar file); see the module docstring for
    the mode contract.  All public methods are thread-safe.
    """

    def __init__(
        self,
        stage_name: str,
        mode: str = MODE_OFF,
        *,
        sidecar_path: Optional[str] = None,
        replay_path: Optional[str] = None,
        fallback_now: Optional[Callable[[], float]] = None,
        seed: int = 0,
    ) -> None:
        self.stage_name = stage_name
        self.base_name = base_stage_name(stage_name)
        self.mode = mode
        self._fallback_now = fallback_now or (lambda: 0.0)
        self._rng = random.Random(seed ^ zlib.crc32(self.base_name.encode("utf-8")))
        self._lock = threading.RLock()
        self._key = ""
        self._cursors: Dict[Tuple[str, str], int] = {}
        self._reads: Dict[Tuple[str, str, str, int], Any] = {}
        self.counters: Dict[str, int] = {
            "records": 0,
            "effects": 0,
            "dedup_hits": 0,
            "replay_misses": 0,
        }
        self._writer: Optional[LedgerWriter] = None
        self._replay: Dict[Tuple[str, str, str, int], Any] = {}
        if mode in (MODE_RECORD, MODE_REPLAY) and sidecar_path:
            self._writer = LedgerWriter(sidecar_path)
            if mode == MODE_RECORD:
                # Cross-process re-incarnation: reload read memory from
                # the sidecar the previous incarnation left behind.
                for record in LedgerReader(sidecar_path).read():
                    if record.type in ("CLOCK", "RNG", "PARAM"):
                        self._reads[
                            (record.type, record.stage, record.key, record.idx)
                        ] = record.data.get("v")
        if mode == MODE_REPLAY and replay_path:
            self._replay = _load_replay_store(replay_path)

    # -- mode predicates -------------------------------------------------

    @property
    def recording(self) -> bool:
        """True when this context is appending to a run ledger."""
        return self.mode == MODE_RECORD

    @property
    def replaying(self) -> bool:
        """True when reads are served from a recorded run ledger."""
        return self.mode == MODE_REPLAY

    @property
    def active(self) -> bool:
        """True in record or replay mode (i.e. effects should be logged)."""
        return self.mode != MODE_OFF

    # -- item scope ------------------------------------------------------

    def begin(self, key: Any) -> None:
        """Enter the read scope of one item (call first in ``on_item``).

        Resets the per-kind occurrence cursors for ``key`` so that a
        re-delivery of the same item re-reads the same coordinates.
        """
        if self.mode == MODE_OFF:
            return
        with self._lock:
            self._key = str(key)
            for kind in _KIND_TO_TYPE.values():
                self._cursors[(kind, self._key)] = 0

    # -- recorded reads --------------------------------------------------

    def _read(self, rtype: str, live: Callable[[], Any], extra: Optional[dict] = None) -> Any:
        with self._lock:
            key = self._key
            idx = self._cursors.get((rtype, key), 0)
            self._cursors[(rtype, key)] = idx + 1
            coord = (rtype, self.base_name, key, idx)
            if self.mode == MODE_REPLAY:
                if coord in self._replay:
                    return self._replay[coord]
                self.counters["replay_misses"] += 1
                return live()
            # record mode
            if coord in self._reads:
                self.counters["dedup_hits"] += 1
                return self._reads[coord]
            value = live()
            self._reads[coord] = value
            data = {"v": value}
            if extra:
                data.update(extra)
            assert self._writer is not None
            self._writer.append(
                rtype, stage=self.base_name, key=key, idx=idx, data=data
            )
            self.counters["records"] += 1
            return value

    def now(self) -> float:
        """Wall-clock read: live in record mode (and recorded), pinned in replay."""
        if self.mode == MODE_OFF:
            return self._fallback_now()
        return float(self._read("CLOCK", self._fallback_now))

    def draw(self) -> float:
        """Uniform [0, 1) random draw, recorded/replayed like :meth:`now`."""
        if self.mode == MODE_OFF:
            return self._rng.random()
        return float(self._read("RNG", self._rng.random))

    def suggested(self, name: str, live_value: Any) -> Any:
        """The adaptation-parameter value observed for the current item.

        ``live_value`` is what ``get_suggested_value`` returned right
        now; in replay mode the recorded observation wins, pinning the
        Section-4 adaptation trajectory.
        """
        if self.mode == MODE_OFF:
            return live_value
        return self._read("PARAM", lambda: live_value, {"name": name})

    # -- sink effects and final state ------------------------------------

    def sink_effect(self, key: Any, value: Any) -> None:
        """Record one committed sink effect (exactly-once layer output)."""
        if self.mode == MODE_OFF or self._writer is None:
            return
        with self._lock:
            self._writer.append(
                "SINK", stage=self.base_name, key=str(key), data={"v": value}
            )
            self.counters["effects"] += 1

    def finalize_stage(self, processor: Any) -> None:
        """Write the STATE record at flush time (no-op when off).

        Uses the processor's ``replay_state()`` if defined (a reduced,
        order-insensitive view), else ``snapshot()``.
        """
        if self.mode == MODE_OFF or self._writer is None:
            return
        state: Any = None
        getter = getattr(processor, "replay_state", None) or getattr(
            processor, "snapshot", None
        )
        if callable(getter):
            try:
                state = getter()
            except Exception:
                state = None
        with self._lock:
            self._writer.append(
                "STATE",
                stage=self.base_name,
                data={"v": state, "counters": dict(self.counters)},
            )

    def close(self) -> None:
        """Flush and close the sidecar writer (idempotent)."""
        with self._lock:
            if self._writer is not None:
                self._writer.close()
                self._writer = None


_OFF_SINGLETON: Optional[DeterministicContext] = None


def deterministic_context_for(
    stage_name: str,
    properties: Optional[Mapping[str, str]],
    fallback_now: Optional[Callable[[], float]] = None,
) -> DeterministicContext:
    """Build (or fetch) the DeterministicContext for one stage.

    Reads the ``ledger-mode`` / ``ledger-dir`` / ``ledger-path`` stage
    properties; returns a shared passthrough context when recording is
    off.  Re-entrant: the same sidecar path always yields the same
    context within a process.
    """
    import os

    global _OFF_SINGLETON
    props = properties or {}
    mode = str(props.get(PROP_MODE, MODE_OFF)).strip().lower()
    ledger_dir = str(props.get(PROP_DIR, "")).strip()
    if mode not in (MODE_RECORD, MODE_REPLAY) or not ledger_dir:
        if _OFF_SINGLETON is None:
            _OFF_SINGLETON = DeterministicContext("", MODE_OFF)
        if fallback_now is None:
            return _OFF_SINGLETON
        return DeterministicContext(stage_name, MODE_OFF, fallback_now=fallback_now)
    sidecar = os.path.join(ledger_dir, _sidecar_filename(stage_name))
    with _ACTIVE_LOCK:
        existing = _ACTIVE.get(sidecar)
    if existing is not None:
        if fallback_now is not None:
            existing._fallback_now = fallback_now
        return existing
    ctx = DeterministicContext(
        stage_name,
        mode,
        sidecar_path=sidecar,
        replay_path=str(props.get(PROP_PATH, "")).strip() or None,
        fallback_now=fallback_now,
    )
    with _ACTIVE_LOCK:
        _ACTIVE[sidecar] = ctx
    return ctx


def reset_registry() -> None:
    """Drop all registered contexts and replay caches (test isolation)."""
    with _ACTIVE_LOCK:
        for ctx in _ACTIVE.values():
            try:
                ctx.close()
            except Exception:
                pass
        _ACTIVE.clear()
        _REPLAY_CACHE.clear()
