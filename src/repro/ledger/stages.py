"""Enveloped items and replayable demo stages.

Every item in a recorded pipeline travels inside a small JSON-safe
envelope ``{"lk": <key>, "lv": <value>}``.  The key is the item's
ingress sequence number — assigned once by the recording harness and
stable across redeliveries, shard routing, and runtimes — and is what
idempotent sinks (:mod:`repro.ledger.sinks`) and the per-item read
coordinates of the :class:`~repro.ledger.DeterministicContext` key on.

The stages here are the referents of the ``py://repro.ledger.stages:*``
code URLs used by the replay demo pipeline and the CI smoke run; they
are deliberately nondeterministic (wall clock, RNG, adaptation
parameter) so replay parity is a real claim, and they route every such
read through ``context.det``.
"""

from __future__ import annotations

import zlib
from typing import Any, Dict

from ..core.api import ProcessorError, StageContext, StreamProcessor

__all__ = ["DetRelayStage", "key_of", "value_of", "wrap"]


def wrap(key: Any, value: Any) -> Dict[str, Any]:
    """Build the item envelope carrying a stable ledger key."""
    return {"lk": int(key), "lv": value}


def key_of(payload: Any) -> int:
    """The stable ledger key of an enveloped item."""
    if isinstance(payload, dict) and "lk" in payload:
        return int(payload["lk"])
    raise ProcessorError(f"item is not ledger-enveloped: {payload!r}")


def value_of(payload: Any) -> Any:
    """The application value inside an enveloped item."""
    if isinstance(payload, dict) and "lv" in payload:
        return payload["lv"]
    raise ProcessorError(f"item is not ledger-enveloped: {payload!r}")


def _crc(value: Any) -> int:
    import json

    return zlib.crc32(
        json.dumps(value, sort_keys=True, separators=(",", ":")).encode("utf-8")
    ) & 0xFFFFFFFF


class DetRelayStage(StreamProcessor):
    """Replayable relay: mixes clock, RNG, and a Section-4 parameter.

    For each enveloped item it observes the suggested ``gain``, one
    random draw, and the wall clock — all through ``context.det`` — and
    emits a derived envelope downstream.  Because every read is keyed by
    the item's ledger key, a redelivered item (failover replay,
    migration handoff) reproduces its original output bit for bit.

    Snapshot/restore carry a per-key output checksum map so the
    ``replay_state()`` digest is insensitive to duplicates and ordering.
    """

    PARAM = "gain"

    def __init__(self) -> None:
        self.count = 0
        self._emitted: Dict[str, int] = {}

    def setup(self, context: StageContext) -> None:
        """Declare the ``gain`` adjustment parameter."""
        context.specify_parameter(self.PARAM, 1.0, 1.0, 8.0, 1.0, 1)

    def on_item(self, payload: Any, context: StageContext) -> None:
        """Transform one enveloped item deterministically-under-replay."""
        key = key_of(payload)
        det = context.det
        det.begin(key)
        gain = det.suggested(self.PARAM, context.get_suggested_value(self.PARAM))
        jitter = det.draw()
        stamp = det.now()
        value = value_of(payload)
        out = {
            "v": value,
            "g": float(gain),
            "r": float(jitter),
            "t": float(stamp),
            "via": context.det.base_name,
        }
        self.count += 1
        self._emitted[str(key)] = _crc(out)
        context.emit(wrap(key, out))

    def snapshot(self) -> Any:
        """Item count plus the per-key output checksum map."""
        return {
            "count": self.count,
            "emitted": [[k, self._emitted[k]] for k in sorted(self._emitted)],
        }

    def restore(self, state: Any) -> None:
        """Rebuild counters and the checksum map from a checkpoint."""
        if not isinstance(state, dict):
            return
        self.count = int(state.get("count", 0))
        self._emitted = {str(k): int(v) for k, v in state.get("emitted", [])}

    def replay_state(self) -> Any:
        """Duplicate- and order-insensitive final state for STATE records.

        The per-key output checksums as a sorted ``[key, crc]`` list:
        re-delivered items overwrite their own entry with the identical
        checksum, and replicas of a sharded group own disjoint keys, so
        the harness can merge the replicas' lists into one per-stage
        state that only a genuinely different output can perturb.
        """
        return [[k, self._emitted[k]] for k in sorted(self._emitted, key=int)]
