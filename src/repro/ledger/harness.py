"""ReplayHarness: record a run, replay it anywhere, prove it identical.

The harness is the orchestration layer of the run ledger
(:mod:`repro.ledger.records`): :func:`record` executes the demo
pipeline on any of the three runtimes with recording properties stamped
onto every stage, writes the run-level records (``META``, one
``INGRESS`` per source item, the Section-4 decision trail mined from
the run's event log) into its own sidecar, merges all sidecars into one
canonically ordered ``run.ledger``, and seals the chain with an ``END``
record carrying the sink-output and final-state digests.

:func:`replay` then re-executes the recorded run on *any* runtime —
the pipeline comes from the recorded config XML, the input from the
``INGRESS`` records, and every nondeterministic read is pinned by the
:class:`~repro.ledger.DeterministicContext` in replay mode — and
returns a :class:`ReplayReport` comparing the replayed digests against
the recorded ``END``, localizing the first divergence by stage and item
key when they disagree.

Digest rules (the heart of the parity claim):

* the **sink digest** covers the committed sink *effects* — ``SINK``
  records deduplicated by ``(stage, key)`` and sorted by numeric key —
  so at-least-once delivery below the sinks (failover replay, migration
  handoff) cannot perturb it as long as the sinks are idempotent;
* the **state digest** covers the per-stage ``STATE`` records with the
  replicas of a sharded group merged by key union, so an autoscaled
  recording and a differently partitioned replay still compare equal
  when the computation matches.
"""

from __future__ import annotations

import glob
import json
import os
import shutil
from dataclasses import dataclass, field
from hashlib import sha256
from typing import Any, Dict, List, Optional, Tuple

from ..grid.config import AppConfig, StageConfig, StreamConfig
from .context import (
    MODE_RECORD,
    MODE_REPLAY,
    PROP_DIR,
    PROP_MODE,
    PROP_PATH,
    base_stage_name,
    reset_registry,
)
from .ledger import LedgerError, LedgerReader, LedgerWriter, merge_ledgers
from .records import READ_TYPES, SCHEMA, Record
from .stages import wrap

__all__ = [
    "RUNTIMES",
    "RecordResult",
    "ReplayReport",
    "ReplaySpec",
    "record",
    "replay",
]

#: Runtimes the harness can record on and replay on.
RUNTIMES = ("sim", "threaded", "net")

#: Filename of the merged, sealed run ledger inside a recording dir.
RUN_LEDGER = "run.ledger"

#: Sidecar holding the harness's own run-level records.
_RUN_SIDECAR = "_run.ledger"

#: Stage property marking a pipeline as ledger-enabled (GA240 gate).
LEDGER_ENABLED = "ledger-enabled"

#: Event-log kinds mined into decision records after a recorded run.
_EVENT_TO_TYPE = {
    "parameter-adjusted": "ADJUST",
    "shard-scaled": "SCALE",
    "stage-migrated": "MIGRATE",
    "stage-down": "FAILOVER",
    "stage-recovered": "FAILOVER",
    "shard-rebalanced": "REBALANCE",
}

_DECISION_TYPES = ("ADJUST", "SCALE", "MIGRATE", "FAILOVER", "REBALANCE")


@dataclass
class ReplaySpec:
    """Shape of the demo pipeline run the harness records.

    The pipeline is ``src -> work (sharded) -> mid (migratable) ->
    sink`` built from :mod:`repro.ledger.stages` /
    :mod:`repro.ledger.sinks` classes; ``chaos=True`` additionally
    injects a host crash under ``src`` (heartbeat failover), a planned
    migration of ``mid``, and a ``work`` scale-up mid-run — the
    combined Section-4 decision load replay must survive.
    """

    items: int = 96
    rate: float = 400.0
    chaos: bool = False
    adaptation: bool = False
    fail_at: float = 0.12
    migrate_at: float = 0.18
    scale_at: float = 0.08
    checkpoint_interval: float = 0.05
    workers: int = 3

    def payloads(self) -> List[Dict[str, Any]]:
        """The enveloped source items (key = ingress sequence number)."""
        return [wrap(i, (i * 7 + 3) % 101) for i in range(self.items)]


@dataclass
class RecordResult:
    """What :func:`record` hands back."""

    ledger_path: str
    runtime: str
    counts: Dict[str, int]
    sink_digest: str
    state_digest: str
    #: Duplicate deliveries the sink itself absorbed (txn_begin == False).
    sink_duplicates: int = 0
    #: Redeliveries counted at the delivery layer (recovery./migration.
    #: duplicates metrics) — the at-least-once evidence.
    delivery_duplicates: int = 0
    #: Final sink effects as ``[[key, value], ...]`` in key order.
    effects: List[List[Any]] = field(default_factory=list)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready summary (CLI ``--json`` output)."""
        return {
            "ledger": self.ledger_path,
            "runtime": self.runtime,
            "counts": dict(self.counts),
            "sink_digest": self.sink_digest,
            "state_digest": self.state_digest,
            "sink_duplicates": self.sink_duplicates,
            "delivery_duplicates": self.delivery_duplicates,
            "effect_count": len(self.effects),
        }


@dataclass
class ReplayReport:
    """Outcome of one replay: digests, parity verdict, divergence locus."""

    runtime: str
    ledger_path: str
    match: bool
    sink_match: bool
    state_match: bool
    recorded_sink_digest: str
    replayed_sink_digest: str
    recorded_state_digest: str
    replayed_state_digest: str
    first_divergence: Optional[Dict[str, Any]] = None
    replay_misses: int = 0
    dedup_hits: int = 0
    counts: Dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready report (CLI ``--json`` output)."""
        return {
            "runtime": self.runtime,
            "ledger": self.ledger_path,
            "match": self.match,
            "sink_match": self.sink_match,
            "state_match": self.state_match,
            "recorded_sink_digest": self.recorded_sink_digest,
            "replayed_sink_digest": self.replayed_sink_digest,
            "recorded_state_digest": self.recorded_state_digest,
            "replayed_state_digest": self.replayed_state_digest,
            "first_divergence": self.first_divergence,
            "replay_misses": self.replay_misses,
            "dedup_hits": self.dedup_hits,
            "counts": dict(self.counts),
        }

    def summary_line(self) -> str:
        """One human line: verdict plus the divergence locus if any."""
        if self.match:
            return (
                f"replay on {self.runtime}: MATCH "
                f"(sink {self.replayed_sink_digest[:12]}, "
                f"state {self.replayed_state_digest[:12]}, "
                f"misses {self.replay_misses})"
            )
        where = ""
        if self.first_divergence:
            where = (
                f" first divergence at stage "
                f"{self.first_divergence.get('stage')!r} "
                f"key {self.first_divergence.get('key')!r}"
            )
        return f"replay on {self.runtime}: DIVERGED{where}"


# -- demo pipeline ---------------------------------------------------------


def demo_config(spec: Optional[ReplaySpec] = None, *, hints: bool = False) -> AppConfig:
    """The four-stage replay demo pipeline (no ledger properties yet).

    ``hints`` pins ``src`` to the crashable edge host and ``sink`` to
    the central host of :func:`_sim_fabric` — only valid when the run
    executes on the simulated fabric.
    """
    from ..grid.resources import ResourceRequirement

    spec = spec or ReplaySpec()

    def req(hint: Optional[str]) -> "ResourceRequirement":
        if hints and hint:
            return ResourceRequirement(placement_hint=hint)
        return ResourceRequirement()

    return AppConfig(
        name="replay-demo",
        stages=[
            StageConfig(
                "src", "py://repro.ledger.stages:DetRelayStage",
                requirement=req("edge"),
                properties={"migratable": "false"},
            ),
            StageConfig(
                "work", "py://repro.ledger.stages:DetRelayStage",
                requirement=req(None),
                properties={
                    "replicas": "1",
                    "scale-max-replicas": "2",
                    "shard-by": "field:lk",
                },
            ),
            StageConfig(
                "mid", "py://repro.ledger.stages:DetRelayStage",
                requirement=req(None),
                properties={"migratable": "true"},
            ),
            StageConfig(
                "sink", "py://repro.ledger.sinks:TxnCollectStage",
                requirement=req("central"),
            ),
        ],
        streams=[
            StreamConfig("s1", "src", "work"),
            StreamConfig("s2", "work", "mid"),
            StreamConfig("s3", "mid", "sink"),
        ],
    )


def stamp_ledger(
    config: AppConfig,
    mode: str,
    ledger_dir: str,
    ledger_path: Optional[str] = None,
) -> AppConfig:
    """Stamp record/replay properties onto every stage, in place."""
    for stage in config.stages:
        stage.properties[LEDGER_ENABLED] = "true"
        stage.properties[PROP_MODE] = mode
        stage.properties[PROP_DIR] = os.path.abspath(ledger_dir)
        if ledger_path is not None:
            stage.properties[PROP_PATH] = os.path.abspath(ledger_path)
        else:
            stage.properties.pop(PROP_PATH, None)
    return config


def _sim_fabric() -> Tuple[Any, Any, Any]:
    """A five-host star fabric: two worker hosts, edge, spare, central."""
    from ..grid.registry import ServiceRegistry
    from ..simnet.engine import Environment
    from ..simnet.topology import Network

    env = Environment()
    net = Network(env)
    for name in ("w1", "w2", "edge", "spare", "central"):
        net.create_host(name, cores=4)
    for name in ("w1", "w2", "edge", "spare"):
        net.connect(name, "central", bandwidth=10_000.0, latency=0.005)
    registry = ServiceRegistry()
    registry.register_network(net)
    return env, net, registry


def _run_sim(config: AppConfig, spec: ReplaySpec, *, chaos: bool) -> Any:
    """Deploy and run on the simulated fabric, with optional fault load."""
    from ..core.runtime_sim import SimulatedRuntime, SourceBinding
    from ..grid.deployer import Deployer
    from ..grid.faults import FaultInjector, FaultPlan, Redeployer
    from ..grid.heartbeat import HeartbeatDetector
    from ..grid.repository import CodeRepository
    from ..resilience.failover import FailoverCoordinator
    from ..resilience.migration import Migrator
    from ..resilience.policy import ResilienceConfig

    env, net, registry = _sim_fabric()
    deployer = Deployer(registry, CodeRepository())
    deployment = deployer.deploy(config)
    runtime = SimulatedRuntime(
        env, net, deployment,
        adaptation_enabled=spec.adaptation,
        resilience=ResilienceConfig(
            checkpoint_interval=spec.checkpoint_interval
        ),
    )
    runtime.bind_source(
        SourceBinding("feed", "src", payloads=spec.payloads(), rate=spec.rate)
    )
    if chaos:
        FaultInjector(env, net).schedule(FaultPlan("edge", fail_at=spec.fail_at))
        detector = HeartbeatDetector(env, net, interval=0.05, timeout=0.15)
        FailoverCoordinator(runtime, detector, Redeployer(deployer)).arm()
        detector.start()
        migrator = Migrator(deployer, deployment)

        def _decisions() -> Any:
            yield env.timeout(spec.scale_at)
            runtime.scale_stage("work", 2)
            yield env.timeout(max(spec.migrate_at - spec.scale_at, 0.001))
            runtime.migrate_stage("mid", migrator=migrator, trigger="chaos")

        env.process(_decisions(), name="chaos-decisions")
    return runtime.run()


def _run_threaded(config: AppConfig, spec: ReplaySpec) -> Any:
    """Run on the in-process threaded runtime."""
    from ..core.runtime_threads import ThreadedRuntime

    runtime = ThreadedRuntime.from_config(config)
    runtime.bind_source("feed", "src", spec.payloads())
    return runtime.run(timeout=120.0)


def _run_net(config: AppConfig, spec: ReplaySpec) -> Any:
    """Run on the networked (multi-process) runtime."""
    from ..net.coordinator import NetworkedRuntime

    runtime = NetworkedRuntime(
        config, workers=spec.workers, adaptation_enabled=False
    )
    runtime.bind_source("feed", "src", spec.payloads())
    return runtime.run(timeout=90.0)


def _execute(config: AppConfig, spec: ReplaySpec, runtime: str, *, chaos: bool) -> Any:
    if runtime == "sim":
        return _run_sim(config, spec, chaos=chaos)
    if runtime == "threaded":
        return _run_threaded(config, spec)
    if runtime == "net":
        return _run_net(config, spec)
    raise ValueError(f"unknown runtime {runtime!r}; expected one of {RUNTIMES}")


# -- digests ---------------------------------------------------------------


def _canonical_digest(value: Any) -> str:
    return sha256(
        json.dumps(value, sort_keys=True, separators=(",", ":")).encode("utf-8")
    ).hexdigest()


def _num_key(key: str) -> Tuple[int, int, str]:
    try:
        return (0, int(key), "")
    except ValueError:
        return (1, 0, key)


def sink_effect_map(records: List[Record]) -> Dict[Tuple[str, str], Any]:
    """Committed sink effects keyed by ``(stage, item key)``.

    ``SINK`` records are deduplicated by assignment: an idempotent sink
    re-committing a key after a checkpoint restore writes the identical
    value, so last-wins is safe (and a genuinely different value is a
    real divergence the digest must catch anyway).
    """
    out: Dict[Tuple[str, str], Any] = {}
    for rec in records:
        if rec.type == "SINK":
            out[(rec.stage, rec.key)] = rec.data.get("v")
    return out


def sink_digest(records: List[Record]) -> str:
    """Digest of the deduplicated, key-ordered sink effects."""
    effects = sink_effect_map(records)
    ordered = [
        [stage, key, effects[(stage, key)]]
        for stage, key in sorted(effects, key=lambda sk: (sk[0], _num_key(sk[1])))
    ]
    return _canonical_digest(ordered)


def state_map(records: List[Record]) -> Dict[str, Any]:
    """Final per-stage state with shard replicas merged by key union.

    Each replica of a sharded group writes its own ``STATE`` record
    under the group's base name; when every contribution is a
    ``[[key, value], ...]`` pair list (the ``replay_state()``
    convention), the union is the group's state regardless of how the
    keys were partitioned at the time of the flush.
    """
    per_stage: Dict[str, List[Any]] = {}
    for rec in records:
        if rec.type == "STATE":
            per_stage.setdefault(rec.stage, []).append(rec.data.get("v"))
    merged: Dict[str, Any] = {}
    for stage, states in per_stage.items():
        if all(
            isinstance(s, list)
            and all(isinstance(p, (list, tuple)) and len(p) == 2 for p in s)
            for s in states
        ):
            pairs: Dict[str, Any] = {}
            for s in states:
                for k, v in s:
                    pairs[str(k)] = v
            merged[stage] = [[k, pairs[k]] for k in sorted(pairs, key=_num_key)]
        elif len(states) == 1:
            merged[stage] = states[0]
        else:
            merged[stage] = sorted(
                states, key=lambda s: json.dumps(s, sort_keys=True, default=str)
            )
    return merged


def state_digest(records: List[Record]) -> str:
    """Digest of the merged per-stage final states."""
    return _canonical_digest(state_map(records))


def _counts(records: List[Record]) -> Dict[str, int]:
    reads = sum(1 for r in records if r.type in READ_TYPES)
    return {
        "records": len(records),
        "ingress": sum(1 for r in records if r.type == "INGRESS"),
        "reads": reads,
        "sinks": len(sink_effect_map(records)),
        "decisions": sum(1 for r in records if r.type in _DECISION_TYPES),
    }


def _sum_counter(records: List[Record], name: str) -> int:
    total = 0
    for rec in records:
        if rec.type == "STATE":
            counters = rec.data.get("counters")
            if isinstance(counters, dict):
                total += int(counters.get(name, 0))
    return total


def _publish_metrics(metrics: Any, records: List[Record]) -> None:
    """Register the per-stage ledger counters on the run's registry."""
    if metrics is None:
        return
    per_stage: Dict[str, Dict[str, int]] = {}
    for rec in records:
        if rec.type in READ_TYPES:
            per_stage.setdefault(rec.stage, {}).setdefault("records", 0)
            per_stage[rec.stage]["records"] += 1
        elif rec.type == "SINK":
            per_stage.setdefault(rec.stage, {}).setdefault("effects", 0)
            per_stage[rec.stage]["effects"] += 1
        elif rec.type == "STATE":
            counters = rec.data.get("counters")
            if isinstance(counters, dict):
                bucket = per_stage.setdefault(rec.stage, {})
                for name in ("dedup_hits", "replay_misses"):
                    bucket[name] = bucket.get(name, 0) + int(
                        counters.get(name, 0)
                    )
    templates = {
        "records": "ledger.{stage}.records",
        "effects": "ledger.{stage}.effects",
        "dedup_hits": "ledger.{stage}.dedup_hits",
        "replay_misses": "ledger.{stage}.replay_misses",
    }
    for stage, bucket in per_stage.items():
        for name, value in bucket.items():
            if value:
                full = templates[name].format(stage=stage)
                metrics.counter(full).inc(float(value))


# -- record ----------------------------------------------------------------


def _merge_dir(out_dir: str) -> List[Record]:
    """Merge every stage sidecar in ``out_dir`` into ``run.ledger``."""
    out_path = os.path.join(out_dir, RUN_LEDGER)
    sidecars = sorted(
        path
        for path in glob.glob(os.path.join(out_dir, "*.ledger"))
        if os.path.basename(path) != RUN_LEDGER
    )
    return merge_ledgers(sidecars, out_path)


def _mine_decisions(writer: LedgerWriter, result: Any) -> int:
    """Write the run's adaptation/fault decisions from its event log."""
    events = getattr(result, "events", None)
    entries = getattr(events, "entries", None) or []
    mined = 0
    for time, kind, attrs in entries:
        rtype = _EVENT_TO_TYPE.get(kind)
        if rtype is None:
            continue
        data = {"t": float(time), "event": kind}
        for name, value in attrs.items():
            if isinstance(value, (str, int, float, bool)) or value is None:
                data[name] = value
            else:
                data[name] = repr(value)
        stage = str(attrs.get("stage", attrs.get("group", "")))
        writer.append(rtype, stage=base_stage_name(stage), data=data)
        mined += 1
    return mined


def record(
    out_dir: str,
    runtime: str = "sim",
    spec: Optional[ReplaySpec] = None,
) -> RecordResult:
    """Record the demo pipeline on ``runtime`` into ``out_dir``.

    Produces per-stage sidecar ledgers plus the harness's run-level
    sidecar, merges them into ``out_dir/run.ledger`` and seals the
    chain with the ``END`` digest record.  Returns the summary the CLI
    prints; the ledger path inside it is what :func:`replay` takes.
    """
    spec = spec or ReplaySpec()
    if runtime not in RUNTIMES:
        raise ValueError(f"unknown runtime {runtime!r}; expected one of {RUNTIMES}")
    out_dir = os.path.abspath(out_dir)
    if os.path.isdir(out_dir):
        for stale in glob.glob(os.path.join(out_dir, "*.ledger*")):
            os.remove(stale)
    os.makedirs(out_dir, exist_ok=True)
    reset_registry()

    base = demo_config(spec, hints=(runtime == "sim" and spec.chaos))
    meta_xml = base.to_xml()
    config = stamp_ledger(base, MODE_RECORD, out_dir)
    try:
        result = _execute(config, spec, runtime, chaos=spec.chaos)
    finally:
        reset_registry()  # close sidecar writers before merging

    writer = LedgerWriter(os.path.join(out_dir, _RUN_SIDECAR))
    try:
        writer.append(
            "META",
            data={
                "schema": SCHEMA,
                "runtime": runtime,
                "app": meta_xml,
                "source": {"name": "feed", "target": "src"},
                "items": spec.items,
                "chaos": bool(spec.chaos),
            },
        )
        for payload in spec.payloads():
            writer.append(
                "INGRESS",
                key=str(payload["lk"]),
                data={"v": payload["lv"], "source": "feed"},
            )
        _mine_decisions(writer, result)
    finally:
        writer.close()

    merged = _merge_dir(out_dir)
    sink_d = sink_digest(merged)
    state_d = state_digest(merged)
    counts = _counts(merged)
    run_path = os.path.join(out_dir, RUN_LEDGER)
    end_writer = LedgerWriter(run_path)
    try:
        end_writer.append(
            "END",
            data={
                "sink_digest": sink_d,
                "state_digest": state_d,
                "counts": counts,
            },
        )
    finally:
        end_writer.close()

    sink_duplicates = 0
    effects: List[List[Any]] = []
    try:
        final = result.final_value("sink")
    except Exception:
        final = None
    if isinstance(final, dict):
        effects = list(final.get("effects") or [])
        sink_duplicates = int(final.get("duplicates", 0))
    metrics = getattr(result, "metrics", None)
    delivery_duplicates = 0.0
    if metrics is not None:
        for stage in {base_stage_name(s.name) for s in config.stages}:
            for family in ("recovery", "migration"):
                delivery_duplicates += metrics.value(
                    f"{family}.{stage}.duplicates", default=0.0
                )
    _publish_metrics(metrics, merged)
    return RecordResult(
        ledger_path=run_path,
        runtime=runtime,
        counts=counts,
        sink_digest=sink_d,
        state_digest=state_d,
        sink_duplicates=sink_duplicates,
        delivery_duplicates=int(delivery_duplicates),
        effects=effects,
    )


# -- replay ----------------------------------------------------------------


def _first_divergence(
    recorded: List[Record], replayed: List[Record]
) -> Optional[Dict[str, Any]]:
    """Locate the first differing sink effect or stage state."""
    rec_eff = sink_effect_map(recorded)
    rep_eff = sink_effect_map(replayed)
    for stage, key in sorted(
        set(rec_eff) | set(rep_eff), key=lambda sk: (sk[0], _num_key(sk[1]))
    ):
        a = rec_eff.get((stage, key), "<missing>")
        b = rep_eff.get((stage, key), "<missing>")
        if a != b:
            sseq = next(
                (
                    r.sseq
                    for r in recorded
                    if r.type == "SINK" and r.stage == stage and r.key == key
                ),
                None,
            )
            return {
                "kind": "sink",
                "stage": stage,
                "key": key,
                "sseq": sseq,
                "recorded": a,
                "replayed": b,
            }
    rec_state = state_map(recorded)
    rep_state = state_map(replayed)
    for stage in sorted(set(rec_state) | set(rep_state)):
        a = rec_state.get(stage, "<missing>")
        b = rep_state.get(stage, "<missing>")
        if a != b:
            divergence: Dict[str, Any] = {
                "kind": "state",
                "stage": stage,
                "key": "",
                "recorded": a,
                "replayed": b,
            }
            if isinstance(a, list) and isinstance(b, list):
                a_pairs = {str(p[0]): p[1] for p in a if len(p) == 2}
                b_pairs = {str(p[0]): p[1] for p in b if len(p) == 2}
                for key in sorted(set(a_pairs) | set(b_pairs), key=_num_key):
                    if a_pairs.get(key, "<missing>") != b_pairs.get(key, "<missing>"):
                        divergence["key"] = key
                        divergence["recorded"] = a_pairs.get(key, "<missing>")
                        divergence["replayed"] = b_pairs.get(key, "<missing>")
                        break
            return divergence
    return None


def replay(
    ledger_path: str,
    runtime: str = "sim",
    spec: Optional[ReplaySpec] = None,
    work_dir: Optional[str] = None,
) -> ReplayReport:
    """Re-execute a recorded run on ``runtime`` and compare digests.

    The pipeline config comes from the ledger's ``META`` record (with
    placement hints stripped, so a run recorded on the simulated fabric
    replays on worker processes and vice versa), the input from its
    ``INGRESS`` records, and every recorded read is pinned by the
    replay-mode :class:`~repro.ledger.DeterministicContext`.  Faults
    are *not* re-injected: the whole point is that the recorded
    decisions' effects are already baked into the recorded reads, so a
    fault-free replay must still land on identical digests.
    """
    from ..grid.resources import ResourceRequirement

    spec = spec or ReplaySpec()
    if runtime not in RUNTIMES:
        raise ValueError(f"unknown runtime {runtime!r}; expected one of {RUNTIMES}")
    ledger_path = os.path.abspath(ledger_path)
    recorded = LedgerReader(ledger_path).read()
    meta = next((r for r in recorded if r.type == "META"), None)
    end = next((r for r in recorded if r.type == "END"), None)
    if meta is None or end is None:
        raise LedgerError(
            f"{ledger_path}: not a sealed run ledger (missing META or END record)"
        )

    config = AppConfig.from_xml(str(meta.data["app"]))
    for stage in config.stages:
        stage.requirement = ResourceRequirement()
    ingress = sorted(
        (r for r in recorded if r.type == "INGRESS"),
        key=lambda r: _num_key(r.key),
    )
    payloads = [wrap(int(r.key), r.data.get("v")) for r in ingress]
    replay_spec = ReplaySpec(
        items=len(payloads), rate=spec.rate, workers=spec.workers
    )
    replay_spec.payloads = lambda: payloads  # type: ignore[method-assign]

    work_dir = os.path.abspath(
        work_dir or os.path.join(os.path.dirname(ledger_path), f"replay-{runtime}")
    )
    if os.path.isdir(work_dir):
        shutil.rmtree(work_dir)
    os.makedirs(work_dir, exist_ok=True)
    reset_registry()
    stamp_ledger(config, MODE_REPLAY, work_dir, ledger_path=ledger_path)
    try:
        result = _execute(config, replay_spec, runtime, chaos=False)
    finally:
        reset_registry()

    replayed = _merge_dir(work_dir)
    rep_sink = sink_digest(replayed)
    rep_state = state_digest(replayed)
    rec_sink = str(end.data.get("sink_digest", ""))
    rec_state = str(end.data.get("state_digest", ""))
    sink_ok = rep_sink == rec_sink
    state_ok = rep_state == rec_state
    divergence = None
    if not (sink_ok and state_ok):
        divergence = _first_divergence(recorded, replayed)
    _publish_metrics(getattr(result, "metrics", None), replayed)
    return ReplayReport(
        runtime=runtime,
        ledger_path=ledger_path,
        match=sink_ok and state_ok,
        sink_match=sink_ok,
        state_match=state_ok,
        recorded_sink_digest=rec_sink,
        replayed_sink_digest=rep_sink,
        recorded_state_digest=rec_state,
        replayed_state_digest=rep_state,
        first_divergence=divergence,
        replay_misses=_sum_counter(replayed, "replay_misses"),
        dedup_hits=_sum_counter(replayed, "dedup_hits"),
        counts=_counts(replayed),
    )
