"""Heartbeat-based failure detection with automatic redeployment.

Closes the fault-tolerance loop opened by :mod:`repro.grid.faults`:
every host runs a heartbeat emitter; a :class:`HeartbeatDetector` marks a
host *suspected* once no beat has arrived for ``timeout`` seconds and
invokes its callbacks — by default the :class:`AutoRecovery` callback,
which redeploys the dead host's stages through the ordinary
:class:`~repro.grid.faults.Redeployer`.

Crash-stop hosts stop beating automatically: the emitter checks
``host.failed`` before each beat, so no extra wiring is needed beyond
``FaultInjector`` / ``Host.fail``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Generator, List, Optional

from repro.grid.deployer import Deployment
from repro.grid.faults import Redeployer
from repro.simnet.engine import Environment
from repro.simnet.topology import Network

__all__ = ["AutoRecovery", "HeartbeatDetector"]


@dataclass
class _HostState:
    last_beat: float
    suspected: bool = False


class HeartbeatDetector:
    """Per-host heartbeat emitters plus a timeout-based detector.

    Parameters
    ----------
    env, network:
        The fabric to watch.
    interval:
        Seconds between beats.
    timeout:
        Silence after which a host is suspected (must exceed ``interval``;
        3-4 intervals is the customary safety margin against jitter —
        here beats are deterministic, so 2 suffices).
    """

    def __init__(
        self,
        env: Environment,
        network: Network,
        interval: float = 1.0,
        timeout: float = 3.0,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        if timeout <= interval:
            raise ValueError(
                f"timeout ({timeout}) must exceed the beat interval ({interval})"
            )
        self.env = env
        self.network = network
        self.interval = float(interval)
        self.timeout = float(timeout)
        self._states: Dict[str, _HostState] = {}
        self._callbacks: List[Callable[[str, float], None]] = []
        self._started = False
        #: (time, host) suspicion records, for tests and reporting.
        self.suspicions: List[tuple] = []
        #: (time, host) suspicion-cleared records (host recovered).
        self.clears: List[tuple] = []

    def on_suspect(self, callback: Callable[[str, float], None]) -> None:
        """Register ``callback(host_name, time)`` fired on suspicion."""
        self._callbacks.append(callback)

    def start(self) -> None:
        """Arm emitters and the detector for every current host."""
        if self._started:
            raise RuntimeError("heartbeat detector already started")
        self._started = True
        now = self.env.now
        for name in self.network.hosts:
            self._states[name] = _HostState(last_beat=now)
            self.env.process(self._emitter(name), name=f"heartbeat:{name}")
        self.env.process(self._detector(), name="heartbeat-detector")

    def _emitter(self, host_name: str) -> Generator:
        host = self.network.host(host_name)
        while True:
            yield self.env.timeout(self.interval)
            if host.failed:
                # Crash-stop: this beat is skipped, but the emitter stays
                # armed — a host that later recover()s resumes beating.
                # (Returning here was a bug: the host stayed suspected
                # forever after a fail -> recover -> fail sequence.)
                continue
            self._states[host_name].last_beat = self.env.now

    def _detector(self) -> Generator:
        while True:
            yield self.env.timeout(self.interval)
            now = self.env.now
            for name, state in self._states.items():
                beating = now - state.last_beat < self.timeout
                if state.suspected:
                    if beating:
                        # Beats resumed: the host recovered.  Clearing the
                        # suspicion here (detector side) re-arms detection
                        # of a later failure of the same host.
                        state.suspected = False
                        self.clears.append((now, name))
                    continue
                if not beating:
                    state.suspected = True
                    self.suspicions.append((now, name))
                    for callback in self._callbacks:
                        callback(name, now)

    def is_suspected(self, host_name: str) -> bool:
        """Whether ``host_name`` is currently suspected."""
        state = self._states.get(host_name)
        return bool(state and state.suspected)

    def last_beat(self, host_name: str) -> float:
        """Time of the last heartbeat received from ``host_name``.

        Recovery latency is measured from here: the silent period before
        detection is part of the outage the failover pays for.
        """
        return self._states[host_name].last_beat


@dataclass
class AutoRecovery:
    """Suspicion callback that redeploys the dead host's stages.

    Attach with ``detector.on_suspect(AutoRecovery(redeployer, deployment))``;
    every completed move is recorded in :attr:`recoveries`.
    """

    redeployer: Redeployer
    deployment: Deployment
    recoveries: List[tuple] = field(default_factory=list)
    #: Optional hook called with the redeployment report after each move.
    on_recovered: Optional[Callable] = None

    def __call__(self, host_name: str, time: float) -> None:
        report = self.redeployer.redeploy(self.deployment, host_name)
        self.recoveries.append((time, host_name, report.moved_stages))
        if self.on_recovered is not None:
            self.on_recovered(report)
