"""Fault injection and redeployment.

GATES itself (2004) did not handle failures; a grid middleware that runs
"24 hours a day, 7 days a week" (Section 1) needs to, so this module
provides the natural extension, kept at the *deployment* layer:

* :class:`FaultInjector` — schedules crash-stop host failures (and
  recoveries) on the simulated fabric;
* :class:`Redeployer` — given a deployment and a failed host, re-places
  the affected stages on healthy hosts via the ordinary matchmaker,
  re-fetches their code from the repository, and swaps the service
  instances.  The redeployer itself moves no state (crash-stop
  semantics: the replacement instance starts fresh); restoring stage
  state from checkpoints and replaying in-flight input is the runtime's
  job — see :mod:`repro.resilience` and
  :meth:`repro.core.runtime_sim.SimulatedRuntime.failover_stage`.

The matchmaker refuses hosts whose ``failed`` flag is set, so ordinary
deployments also avoid known-dead nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, List, Optional

from repro.grid.deployer import Deployer, Deployment, DeploymentError, Placement
from repro.simnet.engine import Environment
from repro.simnet.topology import Network

__all__ = ["DriftPlan", "FaultInjector", "FaultPlan", "Redeployer"]


@dataclass(frozen=True)
class FaultPlan:
    """One scheduled fault: fail ``host`` at ``fail_at``; recover later."""

    host: str
    fail_at: float
    recover_at: Optional[float] = None

    def __post_init__(self) -> None:
        if self.fail_at < 0:
            raise ValueError(f"fail_at must be >= 0, got {self.fail_at}")
        if self.recover_at is not None and self.recover_at <= self.fail_at:
            raise ValueError(
                f"recover_at {self.recover_at} must be after fail_at {self.fail_at}"
            )


@dataclass(frozen=True)
class DriftPlan:
    """A gradual divergence from deployment-time assumptions.

    Unlike :class:`FaultPlan`'s crash-stop failures, drift degrades a
    resource *slowly* — a congested WAN link losing bandwidth, a node
    picking up competing load — which is exactly the signal the
    migration control loop (:mod:`repro.resilience.migration`) watches
    for.  ``kind`` selects the knob:

    * ``"link-decay"`` — ``target`` is a link name (``"src->dst"``);
      its bandwidth ramps down to ``factor`` × the starting value.
    * ``"host-slowdown"`` — ``target`` is a host name; its
      ``speed_factor`` ramps down to ``factor`` × the starting value.

    The ramp runs over ``duration`` seconds in ``steps`` equal stages
    starting at ``start_at``.
    """

    kind: str
    target: str
    start_at: float
    duration: float
    factor: float
    steps: int = 10

    def __post_init__(self) -> None:
        if self.kind not in ("link-decay", "host-slowdown"):
            raise ValueError(
                f"kind must be 'link-decay' or 'host-slowdown', got {self.kind!r}"
            )
        if self.start_at < 0:
            raise ValueError(f"start_at must be >= 0, got {self.start_at}")
        if self.duration <= 0:
            raise ValueError(f"duration must be > 0, got {self.duration}")
        if not 0 < self.factor < 1:
            raise ValueError(
                f"factor must be in (0, 1) — drift degrades — got {self.factor}"
            )
        if self.steps < 1:
            raise ValueError(f"steps must be >= 1, got {self.steps}")


class FaultInjector:
    """Schedules crash-stop failures on the fabric.

    Failures are recorded in :attr:`events` as (time, host, "fail" |
    "recover") so tests and harnesses can assert on them.
    """

    def __init__(self, env: Environment, network: Network) -> None:
        self.env = env
        self.network = network
        self.events: List[tuple] = []

    def schedule(self, plan: FaultPlan) -> None:
        """Arm one fault plan (validates the host exists now)."""
        self.network.host(plan.host)
        self.env.process(self._inject(plan), name=f"fault:{plan.host}")

    def fail_now(self, host_name: str) -> None:
        """Fail a host immediately."""
        self.network.host(host_name).fail()
        self.events.append((self.env.now, host_name, "fail"))

    def recover_now(self, host_name: str) -> None:
        """Recover a host immediately."""
        self.network.host(host_name).recover()
        self.events.append((self.env.now, host_name, "recover"))

    def _inject(self, plan: FaultPlan) -> Generator:
        delay = plan.fail_at - self.env.now
        if delay > 0:
            yield self.env.timeout(delay)
        self.fail_now(plan.host)
        if plan.recover_at is not None:
            yield self.env.timeout(plan.recover_at - plan.fail_at)
            self.recover_now(plan.host)

    def schedule_drift(self, plan: DriftPlan) -> None:
        """Arm one drift plan (validates the target exists now)."""
        if plan.kind == "host-slowdown":
            self.network.host(plan.target)
        else:
            self._link(plan.target)
        self.env.process(self._drift(plan), name=f"drift:{plan.target}")

    def _link(self, name: str):
        for _src, _dst, link in self.network.edges():
            if link.name == name:
                return link
        raise ValueError(f"unknown link {name!r}")

    def _drift(self, plan: DriftPlan) -> Generator:
        delay = plan.start_at - self.env.now
        if delay > 0:
            yield self.env.timeout(delay)
        if plan.kind == "host-slowdown":
            host = self.network.host(plan.target)
            baseline = host.speed_factor
        else:
            link = self._link(plan.target)
            baseline = link.bandwidth
        step = plan.duration / plan.steps
        for i in range(1, plan.steps + 1):
            yield self.env.timeout(step)
            value = baseline * (1.0 + (plan.factor - 1.0) * i / plan.steps)
            if plan.kind == "host-slowdown":
                host.speed_factor = value
            else:
                link.set_bandwidth(value)
            self.events.append((self.env.now, plan.target, f"drift:{value:.4g}"))


@dataclass
class RedeploymentReport:
    """What a redeployment did."""

    failed_host: str
    moved_stages: List[str] = field(default_factory=list)
    new_hosts: dict = field(default_factory=dict)
    #: Stages on the failed host deliberately left alone (e.g. under a
    #: planned migration that owns their re-placement).
    skipped_stages: List[str] = field(default_factory=list)


class Redeployer:
    """Moves the stages of a failed host onto healthy ones."""

    def __init__(self, deployer: Deployer) -> None:
        self.deployer = deployer

    def redeploy(
        self,
        deployment: Deployment,
        failed_host: str,
        exclude_stages: Optional[set] = None,
    ) -> RedeploymentReport:
        """Re-place every stage of ``deployment`` on ``failed_host``.

        The replacement instances are created, customized from the
        repository, and activated; the dead instances are destroyed
        (deregistering them).  Placement hints pinning a stage to the
        failed host are ignored for the replacement (the pin is
        unsatisfiable); ``near:`` hints re-resolve normally.

        Stages named in ``exclude_stages`` are skipped (and recorded in
        the report's ``skipped_stages``): a stage mid-way through a
        planned migration already has a re-placement in flight, and a
        concurrent redeploy would race it.
        """
        report = RedeploymentReport(failed_host=failed_host)
        affected = []
        for name, p in deployment.placements.items():
            if p.host_name != failed_host:
                continue
            if exclude_stages and name in exclude_stages:
                report.skipped_stages.append(name)
                continue
            affected.append(name)
        if not affected:
            return report
        matchmaker = self.deployer.matchmaker
        claimed = {
            p.host_name for p in deployment.placements.values()
            if p.host_name != failed_host
        }
        for stage_name in affected:
            stage_cfg = deployment.config.stage(stage_name)
            requirement = stage_cfg.requirement
            try:
                new_host = matchmaker.match_one(requirement, exclude=set(claimed))
            except Exception:
                # The placement hint (a direct pin or a near:-hint) may
                # resolve to the failed host itself; it is unsatisfiable
                # now, so retry placement unconstrained.
                if requirement.placement_hint is None:
                    raise DeploymentError(
                        f"cannot re-place stage {stage_name!r} after "
                        f"{failed_host!r} failed"
                    ) from None
                from dataclasses import replace as dc_replace

                relaxed = dc_replace(requirement, placement_hint=None)
                try:
                    new_host = matchmaker.match_one(relaxed, exclude=set(claimed))
                except Exception as exc:
                    raise DeploymentError(
                        f"cannot re-place stage {stage_name!r} after "
                        f"{failed_host!r} failed: {exc}"
                    ) from exc
            try:
                factory = self.deployer.repository.fetch(stage_cfg.code_url)
            except Exception as exc:
                raise DeploymentError(
                    f"stage {stage_name!r}: code vanished from repository: {exc}"
                ) from exc
            # Secure the replacement fully (created, customized, activated)
            # BEFORE destroying the old instance: if any replacement step
            # fails, the deployment record must still point at the old
            # instance rather than be left half-torn-down.
            container = self.deployer.container_for(new_host)
            instance = container.create_instance(
                f"{deployment.config.name}/{stage_name}",
                lifetime=self.deployer.service_lifetime,
            )
            try:
                instance.customize(factory, **stage_cfg.properties)
                instance.activate()
            except Exception as exc:
                instance.destroy()
                raise DeploymentError(
                    f"cannot re-place stage {stage_name!r} after "
                    f"{failed_host!r} failed: replacement activation failed: {exc}"
                ) from exc
            old = deployment.placements[stage_name].instance
            old.destroy()
            deployment.placements[stage_name] = Placement(
                stage_name=stage_name, host_name=new_host, instance=instance
            )
            claimed.add(new_host)
            report.moved_stages.append(stage_name)
            report.new_hosts[stage_name] = new_host
        return report
