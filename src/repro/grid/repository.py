"""Application code repository.

Application developers "submit the codes to application repositories" and
the Deployer "retrieves the stage codes from the application repositories"
(Section 3.2).  In the paper those repositories are web servers holding
Java class files; here a :class:`CodeRepository` maps logical URLs to
Python stage-processor factories, with two resolution mechanisms:

* explicit registration (``repo.publish("repo://app/stage1", factory)``),
* dotted-path import (``"py://repro.apps.count_samps:SourceFilterStage"``),
  the in-process analogue of fetching a class file by URL.
"""

from __future__ import annotations

import importlib
from typing import Any, Callable, Dict, List

__all__ = ["CodeRepository", "RepositoryError"]


class RepositoryError(Exception):
    """Raised when stage code cannot be located or loaded."""


class CodeRepository:
    """Logical-URL -> stage factory store with dotted-path fallback."""

    #: Scheme for explicitly published entries.
    PUBLISHED_SCHEME = "repo://"
    #: Scheme for dotted-path imports, ``py://package.module:Attribute``.
    IMPORT_SCHEME = "py://"

    def __init__(self) -> None:
        self._entries: Dict[str, Callable[..., Any]] = {}

    def publish(self, url: str, factory: Callable[..., Any]) -> None:
        """Publish stage code under a logical URL.

        Republishing the same URL is an error — the paper's repositories
        are append-only from the developer's point of view; use a new
        version URL instead.
        """
        if not url.startswith(self.PUBLISHED_SCHEME):
            raise RepositoryError(
                f"published URLs must start with {self.PUBLISHED_SCHEME!r}: {url!r}"
            )
        if url in self._entries:
            raise RepositoryError(f"{url!r} already published")
        if not callable(factory):
            raise RepositoryError(f"factory for {url!r} is not callable")
        self._entries[url] = factory

    def fetch(self, url: str) -> Callable[..., Any]:
        """Resolve a logical URL to a stage factory."""
        if url.startswith(self.PUBLISHED_SCHEME):
            try:
                return self._entries[url]
            except KeyError:
                raise RepositoryError(f"no code published at {url!r}") from None
        if url.startswith(self.IMPORT_SCHEME):
            return self._import(url[len(self.IMPORT_SCHEME):])
        raise RepositoryError(
            f"unsupported code URL scheme in {url!r} "
            f"(expected {self.PUBLISHED_SCHEME!r} or {self.IMPORT_SCHEME!r})"
        )

    def urls(self) -> List[str]:
        """All explicitly published URLs."""
        return sorted(self._entries)

    def __contains__(self, url: str) -> bool:
        if url.startswith(self.PUBLISHED_SCHEME):
            return url in self._entries
        if url.startswith(self.IMPORT_SCHEME):
            try:
                self._import(url[len(self.IMPORT_SCHEME):])
                return True
            except RepositoryError:
                return False
        return False

    @staticmethod
    def _import(path: str) -> Callable[..., Any]:
        if ":" not in path:
            raise RepositoryError(
                f"import path must be 'module:attribute', got {path!r}"
            )
        module_name, _, attr = path.partition(":")
        try:
            module = importlib.import_module(module_name)
        except ImportError as exc:
            raise RepositoryError(f"cannot import module {module_name!r}: {exc}") from exc
        try:
            factory = getattr(module, attr)
        except AttributeError:
            raise RepositoryError(
                f"module {module_name!r} has no attribute {attr!r}"
            ) from None
        if not callable(factory):
            raise RepositoryError(f"{path!r} resolved to non-callable {factory!r}")
        return factory
