"""The Launcher: entry point for application users.

"The Launcher is in charge of getting configuration files and analyzing
them by using an embedded XML parser.  To start the application, the user
simply passes the XML file's URL link to the Launcher" (Section 3.2).

An application user never touches stages or resources: they hand the
Launcher a configuration reference (a filesystem path, a raw XML string,
or an already-built :class:`~repro.grid.config.AppConfig`) and get back a
running :class:`~repro.grid.deployer.Deployment`.
"""

from __future__ import annotations

import os
from typing import Union

from repro.grid.config import AppConfig, ConfigError
from repro.grid.deployer import Deployer, Deployment

__all__ = ["Launcher"]

ConfigRef = Union[str, "os.PathLike[str]", AppConfig]


class Launcher:
    """Parses configurations and drives the Deployer."""

    def __init__(self, deployer: Deployer) -> None:
        self.deployer = deployer

    def resolve(self, ref: ConfigRef) -> AppConfig:
        """Turn a configuration reference into a validated AppConfig.

        Accepts an :class:`AppConfig` (validated in place), a path to an
        XML file, or a raw XML string (anything starting with '<').
        """
        if isinstance(ref, AppConfig):
            ref.validate()
            return ref
        text = os.fspath(ref)
        if text.lstrip().startswith("<"):
            return AppConfig.from_xml(text)
        if not os.path.exists(text):
            raise ConfigError(f"configuration file not found: {text!r}")
        with open(text, "r", encoding="utf-8") as handle:
            return AppConfig.from_xml(handle.read())

    def launch(self, ref: ConfigRef, verify: bool = True) -> Deployment:
        """Resolve ``ref`` and deploy the application.

        ``verify=False`` skips the static pre-deploy verifier (see
        :meth:`repro.grid.deployer.Deployer.verify`).
        """
        config = self.resolve(ref)
        return self.deployer.deploy(config, verify=verify)
