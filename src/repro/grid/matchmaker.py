"""Resource broker matching stage requirements to grid hosts.

The Deployer "consults with a grid resource manager to find the nodes where
the resources required by the individual stages are available"
(Section 3.2, step 2).  :class:`Matchmaker` is that resource manager: given
the per-stage :class:`~repro.grid.resources.ResourceRequirement` list from
the application configuration, it produces a host assignment that

* honours explicit ``placement_hint`` pins and ``near:<host>`` adjacency
  hints (first-stage filters go next to their sources),
* respects minimum core/memory/speed requirements,
* respects minimum path-bandwidth constraints between dependent stages,
* balances remaining stages by headroom score, never co-locating two
  stages on one host unless unavoidable (``allow_colocation``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple

from repro.grid.registry import ServiceRegistry
from repro.grid.resources import ResourceRequirement
from repro.simnet.topology import TopologyError

if TYPE_CHECKING:
    from repro.grid.monitor import MonitoringService

__all__ = ["MatchError", "Matchmaker"]


class MatchError(Exception):
    """Raised when no feasible assignment exists."""


class Matchmaker:
    """Greedy, deterministic requirement -> host broker.

    Deterministic: ties between equally scored offers break on host name,
    so a given registry + requirements always yields the same assignment
    (important for repeatable experiments).
    """

    def __init__(
        self,
        registry: ServiceRegistry,
        allow_colocation: bool = True,
        monitor: Optional[MonitoringService] = None,
        utilization_weight: float = 1.0,
    ) -> None:
        self.registry = registry
        self.allow_colocation = allow_colocation
        #: Optional :class:`repro.grid.monitor.MonitoringService`; when set
        #: and it has produced a snapshot, currently-busy hosts are ranked
        #: down by ``utilization_weight * utilization`` (dynamic matching —
        #: the paper's "monitors ... the available computing resources").
        self.monitor = monitor
        if utilization_weight < 0:
            raise ValueError(
                f"utilization_weight must be >= 0, got {utilization_weight}"
            )
        self.utilization_weight = utilization_weight

    def match_one(
        self,
        requirement: ResourceRequirement,
        exclude: Optional[Set[str]] = None,
    ) -> str:
        """Choose a host for a single requirement.

        ``exclude`` contains host names already claimed by other stages
        (used when colocation is disabled or discouraged).
        """
        exclude = exclude or set()
        pinned = self._resolve_hint(requirement.placement_hint)
        if pinned is not None:
            if not self._alive(pinned):
                raise MatchError(f"placement hint {pinned!r} is on a failed host")
            offer = self.registry.offer(pinned)
            if not offer.satisfies(requirement):
                raise MatchError(
                    f"placement hint {pinned!r} cannot satisfy {requirement}"
                )
            if not self._bandwidth_ok(pinned, requirement):
                raise MatchError(
                    f"placement hint {pinned!r} lacks required bandwidth"
                )
            return pinned

        candidates = self._rank(requirement)
        if not candidates:
            raise MatchError(f"no host satisfies {requirement}")
        fresh = [name for _, name in candidates if name not in exclude]
        if fresh:
            return fresh[0]
        if self.allow_colocation:
            return candidates[0][1]
        raise MatchError(
            f"all feasible hosts already claimed and colocation disabled: {requirement}"
        )

    def match_all(
        self,
        requirements: Sequence[Tuple[str, ResourceRequirement]],
    ) -> Dict[str, str]:
        """Assign hosts to a sequence of (stage_name, requirement) pairs.

        Pinned/hinted stages are placed first so they cannot be stolen by
        flexible stages; flexible stages then fill remaining hosts by
        score.
        """
        assignment: Dict[str, str] = {}
        claimed: Set[str] = set()

        hinted = [(n, r) for n, r in requirements if r.placement_hint is not None]
        flexible = [(n, r) for n, r in requirements if r.placement_hint is None]

        for name, req in hinted:
            host = self.match_one(req, exclude=claimed)
            assignment[name] = host
            claimed.add(host)
        for name, req in flexible:
            host = self.match_one(req, exclude=claimed)
            assignment[name] = host
            claimed.add(host)

        self._check_pairwise_bandwidth(assignment, dict(requirements))
        return assignment

    # -- internals -----------------------------------------------------------

    def _resolve_hint(self, hint: Optional[str]) -> Optional[str]:
        """Translate a placement hint into a concrete host name.

        ``near:<host>`` resolves to ``<host>`` itself if it is registered
        (co-location with a source is the closest possible placement),
        otherwise to its highest-bandwidth neighbor.
        """
        if hint is None:
            return None
        if not hint.startswith("near:"):
            # Direct pin; validated by caller via registry.offer().
            self.registry.offer(hint)
            return hint
        anchor = hint[len("near:"):]
        network = self.registry.network
        if anchor in network.hosts:
            if anchor in {o.host_name for o in self.registry.offers()}:
                return anchor
        try:
            neighbors = network.neighbors(anchor)
        except TopologyError:
            raise MatchError(f"near-hint anchor {anchor!r} unknown") from None
        if not neighbors:
            raise MatchError(f"near-hint anchor {anchor!r} has no neighbors")
        best = max(
            neighbors,
            key=lambda n: (network.link(anchor, n).bandwidth, n),
        )
        return best

    def _rank(self, requirement: ResourceRequirement) -> List[Tuple[float, str]]:
        """Feasible offers sorted by (score desc, name asc)."""
        utilization = self._current_utilization()
        scored = []
        for offer in self.registry.offers():
            if not self._alive(offer.host_name):
                continue
            if not offer.satisfies(requirement):
                continue
            if not self._bandwidth_ok(offer.host_name, requirement):
                continue
            score = offer.score(requirement)
            score -= self.utilization_weight * utilization.get(offer.host_name, 0.0)
            scored.append((score, offer.host_name))
        scored.sort(key=lambda pair: (-pair[0], pair[1]))
        return scored

    def _alive(self, host_name: str) -> bool:
        """False only when a registered network marks the host failed."""
        try:
            network = self.registry.network
        except Exception:
            return True
        host = network.hosts.get(host_name)
        return host is None or not host.failed

    def _current_utilization(self) -> Dict[str, float]:
        """Host -> utilization from the monitoring snapshot, if available."""
        if self.monitor is None:
            return {}
        try:
            snapshot = self.monitor.snapshot
        except RuntimeError:
            return {}
        return {name: sample.utilization for name, sample in snapshot.hosts.items()}

    def _bandwidth_ok(self, host: str, requirement: ResourceRequirement) -> bool:
        if not requirement.min_bandwidth_to:
            return True
        network = self.registry.network
        for peer, min_bw in requirement.min_bandwidth_to.items():
            if peer not in network.hosts:
                # A stage-name reference: resolvable only once the full
                # assignment exists; checked by _check_pairwise_bandwidth.
                continue
            try:
                if network.path_bandwidth(host, peer) < min_bw:
                    return False
            except TopologyError:
                return False
        return True

    def _check_pairwise_bandwidth(
        self,
        assignment: Dict[str, str],
        requirements: Dict[str, ResourceRequirement],
    ) -> None:
        """Re-validate bandwidth constraints against final placements.

        A requirement may reference another *stage* name (not a host); at
        match time those resolve through the finished assignment.
        """
        network = None
        for stage, host in assignment.items():
            req = requirements[stage]
            for peer, min_bw in req.min_bandwidth_to.items():
                target = assignment.get(peer, peer)
                if network is None:
                    network = self.registry.network
                try:
                    bw = network.path_bandwidth(host, target)
                except TopologyError:
                    raise MatchError(
                        f"stage {stage!r} on {host!r} has no route to {target!r}"
                    ) from None
                if bw < min_bw:
                    raise MatchError(
                        f"stage {stage!r} on {host!r}: bandwidth to {target!r} "
                        f"is {bw} < required {min_bw}"
                    )
