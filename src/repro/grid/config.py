"""XML application configuration.

The application developer "writes an XML file, specifying the configuration
information of an application.  Such information includes the number of
stages and where the stages' codes are" (Section 3.2).  This module defines
the typed model (:class:`AppConfig`, :class:`StageConfig`,
:class:`StreamConfig`, :class:`ParameterConfig`) plus XML round-tripping
via the stdlib :mod:`xml.etree`.

Example document::

    <application name="count-samps">
      <stage name="filter-0" code="repo://count-samps/filter">
        <requirement min-cores="1" placement="near:source-0"/>
        <parameter name="sample-size" init="100" min="10" max="240"
                   increment="10" direction="-1"/>
        <property key="top-k" value="10"/>
      </stage>
      <stage name="join" code="repo://count-samps/join"/>
      <stream name="s0" from="filter-0" to="join" item-size="8.0"/>
    </application>
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from typing import Dict, List

import networkx as nx

from repro.grid.resources import ResourceRequirement

__all__ = ["AppConfig", "ConfigError", "ParameterConfig", "StageConfig", "StreamConfig"]


class ConfigError(Exception):
    """Raised for malformed or inconsistent configurations."""


@dataclass(frozen=True)
class ParameterConfig:
    """Declarative form of an adjustment parameter (Section 3.3).

    ``direction`` mirrors the last argument of ``specifyPara``: +1 means
    increasing the value *increases* the processing rate (and typically
    lowers accuracy); -1 means increasing the value *decreases* the
    processing rate (more data retained, more accurate).
    """

    name: str
    init: float
    minimum: float
    maximum: float
    increment: float
    direction: int

    def __post_init__(self) -> None:
        if self.minimum > self.maximum:
            raise ConfigError(
                f"parameter {self.name!r}: min {self.minimum} > max {self.maximum}"
            )
        if not (self.minimum <= self.init <= self.maximum):
            raise ConfigError(
                f"parameter {self.name!r}: init {self.init} outside "
                f"[{self.minimum}, {self.maximum}]"
            )
        if self.increment <= 0:
            raise ConfigError(
                f"parameter {self.name!r}: increment must be > 0, got {self.increment}"
            )
        if self.direction not in (-1, 1):
            raise ConfigError(
                f"parameter {self.name!r}: direction must be +1 or -1, "
                f"got {self.direction}"
            )


@dataclass
class StageConfig:
    """One pipeline stage: code location, resources, parameters, properties."""

    name: str
    code_url: str
    requirement: ResourceRequirement = field(default_factory=ResourceRequirement)
    parameters: List[ParameterConfig] = field(default_factory=list)
    properties: Dict[str, str] = field(default_factory=dict)


@dataclass(frozen=True)
class StreamConfig:
    """A directed stream between two stages.

    ``item_size`` is the bytes-per-item used for link transmission-time
    accounting (the paper's integer streams use 4-8 byte items).
    """

    name: str
    src: str
    dst: str
    item_size: float = 8.0

    def __post_init__(self) -> None:
        if self.item_size <= 0:
            raise ConfigError(
                f"stream {self.name!r}: item-size must be > 0, got {self.item_size}"
            )
        if self.src == self.dst:
            raise ConfigError(f"stream {self.name!r}: src == dst ({self.src!r})")


@dataclass
class AppConfig:
    """A complete application description."""

    name: str
    stages: List[StageConfig] = field(default_factory=list)
    streams: List[StreamConfig] = field(default_factory=list)

    # -- validation -------------------------------------------------------

    def validate(self) -> None:
        """Check structural invariants; raise :class:`ConfigError` if broken.

        Invariants: non-empty name, at least one stage, unique stage and
        stream names, streams reference declared stages, and the stage
        graph is acyclic (GATES applications are pipelines/DAGs).
        """
        if not self.name:
            raise ConfigError("application name must be non-empty")
        if not self.stages:
            raise ConfigError(f"application {self.name!r} declares no stages")
        names = [s.name for s in self.stages]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate stage names in {self.name!r}")
        stream_names = [s.name for s in self.streams]
        if len(set(stream_names)) != len(stream_names):
            raise ConfigError(f"duplicate stream names in {self.name!r}")
        known = set(names)
        for stream in self.streams:
            for endpoint in (stream.src, stream.dst):
                if endpoint not in known:
                    raise ConfigError(
                        f"stream {stream.name!r} references unknown stage "
                        f"{endpoint!r}"
                    )
        graph = self.stage_graph()
        if not nx.is_directed_acyclic_graph(graph):
            cycle = nx.find_cycle(graph)
            raise ConfigError(f"stage graph has a cycle: {cycle}")

    def stage_graph(self) -> "nx.DiGraph":
        """The stage DAG (nodes = stage names, edges = streams)."""
        graph = nx.DiGraph()
        graph.add_nodes_from(s.name for s in self.stages)
        for stream in self.streams:
            graph.add_edge(stream.src, stream.dst, stream=stream)
        return graph

    def stage(self, name: str) -> StageConfig:
        """Look up a stage by name."""
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise ConfigError(f"no stage {name!r} in application {self.name!r}")

    def topological_stages(self) -> List[StageConfig]:
        """Stages in dependency order (sources first)."""
        order = list(nx.topological_sort(self.stage_graph()))
        return [self.stage(n) for n in order]

    def upstream_of(self, name: str) -> List[str]:
        """Names of stages feeding ``name``."""
        return sorted(self.stage_graph().predecessors(name))

    def downstream_of(self, name: str) -> List[str]:
        """Names of stages fed by ``name``."""
        return sorted(self.stage_graph().successors(name))

    # -- XML serialization ---------------------------------------------------

    def to_xml(self) -> str:
        """Serialize to the configuration document format."""
        root = ET.Element("application", name=self.name)
        for stage in self.stages:
            el = ET.SubElement(root, "stage", name=stage.name, code=stage.code_url)
            req = stage.requirement
            attrs: Dict[str, str] = {}
            if req.min_cores != 1:
                attrs["min-cores"] = str(req.min_cores)
            if req.min_memory_mb:
                attrs["min-memory-mb"] = repr(req.min_memory_mb)
            if req.min_speed_factor:
                attrs["min-speed-factor"] = repr(req.min_speed_factor)
            if req.placement_hint:
                attrs["placement"] = req.placement_hint
            if attrs or req.min_bandwidth_to:
                req_el = ET.SubElement(el, "requirement", attrs)
                for peer, bw in sorted(req.min_bandwidth_to.items()):
                    ET.SubElement(
                        req_el, "bandwidth", {"to": peer, "min": repr(bw)}
                    )
            for param in stage.parameters:
                ET.SubElement(
                    el,
                    "parameter",
                    name=param.name,
                    init=repr(param.init),
                    min=repr(param.minimum),
                    max=repr(param.maximum),
                    increment=repr(param.increment),
                    direction=str(param.direction),
                )
            for key, value in sorted(stage.properties.items()):
                ET.SubElement(el, "property", key=key, value=value)
        for stream in self.streams:
            ET.SubElement(
                root,
                "stream",
                {
                    "name": stream.name,
                    "from": stream.src,
                    "to": stream.dst,
                    "item-size": repr(stream.item_size),
                },
            )
        ET.indent(root)
        return ET.tostring(root, encoding="unicode")

    @classmethod
    def from_xml(cls, document: str) -> "AppConfig":
        """Parse and validate a configuration document."""
        try:
            root = ET.fromstring(document)
        except ET.ParseError as exc:
            raise ConfigError(f"malformed XML: {exc}") from exc
        if root.tag != "application":
            raise ConfigError(f"expected <application> root, got <{root.tag}>")
        name = root.get("name")
        if not name:
            raise ConfigError("<application> missing 'name' attribute")
        config = cls(name=name)
        for el in root:
            if not isinstance(el.tag, str):
                continue  # XML comments / processing instructions
            if el.tag == "stage":
                config.stages.append(cls._parse_stage(el))
            elif el.tag == "stream":
                config.streams.append(cls._parse_stream(el))
            else:
                raise ConfigError(f"unexpected element <{el.tag}>")
        config.validate()
        return config

    @staticmethod
    def _parse_stage(el: ET.Element) -> StageConfig:
        name = el.get("name")
        code = el.get("code")
        if not name or not code:
            raise ConfigError("<stage> requires 'name' and 'code' attributes")
        requirement = ResourceRequirement()
        parameters: List[ParameterConfig] = []
        properties: Dict[str, str] = {}
        for child in el:
            if not isinstance(child.tag, str):
                continue  # XML comments
            if child.tag == "requirement":
                bandwidth = {
                    b.get("to", ""): float(b.get("min", "0"))
                    for b in child.findall("bandwidth")
                }
                requirement = ResourceRequirement(
                    min_cores=int(child.get("min-cores", "1")),
                    min_memory_mb=float(child.get("min-memory-mb", "0")),
                    min_speed_factor=float(child.get("min-speed-factor", "0")),
                    placement_hint=child.get("placement"),
                    min_bandwidth_to=bandwidth,
                )
            elif child.tag == "parameter":
                try:
                    parameters.append(
                        ParameterConfig(
                            name=child.get("name", ""),
                            init=float(child.get("init", "nan")),
                            minimum=float(child.get("min", "nan")),
                            maximum=float(child.get("max", "nan")),
                            increment=float(child.get("increment", "nan")),
                            direction=int(child.get("direction", "0")),
                        )
                    )
                except ValueError as exc:
                    raise ConfigError(f"bad <parameter> in stage {name!r}: {exc}") from exc
            elif child.tag == "property":
                key = child.get("key")
                if not key:
                    raise ConfigError(f"<property> in stage {name!r} missing key")
                properties[key] = child.get("value", "")
            else:
                raise ConfigError(f"unexpected element <{child.tag}> in stage {name!r}")
        return StageConfig(
            name=name,
            code_url=code,
            requirement=requirement,
            parameters=parameters,
            properties=properties,
        )

    @staticmethod
    def _parse_stream(el: ET.Element) -> StreamConfig:
        name = el.get("name")
        src = el.get("from")
        dst = el.get("to")
        if not name or not src or not dst:
            raise ConfigError("<stream> requires 'name', 'from' and 'to'")
        return StreamConfig(
            name=name,
            src=src,
            dst=dst,
            item_size=float(el.get("item-size", "8.0")),
        )
