"""OGSA-style grid service containers and the GATES service instance.

In GT3, a *grid service* is a stateful web service instance created by a
factory, carrying a lifetime, and destroyable by clients.  GATES runs one
grid-service instance per pipeline stage; the Deployer "initiates instances
of GATES grid services at the nodes ... and uploads the stage specific
codes to every instance, thereby customizing it" (Section 3.2).

:class:`ServiceContainer` is the per-host hosting environment (one per
host, like a GT3 container listening on a port); it creates and tracks
:class:`GatesServiceInstance` objects.  An instance starts *created*, is
*customized* by uploading stage code, then *activated*; destruction is
explicit or via lifetime expiry.
"""

from __future__ import annotations

import enum
import itertools
from typing import Any, Callable, Dict, Optional

from repro.grid.registry import RegistryError, ServiceRegistry
from repro.simnet.hosts import Host

__all__ = ["GatesServiceInstance", "ServiceContainer", "ServiceError", "ServiceState"]


class ServiceError(Exception):
    """Raised on invalid service lifecycle transitions or lookups."""


class ServiceState(enum.Enum):
    """Lifecycle states of a grid service instance."""

    CREATED = "created"
    CUSTOMIZED = "customized"
    ACTIVE = "active"
    DESTROYED = "destroyed"


class GatesServiceInstance:
    """One GATES grid-service instance: the container cell for stage code.

    The instance is deliberately ignorant of stream semantics — it holds a
    *factory* for the user's stage processor plus opaque customization
    properties.  The runtime layer (:mod:`repro.core.runtime_sim`) later
    asks the instance to instantiate the processor.
    """

    _ids = itertools.count(1)

    def __init__(self, container: "ServiceContainer", name: str, lifetime: Optional[float]) -> None:
        self.container = container
        self.name = name
        self.instance_id = next(self._ids)
        self.state = ServiceState.CREATED
        self.created_at = container.host.env.now
        #: Absolute expiry time (None = unlimited), in the OGSA soft-state
        #: lifetime style; keepalive() extends it.
        self.expires_at: Optional[float] = (
            None if lifetime is None else self.created_at + lifetime
        )
        self._factory: Optional[Callable[..., Any]] = None
        self._properties: Dict[str, Any] = {}

    # -- lifecycle ---------------------------------------------------------

    def customize(self, factory: Callable[..., Any], **properties: Any) -> None:
        """Upload stage code (a processor factory) and its properties."""
        self._require_not_destroyed()
        if self.state is ServiceState.ACTIVE:
            raise ServiceError(f"{self.name}: cannot customize an active instance")
        self._factory = factory
        self._properties = dict(properties)
        self.state = ServiceState.CUSTOMIZED

    def activate(self) -> None:
        """Mark the instance ready to process; requires prior customization."""
        self._require_not_destroyed()
        if self.state is not ServiceState.CUSTOMIZED:
            raise ServiceError(f"{self.name}: activate before customize")
        self.state = ServiceState.ACTIVE

    def destroy(self) -> None:
        """Explicitly destroy the instance (idempotent)."""
        if self.state is ServiceState.DESTROYED:
            return
        self.state = ServiceState.DESTROYED
        self.container._forget(self.name)

    def keepalive(self, extension: float) -> None:
        """Extend the soft-state lifetime by ``extension`` seconds."""
        self._require_not_destroyed()
        if extension <= 0:
            raise ServiceError(f"keepalive extension must be > 0, got {extension}")
        if self.expires_at is not None:
            # OGSA-style set-termination-time: the new lifetime is counted
            # from now, not appended to the previous one.
            self.expires_at = self.container.host.env.now + extension

    @property
    def expired(self) -> bool:
        """True once the soft-state lifetime has lapsed."""
        return (
            self.expires_at is not None
            and self.container.host.env.now >= self.expires_at
        )

    # -- stage instantiation ------------------------------------------------

    def instantiate_processor(self, *args: Any, **kwargs: Any) -> Any:
        """Create the user's stage processor from the uploaded factory."""
        if self.state is not ServiceState.ACTIVE:
            raise ServiceError(
                f"{self.name}: processor requested in state {self.state.value}"
            )
        assert self._factory is not None
        return self._factory(*args, **kwargs)

    @property
    def properties(self) -> Dict[str, Any]:
        """Customization properties uploaded with the stage code."""
        return dict(self._properties)

    def _require_not_destroyed(self) -> None:
        if self.state is ServiceState.DESTROYED:
            raise ServiceError(f"{self.name}: instance destroyed")

    def __repr__(self) -> str:
        return (
            f"GatesServiceInstance({self.name!r}, id={self.instance_id}, "
            f"state={self.state.value}, host={self.container.host.name!r})"
        )


class ServiceContainer:
    """Per-host hosting environment for grid service instances."""

    def __init__(self, host: Host, registry: Optional[ServiceRegistry] = None) -> None:
        self.host = host
        self.registry = registry
        self._instances: Dict[str, GatesServiceInstance] = {}

    def create_instance(
        self, name: str, lifetime: Optional[float] = None
    ) -> GatesServiceInstance:
        """Factory operation: create a named service instance.

        The instance is also published in the registry (if attached) under
        ``gates/<host>/<name>`` so peers can discover it.
        """
        if name in self._instances:
            raise ServiceError(f"instance {name!r} already exists on {self.host.name}")
        instance = GatesServiceInstance(self, name, lifetime)
        self._instances[name] = instance
        if self.registry is not None:
            self.registry.register_service(self._registry_key(name), instance)
        return instance

    def instance(self, name: str) -> GatesServiceInstance:
        """Look up a live instance by name."""
        try:
            return self._instances[name]
        except KeyError:
            raise ServiceError(
                f"no instance {name!r} on host {self.host.name!r}"
            ) from None

    @property
    def instances(self) -> Dict[str, GatesServiceInstance]:
        return dict(self._instances)

    def reap_expired(self) -> int:
        """Destroy all instances whose lifetime lapsed; returns the count."""
        expired = [i for i in self._instances.values() if i.expired]
        for instance in expired:
            instance.destroy()
        return len(expired)

    def _forget(self, name: str) -> None:
        self._instances.pop(name, None)
        if self.registry is not None:
            try:
                self.registry.deregister_service(self._registry_key(name))
            except RegistryError:
                # Never registered (container created without activation
                # registration); nothing to deregister.
                pass

    def _registry_key(self, name: str) -> str:
        return f"gates/{self.host.name}/{name}"

    def __repr__(self) -> str:
        return f"ServiceContainer(host={self.host.name!r}, instances={len(self._instances)})"
