"""The Deployer: turns a validated configuration into placed service instances.

Section 3.2 enumerates the Deployer's responsibilities; each maps to a
step of :meth:`Deployer.deploy`:

1. receive the configuration information from the Launcher,
2. consult a grid resource manager (:class:`~repro.grid.matchmaker.Matchmaker`)
   to find nodes with the required resources,
3. initiate instances of GATES grid services at those nodes
   (:class:`~repro.grid.services.ServiceContainer`),
4. retrieve the stage codes from the application repositories
   (:class:`~repro.grid.repository.CodeRepository`),
5. upload the stage-specific codes to every instance, customizing it.

The result is a :class:`Deployment`: the mapping of stages to hosts plus
the activated service instances, ready for a runtime to wire streams and
start processing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.grid.config import AppConfig
from repro.grid.matchmaker import Matchmaker
from repro.grid.registry import ServiceRegistry
from repro.grid.repository import CodeRepository
from repro.grid.services import GatesServiceInstance, ServiceContainer

__all__ = ["Deployer", "Deployment", "DeploymentError", "Placement"]


class DeploymentError(Exception):
    """Raised when an application cannot be deployed."""


@dataclass(frozen=True)
class Placement:
    """One stage's placement decision."""

    stage_name: str
    host_name: str
    instance: GatesServiceInstance


@dataclass
class Deployment:
    """A deployed (but not yet running) application."""

    config: AppConfig
    placements: Dict[str, Placement] = field(default_factory=dict)

    def host_of(self, stage_name: str) -> str:
        """Host a stage was placed on."""
        try:
            return self.placements[stage_name].host_name
        except KeyError:
            raise DeploymentError(f"stage {stage_name!r} not placed") from None

    def instance_of(self, stage_name: str) -> GatesServiceInstance:
        """Service instance hosting a stage's code."""
        try:
            return self.placements[stage_name].instance
        except KeyError:
            raise DeploymentError(f"stage {stage_name!r} not placed") from None

    def hosts_used(self) -> List[str]:
        """Distinct hosts used, sorted."""
        return sorted({p.host_name for p in self.placements.values()})

    def teardown(self) -> None:
        """Destroy every service instance of this deployment."""
        for placement in self.placements.values():
            placement.instance.destroy()


class Deployer:
    """Deploys applications onto the grid fabric."""

    def __init__(
        self,
        registry: ServiceRegistry,
        repository: CodeRepository,
        service_lifetime: float | None = None,
    ) -> None:
        self.registry = registry
        self.repository = repository
        self.matchmaker = Matchmaker(registry)
        #: Soft-state lifetime for created instances (None = unlimited).
        self.service_lifetime = service_lifetime
        self._containers: Dict[str, ServiceContainer] = {}

    def container_for(self, host_name: str) -> ServiceContainer:
        """The (lazily created) service container on ``host_name``."""
        container = self._containers.get(host_name)
        if container is None:
            host = self.registry.network.host(host_name)
            container = ServiceContainer(host, registry=self.registry)
            self._containers[host_name] = container
        return container

    def verify(self, config: AppConfig) -> None:
        """Run the static verifier; raise on error-severity findings.

        The pre-deploy gate: the full multi-pass analysis of
        :mod:`repro.analysis.verifier` (graph, adaptation, code,
        checkpoint-contract, placement and wire passes) against this
        deployer's repository and registry.  Callers opt out with
        ``deploy(config, verify=False)`` — the API equivalent of the
        CLI's ``--no-verify``.
        """
        from repro.analysis.verifier import verify_config

        report = verify_config(
            config, repository=self.repository, registry=self.registry
        )
        if not report.ok:
            raise DeploymentError(
                f"configuration {config.name!r} failed verification "
                f"({report.summary_line()}):\n{report.render_text()}"
            )

    def deploy(self, config: AppConfig, verify: bool = True) -> Deployment:
        """Run the five-step deployment of Section 3.2.

        ``verify=False`` skips the static pre-deploy verifier (the
        structural ``config.validate()`` minimum still applies).
        """
        # Step 1: receive + validate configuration.
        config.validate()
        if verify:
            self.verify(config)

        # Expand sharded stages into their replica slots *after* the
        # verifier ran (diagnostics reference the declared stage names)
        # but *before* matchmaking, so every replica is placed
        # independently — the matchmaker's claimed-host exclusion then
        # spreads a group's replicas across distinct nodes whenever the
        # fabric has the capacity.  (Imported lazily: repro.core.sharding
        # itself depends on repro.grid.config.)
        from repro.core.sharding import expand_shards

        config = expand_shards(config)

        # Step 4 (hoisted): verify all stage code exists *before* touching
        # any node, so a bad code URL cannot leave a half deployment.
        factories = {}
        for stage in config.stages:
            try:
                factories[stage.name] = self.repository.fetch(stage.code_url)
            except Exception as exc:
                raise DeploymentError(
                    f"stage {stage.name!r}: cannot fetch code "
                    f"{stage.code_url!r}: {exc}"
                ) from exc

        # Step 2: consult the resource manager.
        requirements = [(s.name, s.requirement) for s in config.stages]
        try:
            assignment = self.matchmaker.match_all(requirements)
        except Exception as exc:
            raise DeploymentError(f"resource matching failed: {exc}") from exc

        # Steps 3 + 5: instantiate and customize service instances.
        deployment = Deployment(config=config)
        created: List[GatesServiceInstance] = []
        try:
            for stage in config.stages:
                host_name = assignment[stage.name]
                container = self.container_for(host_name)
                instance = container.create_instance(
                    f"{config.name}/{stage.name}", lifetime=self.service_lifetime
                )
                created.append(instance)
                instance.customize(factories[stage.name], **stage.properties)
                instance.activate()
                deployment.placements[stage.name] = Placement(
                    stage_name=stage.name,
                    host_name=host_name,
                    instance=instance,
                )
        except Exception as exc:
            for instance in created:
                instance.destroy()
            raise DeploymentError(f"deployment of {config.name!r} failed: {exc}") from exc
        return deployment
