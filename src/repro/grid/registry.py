"""MDS-like index service: hosts and service instances register here.

The Globus Monitoring and Discovery Service (MDS) let GT3 clients query
"which resources exist and what can they do".  :class:`ServiceRegistry`
provides the same two directories in-process:

* a *resource directory* of :class:`~repro.grid.resources.ResourceOffer`
  entries, fed from a :class:`~repro.simnet.topology.Network`;
* a *service directory* of running service instances (name -> handle),
  used by stages to locate their upstream/downstream peers after
  deployment, and by the user-facing API to find applications.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional

from repro.grid.resources import ResourceOffer
from repro.simnet.topology import Network

__all__ = ["RegistryError", "ServiceRegistry"]


class RegistryError(Exception):
    """Raised on duplicate registrations or failed lookups."""


class ServiceRegistry:
    """In-process stand-in for the Globus index service."""

    def __init__(self) -> None:
        self._offers: Dict[str, ResourceOffer] = {}
        self._services: Dict[str, Any] = {}
        self._network: Optional[Network] = None

    # -- resource directory ---------------------------------------------------

    def register_offer(self, offer: ResourceOffer) -> None:
        """Advertise a host; re-registration updates the entry."""
        self._offers[offer.host_name] = offer

    def register_network(self, network: Network, labels: Optional[Dict[str, Dict[str, str]]] = None) -> None:
        """Advertise every host of ``network`` and retain it for bandwidth queries.

        ``labels`` optionally maps host name -> label dict.
        """
        self._network = network
        labels = labels or {}
        for name, host in network.hosts.items():
            self.register_offer(
                ResourceOffer(
                    host_name=name,
                    cores=host.cores,
                    speed_factor=host.speed_factor,
                    memory_mb=host.memory_mb,
                    labels=labels.get(name, {}),
                )
            )

    @property
    def network(self) -> Network:
        """The registered network fabric (required for bandwidth matching)."""
        if self._network is None:
            raise RegistryError("no network registered")
        return self._network

    def offers(self) -> List[ResourceOffer]:
        """All advertised resource offers."""
        return list(self._offers.values())

    def offer(self, host_name: str) -> ResourceOffer:
        """The offer advertised by ``host_name``."""
        try:
            return self._offers[host_name]
        except KeyError:
            raise RegistryError(f"no offer registered for host {host_name!r}") from None

    def query_offers(self, predicate: Callable[[ResourceOffer], bool]) -> List[ResourceOffer]:
        """Offers matching an arbitrary predicate (label queries etc.)."""
        return [o for o in self._offers.values() if predicate(o)]

    def offers_with_label(self, key: str, value: Optional[str] = None) -> List[ResourceOffer]:
        """Offers carrying label ``key`` (optionally with a specific value)."""
        return self.query_offers(
            lambda o: key in o.labels and (value is None or o.labels[key] == value)
        )

    # -- service directory ------------------------------------------------------

    def register_service(self, name: str, handle: Any) -> None:
        """Publish a running service instance under a unique name."""
        if name in self._services:
            raise RegistryError(f"service {name!r} already registered")
        self._services[name] = handle

    def deregister_service(self, name: str) -> None:
        """Remove a service instance (idempotent removal is an error)."""
        if name not in self._services:
            raise RegistryError(f"service {name!r} not registered")
        del self._services[name]

    def lookup_service(self, name: str) -> Any:
        """Resolve a service handle by name."""
        try:
            return self._services[name]
        except KeyError:
            raise RegistryError(f"service {name!r} not found") from None

    def services(self, prefix: str = "") -> Dict[str, Any]:
        """All registered services, optionally filtered by name prefix."""
        return {n: h for n, h in self._services.items() if n.startswith(prefix)}

    def clear_services(self, names: Optional[Iterable[str]] = None) -> None:
        """Deregister the given services (or all of them)."""
        if names is None:
            self._services.clear()
            return
        for name in list(names):
            self._services.pop(name, None)
