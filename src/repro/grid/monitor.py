"""Grid monitoring service.

Section 1: "the system monitors the arrival rate at each source, the
available computing resources and memory, and the available network
bandwidth".  In GT3 this is the Monitoring and Discovery Service's data
side; here :class:`MonitoringService` is a simulation process that samples
the whole fabric on a fixed cadence:

* per-host: CPU utilization (busy core-seconds over the sampling period),
  cores in use, advertised memory;
* per-link: throughput over the period, utilization, queue of in-flight
  bytes is implicit in utilization;

and serves point-in-time :class:`FabricSnapshot` s plus full
:class:`~repro.simnet.trace.TimeSeries` histories.  The matchmaker can use
a snapshot to prefer currently-idle hosts (dynamic ranking), and the
experiment harness uses the histories for utilization reporting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Generator, Optional

from repro.simnet.engine import Environment, Process
from repro.simnet.topology import Network
from repro.simnet.trace import TimeSeries

if TYPE_CHECKING:
    from repro.obs.registry import MetricsRegistry

__all__ = ["FabricSnapshot", "HostSample", "LinkSample", "MonitoringService"]


@dataclass(frozen=True)
class HostSample:
    """One host's state over a sampling period."""

    host_name: str
    time: float
    utilization: float      # busy core-seconds / available core-seconds
    cores_in_use: int
    memory_mb: float


@dataclass(frozen=True)
class LinkSample:
    """One link direction's state over a sampling period."""

    link_name: str
    time: float
    throughput: float       # bytes/second delivered during the period
    utilization: float      # TX busy fraction during the period
    bandwidth: float


@dataclass
class FabricSnapshot:
    """Point-in-time view of the whole fabric."""

    time: float
    hosts: Dict[str, HostSample] = field(default_factory=dict)
    links: Dict[str, LinkSample] = field(default_factory=dict)

    def idlest_host(self) -> Optional[str]:
        """The host with the lowest utilization (ties break on name)."""
        if not self.hosts:
            return None
        return min(self.hosts.values(), key=lambda h: (h.utilization, h.host_name)).host_name

    def most_loaded_link(self) -> Optional[str]:
        """The link with the highest utilization (ties break on name)."""
        if not self.links:
            return None
        return max(self.links.values(), key=lambda l: (l.utilization, l.link_name)).link_name


class MonitoringService:
    """Samples hosts and links on a cadence; keeps histories.

    Start with :meth:`start` (spawns a simulation process); stop it by
    letting the environment drain or via :meth:`stop`.
    """

    def __init__(
        self,
        env: Environment,
        network: Network,
        interval: float = 1.0,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        """``registry`` (a :class:`~repro.obs.registry.MetricsRegistry`)
        is optional; when given, the fabric histories are additionally
        published as ``host.<host>.utilization``, ``link.<link>.throughput``
        and ``link.<link>.utilization`` series metrics.
        """
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        self.env = env
        self.network = network
        self.interval = float(interval)
        self.registry = registry
        self._host_util: Dict[str, TimeSeries] = {}
        self._link_tput: Dict[str, TimeSeries] = {}
        self._link_util: Dict[str, TimeSeries] = {}
        self._last_busy: Dict[str, float] = {}
        self._last_bytes: Dict[str, float] = {}
        self._snapshot: Optional[FabricSnapshot] = None
        self._process: Optional[Process] = None
        self._stopped = False

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> Process:
        """Begin sampling; returns the monitor process."""
        if self._process is not None:
            raise RuntimeError("monitoring service already started")
        for name in self.network.hosts:
            self._host_util[name] = TimeSeries(f"host:{name}:utilization")
            self._last_busy[name] = self.network.host(name).busy_time
            if self.registry is not None:
                self.registry.series(
                    f"host.{name}.utilization", self._host_util[name]
                )
        for src, dst, link in self.network.edges():
            self._link_tput[link.name] = TimeSeries(f"link:{link.name}:throughput")
            self._link_util[link.name] = TimeSeries(f"link:{link.name}:utilization")
            self._last_bytes[link.name] = link.stats.bytes
            if self.registry is not None:
                self.registry.series(
                    f"link.{link.name}.throughput", self._link_tput[link.name]
                )
                self.registry.series(
                    f"link.{link.name}.utilization", self._link_util[link.name]
                )
                link.bind_metrics(self.registry)
        self._process = self.env.process(self._run(), name="monitoring-service")
        return self._process

    def stop(self) -> None:
        """Stop sampling at the next tick."""
        self._stopped = True

    def _run(self) -> Generator:
        while not self._stopped:
            yield self.env.timeout(self.interval)
            self._sample()

    # -- sampling ----------------------------------------------------------------

    def _sample(self) -> None:
        now = self.env.now
        snapshot = FabricSnapshot(time=now)
        for name, host in self.network.hosts.items():
            busy = host.busy_time
            delta = busy - self._last_busy[name]
            self._last_busy[name] = busy
            utilization = min(1.0, delta / (self.interval * host.cores))
            self._host_util[name].record(now, utilization)
            snapshot.hosts[name] = HostSample(
                host_name=name,
                time=now,
                utilization=utilization,
                cores_in_use=host.cpu.in_use,
                memory_mb=host.memory_mb,
            )
        for src, dst, link in self.network.edges():
            total = link.stats.bytes
            delta_bytes = total - self._last_bytes[link.name]
            self._last_bytes[link.name] = total
            throughput = delta_bytes / self.interval
            utilization = min(1.0, throughput / link.bandwidth) if link.bandwidth else 0.0
            self._link_tput[link.name].record(now, throughput)
            self._link_util[link.name].record(now, utilization)
            snapshot.links[link.name] = LinkSample(
                link_name=link.name,
                time=now,
                throughput=throughput,
                utilization=utilization,
                bandwidth=link.bandwidth,
            )
        self._snapshot = snapshot

    # -- queries --------------------------------------------------------------------

    @property
    def snapshot(self) -> FabricSnapshot:
        """The most recent fabric snapshot."""
        if self._snapshot is None:
            raise RuntimeError("no samples yet (did you start() and run?)")
        return self._snapshot

    def host_utilization(self, host_name: str) -> TimeSeries:
        """Utilization history of a host."""
        try:
            return self._host_util[host_name]
        except KeyError:
            raise KeyError(f"unknown host {host_name!r}") from None

    def link_throughput(self, link_name: str) -> TimeSeries:
        """Delivered-bytes/second history of a link direction."""
        try:
            return self._link_tput[link_name]
        except KeyError:
            raise KeyError(f"unknown link {link_name!r}") from None

    def link_utilization(self, link_name: str) -> TimeSeries:
        """TX-busy-fraction history of a link direction."""
        try:
            return self._link_util[link_name]
        except KeyError:
            raise KeyError(f"unknown link {link_name!r}") from None
