"""OGSA/Globus-like grid services substrate.

GATES was built on the Open Grid Services Architecture using Globus
Toolkit 3.0 for resource discovery, matching, and service deployment.
This package reproduces those *semantics* in-process (see DESIGN.md for the
substitution rationale):

* :mod:`repro.grid.resources` — resource descriptions and requirements.
* :mod:`repro.grid.registry` — an MDS-like index service where hosts and
  running service instances register and can be queried.
* :mod:`repro.grid.matchmaker` — the broker matching stage requirements
  to registered resources (the "automatic resource discovery and matching"
  of Section 3.1, goal 1).
* :mod:`repro.grid.services` — OGSA-style service containers with
  lifetimes; the GATES grid-service instance that hosts user stage code.
* :mod:`repro.grid.repository` — the application code repository from
  which the Deployer retrieves stage implementations.
* :mod:`repro.grid.config` — the XML application configuration format
  written by application developers.
* :mod:`repro.grid.launcher` / :mod:`repro.grid.deployer` — the Launcher
  (parses configuration) and Deployer (finds nodes, instantiates GATES
  service instances, uploads stage code) of Section 3.2.
"""

from repro.grid.config import AppConfig, ConfigError, StageConfig, StreamConfig
from repro.grid.deployer import Deployer, Deployment, DeploymentError, Placement
from repro.grid.faults import FaultInjector, FaultPlan, Redeployer
from repro.grid.launcher import Launcher
from repro.grid.matchmaker import Matchmaker, MatchError
from repro.grid.monitor import FabricSnapshot, MonitoringService
from repro.grid.registry import RegistryError, ServiceRegistry
from repro.grid.repository import CodeRepository, RepositoryError
from repro.grid.resources import ResourceOffer, ResourceRequirement
from repro.grid.stream_sources import (
    StreamSourceDescriptor,
    bind_registered_streams,
    register_stream_source,
    registered_streams,
)
from repro.grid.services import (
    GatesServiceInstance,
    ServiceContainer,
    ServiceError,
    ServiceState,
)

__all__ = [
    "AppConfig",
    "CodeRepository",
    "ConfigError",
    "Deployer",
    "Deployment",
    "DeploymentError",
    "FabricSnapshot",
    "FaultInjector",
    "FaultPlan",
    "GatesServiceInstance",
    "Launcher",
    "MatchError",
    "Matchmaker",
    "MonitoringService",
    "Redeployer",
    "Placement",
    "RegistryError",
    "RepositoryError",
    "ResourceOffer",
    "ResourceRequirement",
    "ServiceContainer",
    "ServiceError",
    "ServiceRegistry",
    "ServiceState",
    "StageConfig",
    "StreamConfig",
    "StreamSourceDescriptor",
    "bind_registered_streams",
    "register_stream_source",
    "registered_streams",
]
