"""Registered data-stream sources.

Section 1: the user "need not be concerned with the details like
discovering and allocating grid resources, *registering their own data
stream's web services* and deploying the web services."  In GT3 terms a
data stream is itself a discoverable service; here a
:class:`StreamSourceDescriptor` published into the
:class:`~repro.grid.registry.ServiceRegistry` describes where a stream
arrives, how fast, and how to obtain its payloads — and
:func:`bind_registered_streams` turns a deployment's leaf stages plus the
registered descriptors into runtime source bindings automatically.

The descriptor's ``host`` is where the stream physically arrives; binding
verifies the receiving stage was actually placed there (the whole point
of near-source placement), failing loudly on a mismatch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, Iterable, List, Optional

from repro.grid.deployer import Deployment
from repro.grid.registry import ServiceRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle: runtime imports grid
    from repro.core.runtime_sim import SimulatedRuntime, SourceBinding

__all__ = [
    "StreamSourceDescriptor",
    "bind_registered_streams",
    "register_stream_source",
    "registered_streams",
]

#: Registry-key prefix for stream-source entries.
STREAM_PREFIX = "stream/"


@dataclass
class StreamSourceDescriptor:
    """A discoverable data stream.

    Attributes
    ----------
    name:
        Unique stream name (registry key ``stream/<name>``).
    host:
        Host where the stream arrives (instrument location).
    payload_factory:
        Zero-argument callable producing the payload iterable; called
        once per binding so a descriptor can be re-used across runs.
    rate:
        Arrival rate in items/second (None = as fast as consumable).
    item_size:
        Bytes per item (or payload -> bytes callable).
    arrivals_factory:
        Optional zero-argument callable producing an
        :class:`~repro.streams.arrivals.ArrivalProcess`; overrides
        ``rate``.
    metadata:
        Free-form labels (instrument type, site, units ...).
    """

    name: str
    host: str
    payload_factory: Callable[[], Iterable[Any]]
    rate: Optional[float] = None
    item_size: float | Callable[[Any], float] = 8.0
    arrivals_factory: Optional[Callable[[], Any]] = None
    metadata: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("stream name must be non-empty")
        if not callable(self.payload_factory):
            raise TypeError("payload_factory must be callable")
        if self.rate is not None and self.rate <= 0:
            raise ValueError(f"rate must be > 0, got {self.rate}")

    def to_binding(self, target_stage: str) -> "SourceBinding":
        """Materialize a runtime binding feeding ``target_stage``."""
        from repro.core.runtime_sim import SourceBinding

        return SourceBinding(
            name=self.name,
            target_stage=target_stage,
            payloads=self.payload_factory(),
            rate=self.rate,
            item_size=self.item_size,
            arrivals=self.arrivals_factory() if self.arrivals_factory else None,
        )


def register_stream_source(
    registry: ServiceRegistry, descriptor: StreamSourceDescriptor
) -> None:
    """Publish a stream source (validates the host exists in the fabric)."""
    registry.network.host(descriptor.host)  # existence check
    registry.register_service(STREAM_PREFIX + descriptor.name, descriptor)


def registered_streams(registry: ServiceRegistry) -> Dict[str, StreamSourceDescriptor]:
    """All registered stream descriptors, keyed by stream name."""
    return {
        key[len(STREAM_PREFIX):]: descriptor
        for key, descriptor in registry.services(prefix=STREAM_PREFIX).items()
    }


def bind_registered_streams(
    runtime: "SimulatedRuntime",
    registry: ServiceRegistry,
    deployment: Deployment,
    assignments: Dict[str, str],
) -> List["SourceBinding"]:
    """Bind registered streams to stages: ``{stream_name: stage_name}``.

    For each pair, the descriptor is looked up in the registry and the
    receiving stage's placement is checked against the stream's host —
    a stage not co-located with its stream would silently skip the
    network cost the placement was supposed to model, so that is an
    error, not a warning.
    """
    streams = registered_streams(registry)
    bindings: List[SourceBinding] = []
    for stream_name, stage_name in assignments.items():
        descriptor = streams.get(stream_name)
        if descriptor is None:
            raise KeyError(
                f"no stream {stream_name!r} registered "
                f"(have {sorted(streams)})"
            )
        placed_on = deployment.host_of(stage_name)
        if placed_on != descriptor.host:
            raise ValueError(
                f"stage {stage_name!r} is on {placed_on!r} but stream "
                f"{stream_name!r} arrives at {descriptor.host!r}; "
                "fix the placement hint or the assignment"
            )
        binding = descriptor.to_binding(stage_name)
        runtime.bind_source(binding)
        bindings.append(binding)
    return bindings
