"""Resource descriptions and requirements for grid matchmaking.

A :class:`ResourceOffer` is what a host advertises to the registry (the
MDS GLUE-schema analogue); a :class:`ResourceRequirement` is what a stage
declares in the application configuration.  The matchmaker scores offers
against requirements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = ["ResourceOffer", "ResourceRequirement"]


@dataclass(frozen=True)
class ResourceRequirement:
    """A stage's declared resource needs.

    Attributes
    ----------
    min_cores:
        Minimum CPU cores the stage needs on its host.
    min_memory_mb:
        Minimum advertised memory.
    min_speed_factor:
        Minimum relative CPU speed.
    placement_hint:
        Optional host name (or ``near:<host>`` to request adjacency to a
        stream source) steering placement; the paper places first-stage
        filters "near sources of individual streams".
    min_bandwidth_to:
        Map of peer host name -> minimum required path bandwidth
        (bytes/second).  Lets the configuration express "needs a fat pipe
        to the central analysis node".
    """

    min_cores: int = 1
    min_memory_mb: float = 0.0
    min_speed_factor: float = 0.0
    placement_hint: Optional[str] = None
    min_bandwidth_to: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.min_cores < 1:
            raise ValueError(f"min_cores must be >= 1, got {self.min_cores}")
        if self.min_memory_mb < 0:
            raise ValueError(f"min_memory_mb must be >= 0, got {self.min_memory_mb}")
        if self.min_speed_factor < 0:
            raise ValueError(
                f"min_speed_factor must be >= 0, got {self.min_speed_factor}"
            )
        for peer, bw in self.min_bandwidth_to.items():
            if bw <= 0:
                raise ValueError(f"min bandwidth to {peer!r} must be > 0, got {bw}")


@dataclass(frozen=True)
class ResourceOffer:
    """A host's advertised capabilities, as stored in the registry."""

    host_name: str
    cores: int
    speed_factor: float
    memory_mb: float
    #: Free-form labels (site, administrative domain, instrument type ...).
    labels: Dict[str, str] = field(default_factory=dict)

    def satisfies(self, requirement: ResourceRequirement) -> bool:
        """Static (bandwidth-agnostic) feasibility check."""
        return (
            self.cores >= requirement.min_cores
            and self.memory_mb >= requirement.min_memory_mb
            and self.speed_factor >= requirement.min_speed_factor
        )

    def score(self, requirement: ResourceRequirement) -> float:
        """Headroom score used to rank feasible offers (higher = better).

        Normalized slack in each dimension; a simple scalarization that
        prefers hosts with the most spare capacity, which spreads stages
        across the grid the way the GT3 broker's default ranking did.
        """
        if not self.satisfies(requirement):
            return float("-inf")
        core_slack = (self.cores - requirement.min_cores) / max(self.cores, 1)
        mem_slack = 0.0
        if self.memory_mb > 0:
            mem_slack = (self.memory_mb - requirement.min_memory_mb) / self.memory_mb
        speed_slack = self.speed_factor - requirement.min_speed_factor
        return core_slack + mem_slack + speed_slack
