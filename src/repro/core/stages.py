"""Reusable stage operators.

The paper's API asks developers to write each stage from scratch; a
practical middleware ships the common ones.  These are ordinary
:class:`~repro.core.api.StreamProcessor` s usable in any runtime:

* :class:`MapStage` / :class:`FilterStage` — per-item transform / predicate;
* :class:`BatchStage` — groups N items into one message (amortizes
  per-message link overhead, the classic edge optimization);
* :class:`TumblingWindowStage` / :class:`SlidingWindowStage` — windowed
  aggregation over item counts;
* :class:`AdaptiveSampleStage` — a ready-made sampler exposing the
  paper's canonical sampling-rate adjustment parameter;
* :class:`CollectStage` — in-memory sink for tests and examples.

All size accounting is explicit: transforms take a ``size_of`` callable
(defaulting to a fixed item size) so the simulated network stays honest.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, List, Optional

from repro.core.api import StageContext, StreamProcessor
from repro.simnet.hosts import CpuCostModel
from repro.streams.sampling import SystematicSampler

__all__ = [
    "AdaptiveSampleStage",
    "BatchStage",
    "CollectStage",
    "FilterStage",
    "MapStage",
    "SlidingWindowStage",
    "TumblingWindowStage",
]


def _fixed_size(size: float) -> Callable[[Any], float]:
    return lambda payload: size


class MapStage(StreamProcessor):
    """Applies ``fn`` to every item and forwards the result."""

    cost_model = CpuCostModel(per_item=1e-5)

    def __init__(
        self,
        fn: Callable[[Any], Any],
        size_of: Callable[[Any], float] | float = 8.0,
    ) -> None:
        if not callable(fn):
            raise TypeError(f"fn must be callable, got {fn!r}")
        self.fn = fn
        self.size_of = size_of if callable(size_of) else _fixed_size(float(size_of))

    def on_item(self, payload: Any, context: StageContext) -> None:
        """Emit ``fn(payload)`` with its accounted size."""
        result = self.fn(payload)
        context.emit(result, size=self.size_of(result))


class FilterStage(StreamProcessor):
    """Forwards only items for which ``predicate`` is true."""

    cost_model = CpuCostModel(per_item=1e-5)

    def __init__(
        self,
        predicate: Callable[[Any], bool],
        size_of: Callable[[Any], float] | float = 8.0,
    ) -> None:
        if not callable(predicate):
            raise TypeError(f"predicate must be callable, got {predicate!r}")
        self.predicate = predicate
        self.size_of = size_of if callable(size_of) else _fixed_size(float(size_of))
        self.dropped = 0

    def on_item(self, payload: Any, context: StageContext) -> None:
        """Forward ``payload`` if the predicate holds; count it otherwise."""
        if self.predicate(payload):
            context.emit(payload, size=self.size_of(payload))
        else:
            self.dropped += 1

    def snapshot(self) -> dict:
        """Checkpoint the dropped-item counter."""
        return {"dropped": self.dropped}

    def restore(self, state: dict) -> None:
        """Restore the dropped-item counter from a checkpoint."""
        self.dropped = int(state["dropped"])


class BatchStage(StreamProcessor):
    """Groups ``batch_size`` items into one list-valued message.

    A partial trailing batch is emitted at flush.  Message size is the sum
    of the member sizes plus a fixed framing overhead.
    """

    cost_model = CpuCostModel(per_item=5e-6)

    def __init__(
        self,
        batch_size: int,
        item_size: float = 8.0,
        framing_bytes: float = 16.0,
    ) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if item_size < 0 or framing_bytes < 0:
            raise ValueError("sizes must be >= 0")
        self.batch_size = batch_size
        self.item_size = item_size
        self.framing_bytes = framing_bytes
        self._buffer: List[Any] = []

    def on_item(self, payload: Any, context: StageContext) -> None:
        """Buffer ``payload``; emit the batch once it reaches ``batch_size``."""
        self._buffer.append(payload)
        if len(self._buffer) >= self.batch_size:
            self._emit(context)

    def flush(self, context: StageContext) -> None:
        """Emit any partial trailing batch at end of stream."""
        if self._buffer:
            self._emit(context)

    def _emit(self, context: StageContext) -> None:
        batch, self._buffer = self._buffer, []
        size = self.framing_bytes + self.item_size * len(batch)
        context.emit(batch, size=size)

    def snapshot(self) -> dict:
        """Checkpoint the partially-filled batch buffer."""
        return {"buffer": list(self._buffer)}

    def restore(self, state: dict) -> None:
        """Restore the partially-filled batch buffer from a checkpoint."""
        self._buffer = list(state["buffer"])


class TumblingWindowStage(StreamProcessor):
    """Aggregates disjoint windows of ``window`` items with ``aggregate``.

    ``aggregate`` receives the window's items (a list) and returns the
    value to emit.  A partial trailing window is aggregated at flush.
    """

    cost_model = CpuCostModel(per_item=1e-5)

    def __init__(
        self,
        window: int,
        aggregate: Callable[[List[Any]], Any],
        size_of: Callable[[Any], float] | float = 8.0,
    ) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if not callable(aggregate):
            raise TypeError(f"aggregate must be callable, got {aggregate!r}")
        self.window = window
        self.aggregate = aggregate
        self.size_of = size_of if callable(size_of) else _fixed_size(float(size_of))
        self._buffer: List[Any] = []

    def on_item(self, payload: Any, context: StageContext) -> None:
        """Buffer ``payload``; aggregate + emit when the window fills."""
        self._buffer.append(payload)
        if len(self._buffer) >= self.window:
            self._emit(context)

    def flush(self, context: StageContext) -> None:
        """Aggregate + emit any partial trailing window at end of stream."""
        if self._buffer:
            self._emit(context)

    def _emit(self, context: StageContext) -> None:
        window, self._buffer = self._buffer, []
        value = self.aggregate(window)
        context.emit(value, size=self.size_of(value))

    def snapshot(self) -> dict:
        """Checkpoint the in-progress window."""
        return {"buffer": list(self._buffer)}

    def restore(self, state: dict) -> None:
        """Restore the in-progress window from a checkpoint."""
        self._buffer = list(state["buffer"])


class SlidingWindowStage(StreamProcessor):
    """Aggregates a sliding window, emitting every ``slide`` items.

    Keeps the last ``window`` items; once the window has filled, emits
    ``aggregate(window_items)`` after every ``slide`` further arrivals.
    """

    cost_model = CpuCostModel(per_item=1e-5)

    def __init__(
        self,
        window: int,
        slide: int,
        aggregate: Callable[[List[Any]], Any],
        size_of: Callable[[Any], float] | float = 8.0,
    ) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if slide < 1:
            raise ValueError(f"slide must be >= 1, got {slide}")
        if not callable(aggregate):
            raise TypeError(f"aggregate must be callable, got {aggregate!r}")
        self.window = window
        self.slide = slide
        self.aggregate = aggregate
        self.size_of = size_of if callable(size_of) else _fixed_size(float(size_of))
        self._buffer: Deque[Any] = deque(maxlen=window)
        self._since_emit = 0

    def on_item(self, payload: Any, context: StageContext) -> None:
        """Slide ``payload`` into the window; emit on the slide cadence."""
        self._buffer.append(payload)
        if len(self._buffer) < self.window:
            return
        self._since_emit += 1
        # First emission as soon as the window fills, then every `slide`.
        if self._since_emit == 1 or self._since_emit > self.slide:
            value = self.aggregate(list(self._buffer))
            context.emit(value, size=self.size_of(value))
            self._since_emit = 1

    def snapshot(self) -> dict:
        """Checkpoint the window contents and the slide phase."""
        return {"buffer": list(self._buffer), "since_emit": self._since_emit}

    def restore(self, state: dict) -> None:
        """Restore the window contents and slide phase from a checkpoint."""
        self._buffer = deque(state["buffer"], maxlen=self.window)
        self._since_emit = int(state["since_emit"])


class AdaptiveSampleStage(StreamProcessor):
    """A ready-made sampler with the paper's sampling-rate parameter.

    Equivalent to Section 3.3's ``Sampler`` example: declares
    ``sampling-rate`` with the supplied bounds and forwards the
    middleware-chosen fraction of items (systematic sampling, so the kept
    fraction is deterministic given the rate trajectory).
    """

    cost_model = CpuCostModel(per_item=1e-5)

    def __init__(
        self,
        initial_rate: float = 0.2,
        minimum: float = 0.01,
        maximum: float = 1.0,
        increment: float = 0.01,
        item_size: float = 8.0,
    ) -> None:
        self.initial_rate = initial_rate
        self.minimum = minimum
        self.maximum = maximum
        self.increment = increment
        self.item_size = item_size
        self._sampler: Optional[SystematicSampler] = None

    def setup(self, context: StageContext) -> None:
        """Declare the ``sampling-rate`` parameter and build the sampler."""
        context.specify_parameter(
            "sampling-rate",
            initial=self.initial_rate,
            minimum=self.minimum,
            maximum=self.maximum,
            increment=self.increment,
            direction=-1,
        )
        self._sampler = SystematicSampler(self.initial_rate)

    def on_item(self, payload: Any, context: StageContext) -> None:
        """Forward the middleware-suggested fraction of items."""
        assert self._sampler is not None
        self._sampler.rate = context.get_suggested_value("sampling-rate")
        if self._sampler.offer(payload):
            context.emit(payload, size=self.item_size)

    def result(self) -> dict:
        """``{"seen", "kept"}`` counters of the underlying sampler."""
        assert self._sampler is not None
        return {"seen": self._sampler.seen, "kept": self._sampler.kept}

    def snapshot(self) -> dict:
        """Checkpoint the sampler's credit and counters."""
        assert self._sampler is not None
        return {
            "credit": self._sampler._credit,
            "seen": self._sampler.seen,
            "kept": self._sampler.kept,
        }

    def restore(self, state: dict) -> None:
        """Rewind the sampler's credit and counters from a checkpoint."""
        # setup() has already built a fresh sampler; rewind its counters.
        assert self._sampler is not None
        self._sampler._credit = float(state["credit"])
        self._sampler.seen = int(state["seen"])
        self._sampler.kept = int(state["kept"])


class CollectStage(StreamProcessor):
    """In-memory sink; ``result()`` returns everything received."""

    cost_model = CpuCostModel()

    def __init__(self, limit: Optional[int] = None) -> None:
        if limit is not None and limit < 1:
            raise ValueError(f"limit must be >= 1 or None, got {limit}")
        self.limit = limit
        self.items: List[Any] = []
        self.overflowed = 0

    def on_item(self, payload: Any, context: StageContext) -> None:
        """Store ``payload`` (or count it as overflow past ``limit``)."""
        if self.limit is None or len(self.items) < self.limit:
            self.items.append(payload)
        else:
            self.overflowed += 1

    def result(self) -> List[Any]:
        """Everything received so far, in arrival order."""
        return list(self.items)

    def snapshot(self) -> dict:
        """Checkpoint collected items and the overflow counter."""
        return {"items": list(self.items), "overflowed": self.overflowed}

    def restore(self, state: dict) -> None:
        """Restore collected items and the overflow counter."""
        self.items = list(state["items"])
        self.overflowed = int(state["overflowed"])
