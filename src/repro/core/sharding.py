"""Key-partitioned stage replicas (sharding) and the elastic scaling model.

A GATES stage normally runs as one service instance.  This module
generalizes the channel model so any stage can run as ``N``
key-partitioned replicas, on every runtime, from the *same*
configuration: a stage declaring the ``replicas`` property is expanded
by :func:`expand_shards` into ``N`` replica stages named
``<stage>#<i>``, and every stream touching the stage is split into one
edge per replica.  Runtimes then route each emitted item to exactly one
replica — the **owner** of the item's key under the group's
:class:`Partitioner` — so the per-key arrival order is preserved: a key
maps to one replica, and every edge is FIFO.

The scaling half closes the paper's Section-4 control loop: the same
queue-occupancy signal the adaptation algorithm samples is fed to a
:class:`ShardScaler`, a pure decision procedure that turns sustained
queue-band breaches into scale-up decisions and sustained idleness into
scale-down decisions (the Grid-brokering direction of the related work).
The :class:`~repro.core.runtime_threads.ThreadedRuntime` executes those
decisions live; the simulated and networked runtimes run the static
replica count.  See ``docs/sharding.md`` for the documented model
(:func:`check_docs` keeps that document and :data:`KNOBS` in lockstep).

Everything here is deterministic: partition mapping uses a stable CRC-32
hash (Python's ``hash`` is salted per process, which would break
cross-process agreement in the networked runtime), and the scaler is a
pure function of its observation sequence.
"""

from __future__ import annotations

import re
import zlib
from bisect import bisect_left
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.grid.config import AppConfig, ConfigError, StageConfig, StreamConfig

__all__ = [
    "HashPartitioner",
    "KNOBS",
    "Partitioner",
    "RangePartitioner",
    "ScalingPolicy",
    "ShardGroup",
    "ShardScaler",
    "ShardingError",
    "check_docs",
    "default_docs_path",
    "documented_knobs",
    "expand_shards",
    "export_keyed_state",
    "extract_key",
    "groups_of",
    "import_keyed_state",
    "logical_stream",
    "parse_replica",
    "partitioner_from_properties",
    "replica_name",
    "stable_hash",
    "validate_shard_properties",
]

#: Separator between a stage's base name and its replica index.  Never a
#: dot: replica names instantiate ``stage.{stage}.*`` metric templates,
#: whose placeholders match any dot-free run of characters.
SHARD_SEPARATOR = "#"

# -- configuration property keys (the documented scaling knobs) ------------

REPLICAS_PROPERTY = "replicas"
SHARD_BY_PROPERTY = "shard-by"
PARTITIONER_PROPERTY = "shard-partitioner"
BOUNDARIES_PROPERTY = "shard-boundaries"
SCALE_MIN_PROPERTY = "scale-min-replicas"
SCALE_MAX_PROPERTY = "scale-max-replicas"
SCALE_UP_OCCUPANCY_PROPERTY = "scale-up-occupancy"
SCALE_DOWN_OCCUPANCY_PROPERTY = "scale-down-occupancy"
SCALE_BREACH_SAMPLES_PROPERTY = "scale-breach-samples"
SCALE_IDLE_SAMPLES_PROPERTY = "scale-idle-samples"
SCALE_COOLDOWN_SAMPLES_PROPERTY = "scale-cooldown-samples"

# -- properties stamped onto replicas by expand_shards ---------------------

SHARD_GROUP_PROPERTY = "shard-group"
SHARD_INDEX_PROPERTY = "shard-index"
SHARD_COUNT_PROPERTY = "shard-count"
SHARD_ACTIVE_PROPERTY = "shard-active"

#: The user-facing sharding/autoscaling knobs, single source of truth for
#: the ``docs/sharding.md`` knobs table (diffed by :func:`check_docs`).
KNOBS: Dict[str, str] = {
    REPLICAS_PROPERTY: "replica count the stage starts with (>= 1)",
    SHARD_BY_PROPERTY: "key extractor: payload | field:<name> | index:<i>",
    PARTITIONER_PROPERTY: "partition function: hash (default) | range",
    BOUNDARIES_PROPERTY: "sorted comma-separated range boundaries (range only)",
    SCALE_MIN_PROPERTY: "elastic floor on the active replica count",
    SCALE_MAX_PROPERTY: "elastic ceiling; also the number of replica slots",
    SCALE_UP_OCCUPANCY_PROPERTY: "mean queue occupancy that counts as a breach",
    SCALE_DOWN_OCCUPANCY_PROPERTY: "mean queue occupancy that counts as idle",
    SCALE_BREACH_SAMPLES_PROPERTY: "consecutive breach samples before scale-up",
    SCALE_IDLE_SAMPLES_PROPERTY: "consecutive idle samples before scale-down",
    SCALE_COOLDOWN_SAMPLES_PROPERTY: "samples ignored after each transition",
}

_SHARD_BY_FIELD = re.compile(r"^field:(?P<name>.+)$")
_SHARD_BY_INDEX = re.compile(r"^index:(?P<index>\d+)$")


class ShardingError(ConfigError):
    """Raised for invalid sharding or scaling configuration."""


def stable_hash(key: Any) -> int:
    """Process-independent 32-bit hash of a partition key.

    Arguments:
        key: Any value with a stable ``repr`` (ints, strings, bytes,
            floats, tuples of those...).  ``bytes`` hash their content
            directly; everything else hashes its UTF-8 encoded ``repr``.

    Returns:
        A non-negative integer below 2**32, identical across processes
        and platforms — unlike ``hash()``, whose per-process salt would
        let the coordinator and a worker disagree about key ownership.
    """
    if isinstance(key, bytes):
        data = key
    elif isinstance(key, str):
        data = key.encode("utf-8")
    else:
        data = repr(key).encode("utf-8")
    return zlib.crc32(data) & 0xFFFFFFFF


def extract_key(payload: Any, shard_by: str) -> Any:
    """Pull the partition key out of a payload per the ``shard-by`` spec.

    Arguments:
        payload: The emitted item payload.
        shard_by: ``"payload"`` (the payload itself is the key),
            ``"field:<name>"`` (mapping entry or attribute ``<name>``),
            or ``"index:<i>"`` (``payload[i]`` of a sequence).

    Returns:
        The partition key.

    Raises:
        ShardingError: If the spec is malformed or the payload lacks the
            requested field/index.
    """
    if shard_by == "payload":
        return payload
    match = _SHARD_BY_FIELD.match(shard_by)
    if match:
        name = match.group("name")
        if isinstance(payload, dict):
            try:
                return payload[name]
            except KeyError:
                raise ShardingError(
                    f"shard-by field {name!r} missing from payload {payload!r}"
                ) from None
        try:
            return getattr(payload, name)
        except AttributeError:
            raise ShardingError(
                f"shard-by field {name!r} missing from payload {payload!r}"
            ) from None
    match = _SHARD_BY_INDEX.match(shard_by)
    if match:
        index = int(match.group("index"))
        try:
            return payload[index]
        except (TypeError, IndexError, KeyError):
            raise ShardingError(
                f"shard-by index {index} not addressable in payload {payload!r}"
            ) from None
    raise ShardingError(
        f"invalid shard-by spec {shard_by!r} "
        "(want payload | field:<name> | index:<i>)"
    )


class Partitioner:
    """Maps a partition key to a replica index in ``[0, count)``."""

    def select(self, key: Any, count: int) -> int:
        """Choose the owning replica index for ``key``.

        Arguments:
            key: The partition key extracted from a payload.
            count: Number of currently active replicas (>= 1).

        Returns:
            The owner's index in ``[0, count)``.
        """
        raise NotImplementedError


class HashPartitioner(Partitioner):
    """Uniform ownership via the stable CRC-32 hash (the default)."""

    def select(self, key: Any, count: int) -> int:
        """Owner index: ``stable_hash(key) % count``.

        Arguments:
            key: The partition key.
            count: Number of active replicas (>= 1).

        Returns:
            The owner's index in ``[0, count)``.
        """
        if count < 1:
            raise ShardingError(f"partition count must be >= 1, got {count}")
        return stable_hash(key) % count


class RangePartitioner(Partitioner):
    """Ownership by sorted boundary ranges over orderable keys.

    ``boundaries = [b0, b1, ...]`` assigns keys ``<= b0`` to replica 0,
    ``(b0, b1]`` to replica 1, and so on; keys beyond the last boundary
    go to the last active replica.  Indices past ``count - 1`` are
    clamped, so shrinking the active set never strands a range.
    """

    def __init__(self, boundaries: Sequence[float]) -> None:
        """Arguments:
            boundaries: Strictly increasing upper bounds, one fewer than
                the intended full replica count.
        """
        bounds = [float(b) for b in boundaries]
        if not bounds:
            raise ShardingError("range partitioner needs at least one boundary")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ShardingError(
                f"range boundaries must be strictly increasing, got {bounds}"
            )
        self.boundaries = bounds

    def select(self, key: Any, count: int) -> int:
        """Owner index by binary search, clamped to the active set.

        Arguments:
            key: A numeric (orderable) partition key.
            count: Number of active replicas (>= 1).

        Returns:
            The owner's index in ``[0, count)``.
        """
        if count < 1:
            raise ShardingError(f"partition count must be >= 1, got {count}")
        try:
            # bisect_left keeps a key equal to a boundary in the lower
            # range, matching the documented "keys <= b0 -> replica 0".
            index = bisect_left(self.boundaries, float(key))
        except (TypeError, ValueError):
            raise ShardingError(
                f"range partitioning needs a numeric key, got {key!r}"
            ) from None
        return min(index, count - 1)


def partitioner_from_properties(properties: Dict[str, str]) -> Partitioner:
    """Build the partitioner a stage's properties declare.

    Arguments:
        properties: The stage's configuration properties.

    Returns:
        A :class:`HashPartitioner` (the default) or a
        :class:`RangePartitioner` when ``shard-partitioner`` is
        ``"range"`` (which requires ``shard-boundaries``).

    Raises:
        ShardingError: On an unknown partitioner or malformed boundaries.
    """
    kind = properties.get(PARTITIONER_PROPERTY, "hash")
    if kind == "hash":
        return HashPartitioner()
    if kind == "range":
        raw = properties.get(BOUNDARIES_PROPERTY)
        if raw is None:
            raise ShardingError(
                f"{PARTITIONER_PROPERTY}=range requires {BOUNDARIES_PROPERTY}"
            )
        try:
            bounds = [float(part) for part in raw.split(",") if part.strip()]
        except ValueError:
            raise ShardingError(
                f"bad {BOUNDARIES_PROPERTY} {raw!r}: want comma-separated numbers"
            ) from None
        return RangePartitioner(bounds)
    raise ShardingError(
        f"unknown {PARTITIONER_PROPERTY} {kind!r} (want hash or range)"
    )


def replica_name(base: str, index: int) -> str:
    """The canonical name of replica ``index`` of stage ``base``.

    Arguments:
        base: The declared (logical) stage name.
        index: Replica index (>= 0).

    Returns:
        ``"<base>#<index>"``.
    """
    return f"{base}{SHARD_SEPARATOR}{index}"


def parse_replica(name: str) -> Optional[Tuple[str, int]]:
    """Split a replica name back into its base name and index.

    Arguments:
        name: A stage or stream endpoint name.

    Returns:
        ``(base, index)`` when the name ends in ``#<digits>``; ``None``
        for ordinary (unsharded) names.
    """
    base, sep, suffix = name.rpartition(SHARD_SEPARATOR)
    if not sep or not suffix.isdigit():
        return None
    return base, int(suffix)


def logical_stream(name: str) -> str:
    """The declared stream name behind a per-replica stream name.

    Arguments:
        name: A stream name, possibly suffixed by ``#i`` (and, for
            sharded-to-sharded meshes, ``#i-j``) by :func:`expand_shards`.

    Returns:
        The name as the application configuration declared it.
    """
    return name.split(SHARD_SEPARATOR, 1)[0]


# -- scaling policy and decision procedure ---------------------------------


@dataclass(frozen=True)
class ScalingPolicy:
    """Elastic autoscaling knobs for one shard group.

    ``min_replicas``/``max_replicas`` bound the active set;
    ``up_occupancy``/``down_occupancy`` are the mean queue-occupancy
    bands (the Section-4 load signal, normalized by queue capacity);
    breach/idle sample counts demand *sustained* pressure before acting,
    and ``cooldown_samples`` quiets the scaler after each transition so
    handoff stalls are not misread as load.
    """

    min_replicas: int = 1
    max_replicas: int = 1
    up_occupancy: float = 0.75
    down_occupancy: float = 0.10
    breach_samples: int = 3
    idle_samples: int = 5
    cooldown_samples: int = 2

    def __post_init__(self) -> None:
        """Validate the knob ranges; raise :class:`ShardingError` if broken."""
        if self.min_replicas < 1:
            raise ShardingError(
                f"min_replicas must be >= 1, got {self.min_replicas}"
            )
        if self.max_replicas < self.min_replicas:
            raise ShardingError(
                f"max_replicas {self.max_replicas} < min_replicas "
                f"{self.min_replicas}"
            )
        if not (0.0 < self.up_occupancy <= 1.0):
            raise ShardingError(
                f"up_occupancy must be in (0, 1], got {self.up_occupancy}"
            )
        if not (0.0 <= self.down_occupancy < self.up_occupancy):
            raise ShardingError(
                f"down_occupancy must be in [0, up_occupancy), got "
                f"{self.down_occupancy}"
            )
        if self.breach_samples < 1 or self.idle_samples < 1:
            raise ShardingError("breach/idle sample counts must be >= 1")
        if self.cooldown_samples < 0:
            raise ShardingError("cooldown_samples must be >= 0")

    @classmethod
    def from_properties(
        cls, properties: Dict[str, str], replicas: int
    ) -> "ScalingPolicy":
        """Read the ``scale-*`` properties of a sharded stage.

        Arguments:
            properties: The stage's configuration properties.
            replicas: The stage's declared starting replica count
                (defaults both bounds when no ``scale-*`` knob is given).

        Returns:
            The effective policy; without any ``scale-*`` bound property
            the bounds collapse to ``replicas`` and the group is static.
        """
        elastic = (
            SCALE_MIN_PROPERTY in properties or SCALE_MAX_PROPERTY in properties
        )
        try:
            return cls(
                min_replicas=int(
                    properties.get(SCALE_MIN_PROPERTY, 1 if elastic else replicas)
                ),
                max_replicas=int(properties.get(SCALE_MAX_PROPERTY, replicas)),
                up_occupancy=float(
                    properties.get(SCALE_UP_OCCUPANCY_PROPERTY, 0.75)
                ),
                down_occupancy=float(
                    properties.get(SCALE_DOWN_OCCUPANCY_PROPERTY, 0.10)
                ),
                breach_samples=int(
                    properties.get(SCALE_BREACH_SAMPLES_PROPERTY, 3)
                ),
                idle_samples=int(properties.get(SCALE_IDLE_SAMPLES_PROPERTY, 5)),
                cooldown_samples=int(
                    properties.get(SCALE_COOLDOWN_SAMPLES_PROPERTY, 2)
                ),
            )
        except ValueError as exc:
            raise ShardingError(f"bad scale-* property: {exc}") from None

    @property
    def elastic(self) -> bool:
        """Whether the bounds leave the scaler any room to act."""
        return self.max_replicas > self.min_replicas


class ShardScaler:
    """Pure scale-up/scale-down decision procedure for one group.

    Feed it one mean-occupancy observation per adaptation sample via
    :meth:`observe`; it returns the new target replica count on the
    sample that commits a transition and ``None`` otherwise.  It holds
    no clock and no lock — determinism and thread-safety are the
    caller's (trivially satisfiable) concerns.
    """

    def __init__(self, policy: ScalingPolicy, active: int) -> None:
        """Arguments:
            policy: The group's scaling knobs.
            active: The starting active replica count (clamped into the
                policy's bounds).
        """
        self.policy = policy
        self.active = min(max(active, policy.min_replicas), policy.max_replicas)
        self._breaches = 0
        self._idles = 0
        self._cooldown = 0

    def observe(self, occupancy: float) -> Optional[int]:
        """Consume one mean-occupancy sample; maybe decide a transition.

        Arguments:
            occupancy: Mean queue occupancy across the group's active
                replicas, in ``[0, 1]`` (queue length / capacity,
                clamped).

        Returns:
            The new target active count when this sample completes a
            sustained breach (scale-up) or idle stretch (scale-down);
            ``None`` when no transition fires.  The caller applies the
            transition and the scaler starts its cooldown.
        """
        if self._cooldown > 0:
            self._cooldown -= 1
            return None
        if occupancy >= self.policy.up_occupancy:
            self._breaches += 1
            self._idles = 0
            if (
                self._breaches >= self.policy.breach_samples
                and self.active < self.policy.max_replicas
            ):
                return self._transition(self.active + 1)
        elif occupancy <= self.policy.down_occupancy:
            self._idles += 1
            self._breaches = 0
            if (
                self._idles >= self.policy.idle_samples
                and self.active > self.policy.min_replicas
            ):
                return self._transition(self.active - 1)
        else:
            self._breaches = 0
            self._idles = 0
        return None

    def _transition(self, target: int) -> int:
        self.active = target
        self._breaches = 0
        self._idles = 0
        self._cooldown = self.policy.cooldown_samples
        return target


# -- runtime-facing group descriptor ---------------------------------------


@dataclass
class ShardGroup:
    """One sharded stage as a runtime sees it after expansion.

    ``members`` lists every replica slot in index order;
    ``active`` is how many of them currently own keys (the threaded
    runtime's autoscaler moves it inside the policy bounds, the other
    runtimes keep it static).  Inactive slots still exist — they receive
    end-of-stream sentinels and terminate normally — they just own no
    partition of the key space.
    """

    name: str
    members: List[str]
    partitioner: Partitioner
    shard_by: str
    active: int
    policy: ScalingPolicy

    def owner(self, payload: Any) -> int:
        """Index of the replica owning ``payload``'s key.

        Arguments:
            payload: The emitted item payload.

        Returns:
            An index into :attr:`members`, below :attr:`active`.
        """
        key = extract_key(payload, self.shard_by)
        return self.partitioner.select(key, self.active)


def groups_of(stage_properties: Dict[str, Dict[str, str]]) -> Dict[str, ShardGroup]:
    """Reconstruct the shard groups from expanded stages' properties.

    Arguments:
        stage_properties: Mapping of stage name to its properties, as a
            runtime holds them after :func:`expand_shards`.

    Returns:
        Mapping of group (base stage) name to its :class:`ShardGroup`,
        members sorted by shard index.
    """
    slots: Dict[str, List[Tuple[int, str]]] = {}
    samples: Dict[str, Dict[str, str]] = {}
    for name, properties in stage_properties.items():
        group = properties.get(SHARD_GROUP_PROPERTY)
        if group is None:
            continue
        slots.setdefault(group, []).append(
            (int(properties[SHARD_INDEX_PROPERTY]), name)
        )
        samples[group] = properties
    groups: Dict[str, ShardGroup] = {}
    for group, indexed in slots.items():
        properties = samples[group]
        members = [name for _, name in sorted(indexed)]
        active = int(properties.get(SHARD_ACTIVE_PROPERTY, len(members)))
        replicas = int(properties.get(REPLICAS_PROPERTY, active))
        groups[group] = ShardGroup(
            name=group,
            members=members,
            partitioner=partitioner_from_properties(properties),
            shard_by=properties.get(SHARD_BY_PROPERTY, "payload"),
            active=min(max(active, 1), len(members)),
            policy=ScalingPolicy.from_properties(properties, replicas),
        )
    return groups


# -- keyed-state handoff ---------------------------------------------------


def export_keyed_state(processor: Any) -> Optional[Dict[Any, Any]]:
    """Ask a processor for its per-key state, if it keeps any.

    Arguments:
        processor: A :class:`~repro.core.api.StreamProcessor`.

    Returns:
        The mapping its optional ``export_keyed_state()`` hook returns
        (keys are partition keys), or ``None`` for stateless processors
        that do not implement the hook.
    """
    hook = getattr(processor, "export_keyed_state", None)
    if hook is None:
        return None
    state = hook()
    return dict(state) if state is not None else None


def import_keyed_state(processor: Any, state: Dict[Any, Any]) -> None:
    """Hand a processor the per-key state it now owns after a rebalance.

    Arguments:
        processor: A :class:`~repro.core.api.StreamProcessor`.
        state: Partition-key -> state mapping produced by the old
            owners' :func:`export_keyed_state`.

    The call is a no-op for processors without an
    ``import_keyed_state`` hook (their state, if any, is not keyed).
    """
    hook = getattr(processor, "import_keyed_state", None)
    if hook is not None and state:
        hook(state)


# -- configuration expansion -----------------------------------------------


def _shard_spec(stage: StageConfig) -> Optional[Tuple[int, int, ScalingPolicy]]:
    """Parse a stage's sharding declaration.

    Arguments:
        stage: A declared (pre-expansion) stage.

    Returns:
        ``(replicas, slots, policy)`` for sharded stages — ``slots`` is
        ``policy.max_replicas``, the number of replica stages to create —
        or ``None`` for ordinary single-instance stages.

    Raises:
        ShardingError: On malformed ``replicas``/``shard-*``/``scale-*``
            properties.
    """
    if SHARD_GROUP_PROPERTY in stage.properties:
        return None  # already a replica; expansion is idempotent
    raw = stage.properties.get(REPLICAS_PROPERTY)
    if raw is None:
        return None
    try:
        replicas = int(raw)
    except ValueError:
        raise ShardingError(
            f"stage {stage.name!r}: {REPLICAS_PROPERTY} must be an integer, "
            f"got {raw!r}"
        ) from None
    if replicas < 1:
        raise ShardingError(
            f"stage {stage.name!r}: {REPLICAS_PROPERTY} must be >= 1, "
            f"got {replicas}"
        )
    shard_by = stage.properties.get(SHARD_BY_PROPERTY, "payload")
    if shard_by != "payload" and not (
        _SHARD_BY_FIELD.match(shard_by) or _SHARD_BY_INDEX.match(shard_by)
    ):
        raise ShardingError(
            f"stage {stage.name!r}: invalid {SHARD_BY_PROPERTY} {shard_by!r}"
        )
    partitioner_from_properties(stage.properties)  # validates eagerly
    try:
        policy = ScalingPolicy.from_properties(stage.properties, replicas)
    except ShardingError as exc:
        raise ShardingError(f"stage {stage.name!r}: {exc}") from None
    if replicas > policy.max_replicas or replicas < policy.min_replicas:
        raise ShardingError(
            f"stage {stage.name!r}: {REPLICAS_PROPERTY}={replicas} outside "
            f"[{policy.min_replicas}, {policy.max_replicas}]"
        )
    if SHARD_SEPARATOR in stage.name:
        raise ShardingError(
            f"stage {stage.name!r}: sharded stage names may not contain "
            f"{SHARD_SEPARATOR!r}"
        )
    return replicas, policy.max_replicas, policy


def validate_shard_properties(
    name: str, properties: Dict[str, str]
) -> Optional[Tuple[int, int, ScalingPolicy]]:
    """Validate a stage's sharding/scaling knobs without expanding it.

    The static verifier's entry point (diagnostic ``GA220``): applies the
    exact parsing that :func:`expand_shards` would, against a bare
    ``(name, properties)`` pair, so configurations fail at analysis time
    rather than at deployment.

    Arguments:
        name: The declared stage name (used in error messages and for the
            :data:`SHARD_SEPARATOR` name check).
        properties: The stage's raw string properties.

    Returns:
        ``(replicas, slots, policy)`` when the stage declares
        ``replicas``, else ``None`` (the stage would not expand).

    Raises:
        ShardingError: On malformed ``replicas``/``shard-*``/``scale-*``
            properties, exactly as expansion would.
    """
    stage = StageConfig(
        name=name,
        code_url="py://repro.core.sharding:validate",
        properties=dict(properties),
    )
    return _shard_spec(stage)


def expand_shards(config: AppConfig) -> AppConfig:
    """Rewrite an application so every sharded stage becomes N replicas.

    A stage declaring ``replicas`` (>= 2, or any ``scale-*`` elasticity)
    expands into one stage per replica slot — ``<name>#0`` ...
    ``<name>#<slots-1>`` — each carrying the original code, requirement,
    parameters, and properties plus the ``shard-group`` /
    ``shard-index`` / ``shard-count`` / ``shard-active`` markers the
    runtimes route by.  Streams are split alongside: an inbound stream
    ``s: X -> S`` becomes ``s#i: X -> S#i`` per replica, an outbound
    stream ``t: S -> Y`` becomes ``t#i: S#i -> Y``, and a stream between
    two sharded stages becomes the full ``M x N`` mesh
    (``u#i-j: S#i -> T#j``).  Every split edge registers its own
    end-of-stream expectation downstream, so replica-group termination
    falls out of the ordinary per-edge counting.

    Arguments:
        config: The application as declared (``replicas`` properties
            intact).  Not modified.

    Returns:
        A new validated :class:`~repro.grid.config.AppConfig`.  When no
        stage declares sharding the original config is returned as-is.

    Raises:
        ShardingError: On malformed sharding declarations.
    """
    specs: Dict[str, Tuple[int, int, ScalingPolicy]] = {}
    for stage in config.stages:
        spec = _shard_spec(stage)
        if spec is not None and spec[1] > 1:
            specs[stage.name] = spec
    if not specs:
        return config

    stages: List[StageConfig] = []
    for stage in config.stages:
        if stage.name not in specs:
            stages.append(stage)
            continue
        replicas, slots, _policy = specs[stage.name]
        for index in range(slots):
            properties = dict(stage.properties)
            properties.pop(REPLICAS_PROPERTY, None)
            properties[SHARD_GROUP_PROPERTY] = stage.name
            properties[SHARD_INDEX_PROPERTY] = str(index)
            properties[SHARD_COUNT_PROPERTY] = str(slots)
            properties[SHARD_ACTIVE_PROPERTY] = str(replicas)
            properties[REPLICAS_PROPERTY] = str(replicas)
            stages.append(
                StageConfig(
                    name=replica_name(stage.name, index),
                    code_url=stage.code_url,
                    requirement=stage.requirement,
                    parameters=list(stage.parameters),
                    properties=properties,
                )
            )

    streams: List[StreamConfig] = []
    for stream in config.streams:
        src_slots = specs[stream.src][1] if stream.src in specs else 0
        dst_slots = specs[stream.dst][1] if stream.dst in specs else 0
        if not src_slots and not dst_slots:
            streams.append(stream)
        elif src_slots and dst_slots:
            for i in range(src_slots):
                for j in range(dst_slots):
                    streams.append(
                        replace(
                            stream,
                            name=f"{stream.name}{SHARD_SEPARATOR}{i}-{j}",
                            src=replica_name(stream.src, i),
                            dst=replica_name(stream.dst, j),
                        )
                    )
        elif dst_slots:
            for j in range(dst_slots):
                streams.append(
                    replace(
                        stream,
                        name=f"{stream.name}{SHARD_SEPARATOR}{j}",
                        dst=replica_name(stream.dst, j),
                    )
                )
        else:
            for i in range(src_slots):
                streams.append(
                    replace(
                        stream,
                        name=f"{stream.name}{SHARD_SEPARATOR}{i}",
                        src=replica_name(stream.src, i),
                    )
                )

    expanded = AppConfig(name=config.name, stages=stages, streams=streams)
    expanded.validate()
    return expanded


# -- docs consistency ------------------------------------------------------


def default_docs_path() -> Path:
    """``docs/sharding.md`` relative to the repository root.

    Returns:
        The documented scaling model's path in a source checkout.
    """
    return Path(__file__).resolve().parents[3] / "docs" / "sharding.md"


#: A knobs-table row: ``| `property` | meaning |``.
_KNOB_ROW = re.compile(r"^\|\s*`(?P<knob>[a-z][a-z0-9-]*)`\s*\|")


def documented_knobs(path: Path) -> List[str]:
    """Parse the knob names documented in ``docs/sharding.md``.

    Arguments:
        path: The document to parse.

    Returns:
        Every backticked first-column entry of its knobs table rows.
    """
    knobs = []
    for line in path.read_text(encoding="utf-8").splitlines():
        match = _KNOB_ROW.match(line.strip())
        if match:
            knobs.append(match.group("knob"))
    return knobs


def check_docs(path: Optional[Path] = None) -> List[str]:
    """Problems keeping ``docs/sharding.md`` and the code apart.

    Arguments:
        path: Document to check (defaults to :func:`default_docs_path`).

    Returns:
        One problem string per drift — a knob in :data:`KNOBS` missing
        from the document, or a documented knob the code no longer
        defines.  Empty means in sync; the tier-1 test
        ``tests/core/test_sharding_docs.py`` asserts exactly that.
    """
    path = path if path is not None else default_docs_path()
    if not path.exists():
        return [f"docs file missing: {path}"]
    documented = set(documented_knobs(path))
    for marker in (SHARD_GROUP_PROPERTY, SHARD_INDEX_PROPERTY):
        documented.discard(marker)
    problems = []
    for knob in sorted(KNOBS):
        if knob not in documented:
            problems.append(
                f"sharding knob {knob!r} is not documented in {path.name}"
            )
    for knob in sorted(documented):
        if knob not in KNOBS:
            problems.append(
                f"{path.name} documents {knob!r}, which is not a sharding "
                "knob (repro.core.sharding.KNOBS)"
            )
    return problems
