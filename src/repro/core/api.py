"""Developer-facing stage API.

This module mirrors Section 3.3 of the paper.  An application developer
writes one :class:`StreamProcessor` per stage; the middleware supplies a
:class:`StageContext` giving the processor access to:

* ``specify_parameter(...)`` — the paper's
  ``specifyPara(init_value, max_value, min_value, increment, direction)``;
* ``get_suggested_value(name)`` — the paper's ``getSuggestedValue()``,
  returning the value the self-adaptation algorithm currently suggests;
* ``emit(payload, size)`` — write to the stage's output stream(s);
* ``now`` and per-stage properties from the XML configuration.

The paper's Java API passes explicit ``InputBuffer``/``OutputBuffer``
objects to a ``work`` loop; here the runtime owns the loop and calls
:meth:`StreamProcessor.on_item` per input item — the inversion makes the
processing cost of each item explicit and chargeable to the simulated
host CPU, which is what the evaluation varies.
"""

from __future__ import annotations

import abc
from typing import Any, Dict, List, Optional

from repro.simnet.hosts import CpuCostModel
from repro.simnet.trace import TimeSeries

__all__ = ["AdjustmentParameter", "ProcessorError", "StageContext", "StreamProcessor"]


class ProcessorError(Exception):
    """Raised for stage API misuse."""


class AdjustmentParameter:
    """A tunable parameter exposed to the self-adaptation algorithm.

    Attributes mirror ``specifyPara``:

    * ``initial`` — starting value;
    * ``minimum`` / ``maximum`` — acceptable range;
    * ``increment`` — quantum of change (suggestions are multiples of it);
    * ``direction`` — +1 if increasing the value increases the processing
      rate, -1 if it decreases it (the paper's sampler passes -1: raising
      the sampling rate slows processing and raises accuracy).

    The middleware owns :attr:`value`; the application reads it via
    :meth:`StageContext.get_suggested_value`.  Every change is recorded in
    :attr:`history`, which is exactly the series plotted in Figures 8/9.
    """

    def __init__(
        self,
        name: str,
        initial: float,
        minimum: float,
        maximum: float,
        increment: float,
        direction: int,
    ) -> None:
        if minimum > maximum:
            raise ProcessorError(f"{name}: min {minimum} > max {maximum}")
        if not (minimum <= initial <= maximum):
            raise ProcessorError(
                f"{name}: initial {initial} outside [{minimum}, {maximum}]"
            )
        if increment <= 0:
            raise ProcessorError(f"{name}: increment must be > 0, got {increment}")
        if direction not in (-1, 1):
            raise ProcessorError(f"{name}: direction must be +1 or -1, got {direction}")
        self.name = name
        self.initial = float(initial)
        self.minimum = float(minimum)
        self.maximum = float(maximum)
        self.increment = float(increment)
        self.direction = int(direction)
        self._value = float(initial)
        self.history = TimeSeries(name)

    @property
    def value(self) -> float:
        """Current suggested value."""
        return self._value

    def set_value(self, value: float, time: float) -> float:
        """Clamp ``value`` into range, store it, record history."""
        clamped = min(self.maximum, max(self.minimum, value))
        self._value = clamped
        self.history.record(time, clamped)
        return clamped

    def quantize(self, delta: float) -> float:
        """Round a raw delta to a whole number of increments."""
        steps = round(delta / self.increment)
        return steps * self.increment

    @property
    def span(self) -> float:
        """Width of the acceptable range."""
        return self.maximum - self.minimum

    def __repr__(self) -> str:
        return (
            f"AdjustmentParameter({self.name!r}, value={self._value}, "
            f"range=[{self.minimum}, {self.maximum}], dir={self.direction})"
        )


class StageContext(abc.ABC):
    """Runtime services available to a :class:`StreamProcessor`.

    Concrete implementations are provided by the simulated and threaded
    runtimes; tests use a lightweight fake.
    """

    @abc.abstractmethod
    def specify_parameter(
        self,
        name: str,
        initial: float,
        minimum: float,
        maximum: float,
        increment: float,
        direction: int,
    ) -> AdjustmentParameter:
        """Expose an adjustment parameter (paper: ``specifyPara``).

        Must be called during :meth:`StreamProcessor.setup`; declaring
        the same name twice is an error.
        """

    @abc.abstractmethod
    def get_suggested_value(self, name: str) -> float:
        """Current middleware-suggested value (paper: ``getSuggestedValue``)."""

    @abc.abstractmethod
    def emit(self, payload: Any, size: float = 8.0, stream: Optional[str] = None) -> None:
        """Write one item downstream.

        With ``stream=None`` (the default) the item goes to *every*
        outgoing stream of this stage; naming a configured stream routes
        it to that stream only (splitter stages).
        """

    @property
    @abc.abstractmethod
    def now(self) -> float:
        """Current time (simulation or wall clock)."""

    @property
    @abc.abstractmethod
    def stage_name(self) -> str:
        """Name of the stage this processor runs as."""

    @property
    @abc.abstractmethod
    def properties(self) -> Dict[str, str]:
        """Configuration properties uploaded with the stage code."""

    @property
    def det(self) -> Any:
        """The stage's :class:`~repro.ledger.DeterministicContext`.

        Lazily built from the ``ledger-mode`` / ``ledger-dir`` /
        ``ledger-path`` stage properties, so it works identically on all
        three runtimes (including out-of-process networked workers).
        With no ledger properties set it is a zero-overhead passthrough;
        replayable stages route every wall-clock read, random draw, and
        suggested-value read through it.
        """
        cached = self.__dict__.get("_det")
        if cached is None:
            from repro.ledger.context import deterministic_context_for

            cached = deterministic_context_for(
                self.stage_name, self.properties, fallback_now=lambda: self.now
            )
            self.__dict__["_det"] = cached
        return cached


class StreamProcessor(abc.ABC):
    """Base class for user stage code (paper: ``StreamProcessor``).

    Lifecycle (driven by the runtime):

    1. :meth:`setup` — once, before any data; declare adjustment
       parameters here.
    2. :meth:`on_item` — once per input item, in arrival order.
    3. :meth:`flush` — once, after every input stream has ended.

    Output is produced by calling ``context.emit(...)`` from any hook.

    Cost model: :attr:`cost_model` prices each ``on_item`` call on the
    host CPU (per-item + per-byte, the latter being the paper's
    "ms/byte" knob); override :meth:`work_amount` for non-linear stages.
    """

    #: Default CPU cost per on_item call; stages override or mutate.
    cost_model: CpuCostModel = CpuCostModel(per_item=1e-6)

    def setup(self, context: StageContext) -> None:
        """Called once before processing; default does nothing."""

    @abc.abstractmethod
    def on_item(self, payload: Any, context: StageContext) -> None:
        """Handle one input item."""

    def flush(self, context: StageContext) -> None:
        """Called once after all inputs ended; default does nothing."""

    def work_amount(self, payload: Any, size: float) -> tuple[float, float]:
        """(items, bytes) charged against :attr:`cost_model` per item."""
        return 1.0, size

    def result(self) -> Optional[Any]:
        """Final value reported for this stage after the run (sinks).

        The runtime collects these into the
        :class:`~repro.core.results.RunResult`; default None.
        """
        return None

    def snapshot(self) -> Optional[Any]:
        """Serializable copy of the processor's mutable state, or None.

        Called by the runtime on the checkpoint cadence (see
        :class:`repro.resilience.ResilienceConfig`).  The default — None
        — declares the processor stateless: after a failover it restarts
        fresh and correctness relies on input replay alone.  Stateful
        processors return plain JSON-representable data (lists, dicts,
        numbers, strings) so the JSONL checkpoint store round-trips it.
        """
        return None

    def restore(self, state: Any) -> None:
        """Rebuild mutable state from a :meth:`snapshot` value.

        Called on a *freshly constructed* instance during failover,
        after :meth:`setup`.  Must accept the JSON round-trip of whatever
        :meth:`snapshot` returned (tuples become lists, dict keys become
        strings).  The default ignores the state (stateless processor).
        """


class RecordingContext(StageContext):
    """Minimal in-memory context for unit-testing processors.

    Collects emissions into :attr:`emitted`; parameters are honoured but
    never adapted (the suggested value stays at whatever tests set).
    """

    def __init__(self, stage_name: str = "stage", properties: Optional[Dict[str, str]] = None) -> None:
        self._stage_name = stage_name
        self._properties = dict(properties or {})
        self._time = 0.0
        self.parameters: Dict[str, AdjustmentParameter] = {}
        self.emitted: List[tuple[Any, float]] = []
        #: Stream routing of each emission (None = broadcast), parallel
        #: to :attr:`emitted`.
        self.routes: List[Optional[str]] = []

    def specify_parameter(
        self,
        name: str,
        initial: float,
        minimum: float,
        maximum: float,
        increment: float,
        direction: int,
    ) -> AdjustmentParameter:
        """Record a declared adjustment parameter (see :class:`StageContext`)."""
        if name in self.parameters:
            raise ProcessorError(f"parameter {name!r} declared twice")
        param = AdjustmentParameter(name, initial, minimum, maximum, increment, direction)
        self.parameters[name] = param
        return param

    def get_suggested_value(self, name: str) -> float:
        """Current value of a declared parameter."""
        try:
            return self.parameters[name].value
        except KeyError:
            raise ProcessorError(f"unknown parameter {name!r}") from None

    def emit(self, payload: Any, size: float = 8.0, stream: Optional[str] = None) -> None:
        """Record an emission in :attr:`emitted` / :attr:`routes`."""
        self.emitted.append((payload, size))
        self.routes.append(stream)

    def advance(self, dt: float) -> None:
        """Move the fake clock forward."""
        self._time += dt

    @property
    def now(self) -> float:
        """The fake clock (advanced only by :meth:`advance`)."""
        return self._time

    @property
    def stage_name(self) -> str:
        """Name the context was constructed with."""
        return self._stage_name

    @property
    def properties(self) -> Dict[str, str]:
        """Configuration properties the context was constructed with."""
        return self._properties
