"""Micro-batching policy for the data plane.

All three runtimes move items one at a time by default; a
:class:`BatchPolicy` switches a stage's emissions onto a batched fast
path: items destined for the same (stage, out-stream) edge accumulate in
a small buffer and are handed downstream together — one queue operation,
one link transmission, or one DATA frame for the whole batch.  See
docs/performance.md for the model and the measured effect.

The flush policy is size/age: a batch ships as soon as it holds
``max_items`` items, and a partially filled batch never waits longer
than ``max_delay`` (in the owning runtime's clock — simulated seconds on
the simulated runtime, scaled wall-clock seconds elsewhere).  Setting
``max_items=1`` degenerates to the unbatched behaviour.

This module is imported by ``repro.core.runtime_sim`` and must stay
deterministic: no wall clock, no global RNG — timestamps always come in
from the caller.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generic, List, Optional, TypeVar

__all__ = ["BatchBuffer", "BatchPolicy", "batch_policy_from_properties"]

#: Stage-property keys that override a runtime-level batch policy
#: (parsed by :func:`batch_policy_from_properties` and checked statically
#: by the verifier's GA210 pass).
MAX_ITEMS_PROPERTY = "batch-max-items"
MAX_DELAY_PROPERTY = "batch-max-delay"


@dataclass(frozen=True)
class BatchPolicy:
    """Size/age flush policy for per-edge micro-batches.

    Parameters
    ----------
    max_items:
        Flush as soon as a batch holds this many items (>= 1; 1 means
        every item ships alone, i.e. batching is a no-op).
    max_delay:
        Upper bound, in runtime seconds, on how long a partially filled
        batch may wait for more items before it is flushed anyway.  This
        bounds the per-item latency cost of batching: p99 latency under
        batching is at most the unbatched p99 plus ``max_delay``.
    """

    max_items: int = 32
    max_delay: float = 0.01

    def __post_init__(self) -> None:
        if self.max_items < 1:
            raise ValueError(f"max_items must be >= 1, got {self.max_items}")
        if self.max_delay < 0:
            raise ValueError(f"max_delay must be >= 0, got {self.max_delay}")

    @property
    def enabled(self) -> bool:
        """False when the policy degenerates to one-at-a-time."""
        return self.max_items > 1


def batch_policy_from_properties(
    properties: Dict[str, str], default: Optional[BatchPolicy]
) -> Optional[BatchPolicy]:
    """Resolve one stage's effective policy from its properties.

    ``batch-max-items`` / ``batch-max-delay`` stage properties override
    the runtime-level ``default`` (either key alone inherits the other
    from the default, or from ``BatchPolicy()`` when there is none).

    Arguments:
        properties: The stage's configuration properties.
        default: The runtime-level policy, or ``None`` when the runtime
            runs unbatched.

    Returns:
        The effective per-stage policy — ``default`` untouched when
        neither property is present.

    Raises:
        ValueError: When a present property does not parse.
    """
    items_text = properties.get(MAX_ITEMS_PROPERTY)
    delay_text = properties.get(MAX_DELAY_PROPERTY)
    if items_text is None and delay_text is None:
        return default
    base = default if default is not None else BatchPolicy()
    try:
        max_items = int(items_text) if items_text is not None else base.max_items
        max_delay = float(delay_text) if delay_text is not None else base.max_delay
    except ValueError as exc:
        raise ValueError(
            f"bad batch property ({MAX_ITEMS_PROPERTY}={items_text!r}, "
            f"{MAX_DELAY_PROPERTY}={delay_text!r}): {exc}"
        ) from None
    return BatchPolicy(max_items=max_items, max_delay=max_delay)


T = TypeVar("T")


class BatchBuffer(Generic[T]):
    """One edge's accumulating batch: entries plus the first-entry time.

    The buffer itself never reads a clock — callers pass ``now`` in, so
    the same type serves the simulated runtime (virtual time) and the
    threaded/networked runtimes (scaled wall clock).
    """

    __slots__ = ("policy", "entries", "first_at")

    def __init__(self, policy: BatchPolicy) -> None:
        """Arguments:
            policy: The size/age flush policy this buffer enforces.
        """
        self.policy = policy
        self.entries: List[T] = []
        self.first_at: float = 0.0

    def __len__(self) -> int:
        return len(self.entries)

    def add(self, entry: T, now: float) -> bool:
        """Append one entry to the accumulating batch.

        Arguments:
            entry: The entry to buffer (whatever the owning runtime
                ships per item — an ``Item``, a ``(payload, size)``
                pair, ...).
            now: The current time in the caller's clock; recorded as
                the batch's first-entry time when the buffer was empty.

        Returns:
            ``True`` when the buffer has reached ``max_items`` and the
            caller should flush it now.
        """
        if not self.entries:
            self.first_at = now
        self.entries.append(entry)
        return len(self.entries) >= self.policy.max_items

    def due(self, now: float) -> bool:
        """Whether the age bound demands a flush.

        Arguments:
            now: The current time in the caller's clock.

        Returns:
            ``True`` when the oldest buffered entry has waited
            ``max_delay`` or longer (always ``False`` when empty).
        """
        return bool(self.entries) and now - self.first_at >= self.policy.max_delay

    def deadline(self) -> Optional[float]:
        """Absolute time the buffer must flush by.

        Returns:
            ``first_at + max_delay`` in the caller's clock, or ``None``
            when the buffer is empty (nothing is aging).
        """
        if not self.entries:
            return None
        return self.first_at + self.policy.max_delay

    def drain(self) -> List[T]:
        """Take every buffered entry, leaving the buffer empty.

        Returns:
            The buffered entries in insertion order.
        """
        entries, self.entries = self.entries, []
        return entries
