"""The over-/under-load exception protocol between adjacent stages.

"When d̃ exceeds the pre-defined interval [LT₁, LT₂], the current server
will report an under-load or over-load exception to the preceding server.
The number of these exceptions is a factor used to tune adjustment
parameters at the preceding server." (Section 4.2)

:class:`ExceptionCounter` is the upstream side's mailbox: it accumulates
T₁ (over-load) and T₂ (under-load) counts per reporting downstream stage.
The parameter controller reads — and *drains* — these counts each
adjustment round, so old exceptions do not dominate forever (the paper
wants the controller to "eliminate the load exceptions reported from the
server C", which requires reacting to recent ones).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = ["ExceptionCounter", "LoadException", "LoadExceptionKind"]


class LoadExceptionKind(enum.Enum):
    """The two exception flavours of Section 4.2."""

    OVERLOAD = "overload"
    UNDERLOAD = "underload"


@dataclass(frozen=True)
class LoadException:
    """One exception report travelling upstream."""

    kind: LoadExceptionKind
    reporter: str
    time: float
    #: The d̃ value that triggered the report (diagnostic only).
    score: float = 0.0


class ExceptionCounter:
    """Accumulates (T₁, T₂) per reporting downstream stage."""

    def __init__(self) -> None:
        self._counts: Dict[str, Tuple[int, int]] = {}
        self.total_overloads = 0
        self.total_underloads = 0

    def report(self, exception: LoadException) -> None:
        """Record one incoming exception."""
        t1, t2 = self._counts.get(exception.reporter, (0, 0))
        if exception.kind is LoadExceptionKind.OVERLOAD:
            self._counts[exception.reporter] = (t1 + 1, t2)
            self.total_overloads += 1
        else:
            self._counts[exception.reporter] = (t1, t2 + 1)
            self.total_underloads += 1

    def counts(self, reporter: str) -> Tuple[int, int]:
        """(T₁, T₂) accumulated from ``reporter`` since the last drain."""
        return self._counts.get(reporter, (0, 0))

    def aggregate(self) -> Tuple[int, int]:
        """(T₁, T₂) summed over all reporters since the last drain."""
        t1 = sum(c[0] for c in self._counts.values())
        t2 = sum(c[1] for c in self._counts.values())
        return t1, t2

    def drain(self) -> Tuple[int, int]:
        """Return the aggregate counts and reset the window."""
        totals = self.aggregate()
        self._counts.clear()
        return totals

    def snapshot(self) -> dict:
        """Checkpointable state (see :mod:`repro.resilience`)."""
        return {
            "counts": [[r, t1, t2] for r, (t1, t2) in self._counts.items()],
            "total_overloads": self.total_overloads,
            "total_underloads": self.total_underloads,
        }

    def restore(self, state: dict) -> None:
        """Rebuild in place from a :meth:`snapshot` value."""
        self._counts = {r: (int(t1), int(t2)) for r, t1, t2 in state["counts"]}
        self.total_overloads = int(state["total_overloads"])
        self.total_underloads = int(state["total_underloads"])

    def __repr__(self) -> str:
        t1, t2 = self.aggregate()
        return f"ExceptionCounter(T1={t1}, T2={t2}, lifetime={self.total_overloads}/{self.total_underloads})"
