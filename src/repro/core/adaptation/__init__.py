"""The GATES self-adaptation algorithm (Section 4 of the paper).

Components, mapped to the paper's symbols (Figure 2):

* :mod:`repro.core.adaptation.load` — the load factors φ₁(t₁,t₂), φ₂(w),
  φ₃(d̄) and the :class:`LoadEstimator` maintaining the long-term load
  score d̃ per stage queue, emitting over-/under-load exceptions when d̃
  leaves [LT₁, LT₂].
* :mod:`repro.core.adaptation.policy` — :class:`AdaptationPolicy`, the
  bundle of constants (α, W, D, C, P₁P₂P₃, LT₁, LT₂, σ gains, sampling
  cadence) with the paper's constraints validated.
* :mod:`repro.core.adaptation.controller` — the ΔP parameter controller
  implementing Equation 4, with σ₁/σ₂ variability estimators.
* :mod:`repro.core.adaptation.protocol` — the exception-reporting channel
  between a stage and its upstream ("the server reported to the sending
  server").
"""

from repro.core.adaptation.controller import ParameterController, SigmaEstimator
from repro.core.adaptation.load import LoadEstimator, phi1, phi2_linear, phi2_saturating, phi3
from repro.core.adaptation.policy import AdaptationPolicy, PolicyError
from repro.core.adaptation.protocol import (
    ExceptionCounter,
    LoadException,
    LoadExceptionKind,
)

__all__ = [
    "AdaptationPolicy",
    "ExceptionCounter",
    "LoadEstimator",
    "LoadException",
    "LoadExceptionKind",
    "ParameterController",
    "PolicyError",
    "SigmaEstimator",
    "phi1",
    "phi2_linear",
    "phi2_saturating",
    "phi3",
]
