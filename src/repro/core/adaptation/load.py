"""Load factors and the long-term load estimator (Section 4.2).

Equation numbering follows the paper:

* Eq. 1 — φ₁(t₁, t₂) = (t₁ − t₂) / (t₁ + t₂), the lifetime over/under
  balance.
* Eq. 2 — φ₂(w), the windowed recent over/under balance.  The printed
  formula is corrupted in the scanned text (it is not a function into
  [−1, 1] as the text states); both forms implemented here satisfy the
  stated contract: range [−1, 1], sign(φ₂) = sign(w), φ₂(0) = 0, and
  |φ₂| → 1 as |w| → W.
* Eq. 3 — φ₃(d̄), the recent average queue length relative to the
  expected length D, normalized by D below and by C − D above.

The blended update (paper's d̃ equation):

    d̃ ← α·d̃ + (1 − α)·(P₁φ₁ + P₂φ₂ + P₃φ₃)·C

keeps d̃ ∈ [−C, C]; when d̃ leaves [LT₁·C, LT₂·C] the stage reports an
exception upstream.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Optional, Protocol

from repro.core.adaptation.policy import AdaptationPolicy
from repro.core.adaptation.protocol import LoadException, LoadExceptionKind
from repro.simnet.trace import TimeSeries


class QueueLike(Protocol):
    """What the estimator needs from a stage input queue.

    Satisfied by :class:`repro.simnet.resources.BoundedQueue` (simulated
    runtime) and the thread-safe queue of the threaded runtime.
    """

    capacity: int

    @property
    def current_length(self) -> int:
        """Number of items in the queue right now."""
        ...

    @property
    def recent_average(self) -> float:
        """Mean queue length over the recent sampling window."""
        ...

__all__ = ["LoadEstimator", "phi1", "phi2_linear", "phi2_saturating", "phi3"]


def phi1(t1: int, t2: int) -> float:
    """Eq. 1 — lifetime over/under-load balance, in [−1, 1]."""
    if t1 < 0 or t2 < 0:
        raise ValueError(f"counts must be >= 0, got t1={t1}, t2={t2}")
    total = t1 + t2
    if total == 0:
        return 0.0
    return (t1 - t2) / total


def phi2_linear(w: int, window: int) -> float:
    """Linear φ₂: w / W."""
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    if abs(w) > window:
        raise ValueError(f"|w| = {abs(w)} exceeds window {window}")
    return w / window


def phi2_saturating(w: int, window: int) -> float:
    """Saturating φ₂: sign(w)·(1 − e^(−|w|/W)) / (1 − e⁻¹).

    Responds faster than the linear form for small |w| (quick reaction to
    the first few over-loads) while still respecting |φ₂| <= 1 at |w| = W.
    """
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    if abs(w) > window:
        raise ValueError(f"|w| = {abs(w)} exceeds window {window}")
    if w == 0:
        return 0.0
    magnitude = (1.0 - math.exp(-abs(w) / window)) / (1.0 - math.exp(-1.0))
    return math.copysign(min(1.0, magnitude), w)


def phi3(d_bar: float, expected: float, capacity: float) -> float:
    """Eq. 3 — recent average queue length vs the expected length.

    Negative (down to −1) when the queue runs below D, positive (up to 1)
    when it runs above, with the positive side normalized by the remaining
    headroom C − D.
    """
    if capacity <= 0:
        raise ValueError(f"capacity must be > 0, got {capacity}")
    if not 0 < expected < capacity:
        raise ValueError(
            f"expected length must be in (0, C={capacity}), got {expected}"
        )
    if d_bar < 0:
        raise ValueError(f"average queue length must be >= 0, got {d_bar}")
    if d_bar < expected:
        return (d_bar - expected) / expected
    return min(1.0, (d_bar - expected) / (capacity - expected))


class LoadEstimator:
    """Per-stage tracker of the long-term load score d̃.

    Call :meth:`sample` on the adaptation cadence; it classifies the
    instant (over / under / neutral), refreshes t₁, t₂, w and d̄, folds
    them into d̃, and returns a :class:`LoadException` to forward
    upstream when d̃ has left [LT₁·C, LT₂·C] — or ``None``.

    The d̃ trajectory is recorded in :attr:`history` for the experiment
    harness and tests.
    """

    def __init__(self, stage_name: str, queue: QueueLike, policy: AdaptationPolicy) -> None:
        self.stage_name = stage_name
        self.queue = queue
        self.policy = policy
        self.capacity = float(queue.capacity)
        self.expected = policy.expected_fill * self.capacity
        #: Lifetime over/under-load counts (paper: t₁, t₂).
        self.t1 = 0
        self.t2 = 0
        #: Window of the last W non-neutral classifications (+1 / −1).
        self._window: Deque[int] = deque(maxlen=policy.window)
        #: Long-term load score d̃ ∈ [−C, C].
        self.d_tilde = 0.0
        self.history = TimeSeries(f"{stage_name}.d_tilde")
        self._phi2 = phi2_saturating if policy.phi2_form == "saturating" else phi2_linear

    @property
    def w(self) -> int:
        """Recent over/under balance (paper: w), |w| <= W."""
        return sum(self._window)

    def classify(self, current_length: int) -> int:
        """+1 over-loaded, −1 under-loaded, 0 neutral at this instant."""
        band = self.policy.neutral_band
        if current_length > self.expected * (1.0 + band):
            return 1
        if current_length < self.expected * (1.0 - band):
            return -1
        return 0

    def sample(self, now: float) -> Optional[LoadException]:
        """One adaptation-cadence observation of the queue."""
        verdict = self.classify(self.queue.current_length)
        if verdict > 0:
            self.t1 += 1
            self._window.append(1)
        elif verdict < 0:
            self.t2 += 1
            self._window.append(-1)

        p = self.policy
        blend = (
            p.p1 * phi1(self.t1, self.t2)
            + p.p2 * self._phi2(self.w, p.window)
            + p.p3 * phi3(self.queue.recent_average, self.expected, self.capacity)
        )
        self.d_tilde = p.alpha * self.d_tilde + (1.0 - p.alpha) * blend * self.capacity
        self.history.record(now, self.d_tilde)

        if self.d_tilde > p.lt2 * self.capacity:
            return LoadException(
                kind=LoadExceptionKind.OVERLOAD,
                reporter=self.stage_name,
                time=now,
                score=self.d_tilde,
            )
        if self.d_tilde < p.lt1 * self.capacity:
            return LoadException(
                kind=LoadExceptionKind.UNDERLOAD,
                reporter=self.stage_name,
                time=now,
                score=self.d_tilde,
            )
        return None

    @property
    def normalized_score(self) -> float:
        """d̃ / C ∈ [−1, 1] — the controller's local-load input."""
        return self.d_tilde / self.capacity

    def snapshot(self) -> dict:
        """Checkpointable state (see :mod:`repro.resilience`).

        The :attr:`history` series is observability, not state — it stays
        with the metrics registry and is not part of the snapshot.
        """
        return {
            "t1": self.t1,
            "t2": self.t2,
            "window": list(self._window),
            "d_tilde": self.d_tilde,
        }

    def restore(self, state: dict) -> None:
        """Rebuild in place (the registry keeps wrapping this instance)."""
        self.t1 = int(state["t1"])
        self.t2 = int(state["t2"])
        self._window = deque(
            (int(v) for v in state["window"]), maxlen=self.policy.window
        )
        self.d_tilde = float(state["d_tilde"])

    def __repr__(self) -> str:
        return (
            f"LoadEstimator({self.stage_name!r}, d_tilde={self.d_tilde:.2f}, "
            f"t1={self.t1}, t2={self.t2}, w={self.w})"
        )
