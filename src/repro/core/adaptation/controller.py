"""The ΔP parameter controller (Equation 4 of the paper).

The paper adjusts a parameter P at stage B from two signals:

* the local long-term load score d̃_B of B's own queue, and
* φ₁(T₁, T₂) over the over-/under-load exceptions that the downstream
  stage C has reported to B,

via   ΔP_B = d̃_B·σ₁(d̃_B) − φ₁(T₁,T₂)·σ₂(φ₁(T₁,T₂)).

Sign conventions (derived in DESIGN.md from the paper's two applications):

* The paper writes Eq. 4 for a parameter whose increase *speeds up* B.
  For a declared ``direction`` of −1 (the paper's own sampler example:
  raising the value slows B down), the local term flips sign — relieving
  B's queue then means *lowering* the value.
* Both paper applications (summary size, sampling rate) send *more* bytes
  downstream when the parameter rises, regardless of ``direction``; the
  downstream term therefore keeps the paper's negative sign as-is.  A
  parameter whose increase reduces output can declare
  ``output_direction=-1`` to flip it.

σ₁/σ₂ "factor in the rate of variation" of their arguments: when the
signal is unsteady the paper wants larger steps.  :class:`SigmaEstimator`
implements gain · (1 + variability_weight · normalized-std) over a short
window; setting the policy's ``sigma_variability`` to 0 reduces σ to the
constant gain (the ablation bench's control arm).

The raw ΔP signal is dimensionless (both inputs live in [−1, 1]); it is
scaled to parameter units by ``step_fraction · span``, quantized to the
declared increment, and clamped to the declared range.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque

from repro.core.adaptation.load import phi1
from repro.core.adaptation.policy import AdaptationPolicy
from repro.core.api import AdjustmentParameter

__all__ = ["ParameterController", "SigmaEstimator"]


class SigmaEstimator:
    """σ function: base gain boosted by the signal's recent variability.

    ``value(x)`` records x and returns
    ``gain * (1 + weight * std(recent) / scale)`` where ``scale`` is the
    signal's natural half-range (1.0 for the normalized signals used
    here).  With fewer than two observations the variability term is 0.
    """

    def __init__(self, gain: float, weight: float, window: int, scale: float = 1.0) -> None:
        if gain < 0:
            raise ValueError(f"gain must be >= 0, got {gain}")
        if weight < 0:
            raise ValueError(f"weight must be >= 0, got {weight}")
        if window < 2:
            raise ValueError(f"window must be >= 2, got {window}")
        if scale <= 0:
            raise ValueError(f"scale must be > 0, got {scale}")
        self.gain = gain
        self.weight = weight
        self.scale = scale
        self._recent: Deque[float] = deque(maxlen=window)

    def variability(self) -> float:
        """Normalized standard deviation of the recent observations."""
        n = len(self._recent)
        if n < 2:
            return 0.0
        mean = sum(self._recent) / n
        var = sum((x - mean) ** 2 for x in self._recent) / n
        return math.sqrt(var) / self.scale

    def value(self, x: float) -> float:
        """Record ``x`` and return σ(x)."""
        self._recent.append(x)
        return self.gain * (1.0 + self.weight * self.variability())


class ParameterController:
    """Drives one :class:`AdjustmentParameter` from load signals."""

    def __init__(self, parameter: AdjustmentParameter, policy: AdaptationPolicy,
                 output_direction: int = 1) -> None:
        if output_direction not in (-1, 1):
            raise ValueError(
                f"output_direction must be +1 or -1, got {output_direction}"
            )
        self.parameter = parameter
        self.policy = policy
        #: +1 if increasing the parameter increases bytes sent downstream
        #: (true for both paper applications), −1 otherwise.
        self.output_direction = output_direction
        self.sigma1 = SigmaEstimator(
            policy.sigma1_gain, policy.sigma_variability, policy.sigma_window
        )
        self.sigma2 = SigmaEstimator(
            policy.sigma2_gain, policy.sigma_variability, policy.sigma_window
        )
        #: Raw (unquantized) value tracked between rounds so that signals
        #: smaller than one increment can accumulate instead of being
        #: rounded away every time.
        self._raw = parameter.value

    def compute_delta(self, local_score: float, t1: int, t2: int) -> float:
        """Raw ΔP in parameter units (before quantization/clamping).

        Parameters
        ----------
        local_score:
            d̃_B / C from the stage's :class:`LoadEstimator`, in [−1, 1].
        t1, t2:
            Over-/under-load exception counts received from downstream
            since the last adjustment round.
        """
        if not -1.0 - 1e-9 <= local_score <= 1.0 + 1e-9:
            raise ValueError(f"local_score must be in [-1, 1], got {local_score}")
        downstream = phi1(t1, t2)
        s1 = self.sigma1.value(local_score)
        s2 = self.sigma2.value(downstream)
        # Overload-relief pressure (signal > 0) outweighs underload
        # exploitation (signal < 0): see AdaptationPolicy.relief_gain.
        g1 = self.policy.relief_gain if local_score > 0 else self.policy.explore_gain
        g2 = self.policy.relief_gain if downstream > 0 else self.policy.explore_gain
        signal = (
            self.parameter.direction * local_score * s1 * g1
            - self.output_direction * downstream * s2 * g2
        )
        return signal * self.policy.step_fraction * self.parameter.span

    def adjust(self, local_score: float, t1: int, t2: int, now: float) -> float:
        """One adjustment round; returns the new suggested value."""
        delta = self.compute_delta(local_score, t1, t2)
        self._raw = min(self.parameter.maximum, max(self.parameter.minimum, self._raw + delta))
        quantized = self.parameter.minimum + self.parameter.quantize(
            self._raw - self.parameter.minimum
        )
        return self.parameter.set_value(quantized, now)

    def __repr__(self) -> str:
        return f"ParameterController({self.parameter.name!r}, value={self.parameter.value})"
