"""Constants of the self-adaptation algorithm, validated.

The paper's Figure 2 lists the constants: learning rate α, window size W,
expected queue length D, queue capacity C, weights P₁+P₂+P₃ = 1, and the
thresholds LT₁ < LT₂ on the long-term load score d̃ ∈ [−C, C].

Additions beyond the paper (documented in DESIGN.md):

* ``phi2_form`` — the printed φ₂ formula is corrupted in the scanned
  text; we provide the two plausible forms satisfying the stated contract
  (range [−1, 1], sign-preserving, saturating at |w| = W).
* ``neutral_band`` — the paper says a sample is over-/under-loaded when d
  is "larger or less than some thresholds" without giving them; we use
  D·(1 ± neutral_band).
* ``sigma_gain`` / ``sigma_variability`` — the paper describes σ₁/σ₂ only
  as factoring in "the rate of variation"; we implement
  gain · (1 + variability · normalized-std), and the ablation bench
  switches variability off to measure its effect.
* cadence: ``sample_interval`` (load sampling / d̃ update) and
  ``adjust_every`` (parameter adjustments every N samples).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

__all__ = ["AdaptationPolicy", "PolicyError"]


class PolicyError(Exception):
    """Raised when the policy violates the paper's constraints."""


@dataclass(frozen=True)
class AdaptationPolicy:
    """Bundle of self-adaptation constants.

    Thresholds ``lt1``/``lt2`` are expressed as *fractions of C* (so the
    policy is queue-size independent); the estimator works in absolute
    units internally.
    """

    #: Learning rate α ∈ (0, 1); larger = smoother d̃.
    alpha: float = 0.7
    #: Window size W for the recent over/under-load counter w.
    window: int = 12
    #: Expected queue length D as a fraction of capacity C.
    expected_fill: float = 0.3
    #: Weights P₁, P₂, P₃ for φ₁, φ₂, φ₃ (must sum to 1).
    p1: float = 0.2
    p2: float = 0.3
    p3: float = 0.5
    #: Long-term-score thresholds as fractions of C: report an under-load
    #: exception when d̃ < lt1·C, an over-load exception when d̃ > lt2·C.
    lt1: float = -0.35
    lt2: float = 0.35
    #: Neutral band around D when classifying a sample as over/under.
    neutral_band: float = 0.2
    #: φ₂ form: "saturating" (default) or "linear" (see module docstring).
    phi2_form: str = "saturating"
    #: σ base gains for the local-queue and downstream-exception terms.
    sigma1_gain: float = 1.0
    sigma2_gain: float = 1.0
    #: Asymmetric pressure weights.  A term that *relieves* an overload
    #: (shrinks accuracy to protect the real-time constraint) is weighted
    #: by ``relief_gain``; a term that *exploits* an underload (grows
    #: accuracy) by ``explore_gain``.  Relief must dominate: both signals
    #: are bounded (a saturated queue reads +1, an idle one −1), so with
    #: symmetric weights an overloaded link upstream and an idle server
    #: downstream would tie and freeze the parameter above the feasible
    #: point instead of converging (this is what makes Figures 8 and 9
    #: converge to the constraint).
    #: relief > explore also damps the sawtooth around the feasible point:
    #: the climb back toward higher accuracy is gentler than the cut that
    #: protects the constraint.
    relief_gain: float = 2.0
    explore_gain: float = 0.5
    #: Weight of the variability boost inside σ (0 disables it).
    sigma_variability: float = 1.0
    #: Samples retained by the σ variability estimators.
    sigma_window: int = 8
    #: Fraction of the parameter span moved per unit of raw ΔP signal.
    #: Small steps trade convergence speed (~100 s to cross the span at
    #: the default cadence) for a tight limit cycle around the feasible
    #: point; the paper's 400 s windows leave ample time.
    step_fraction: float = 0.015
    #: Whether over-/under-load exceptions are reported upstream at all.
    #: Disabling this (ablation) leaves each stage adapting on its local
    #: queue only — downstream processing constraints become invisible.
    exceptions_enabled: bool = True
    #: Seconds between load samples (d̃ updates).
    sample_interval: float = 0.5
    #: Parameter adjustments happen every ``adjust_every`` samples.
    adjust_every: int = 4

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha < 1.0:
            raise PolicyError(f"alpha must be in (0, 1), got {self.alpha}")
        if self.window < 1:
            raise PolicyError(f"window must be >= 1, got {self.window}")
        if not 0.0 < self.expected_fill < 1.0:
            raise PolicyError(
                f"expected_fill must be in (0, 1), got {self.expected_fill}"
            )
        weights = self.p1 + self.p2 + self.p3
        if abs(weights - 1.0) > 1e-9:
            raise PolicyError(f"P1+P2+P3 must equal 1, got {weights}")
        if min(self.p1, self.p2, self.p3) < 0:
            raise PolicyError("P1, P2, P3 must be >= 0")
        if not -1.0 <= self.lt1 < self.lt2 <= 1.0:
            raise PolicyError(
                f"need -1 <= lt1 < lt2 <= 1, got lt1={self.lt1}, lt2={self.lt2}"
            )
        if not 0.0 <= self.neutral_band < 1.0:
            raise PolicyError(
                f"neutral_band must be in [0, 1), got {self.neutral_band}"
            )
        if self.phi2_form not in ("saturating", "linear"):
            raise PolicyError(f"unknown phi2_form {self.phi2_form!r}")
        if self.sigma1_gain < 0 or self.sigma2_gain < 0:
            raise PolicyError("sigma gains must be >= 0")
        if self.relief_gain < 0 or self.explore_gain < 0:
            raise PolicyError("relief/explore gains must be >= 0")
        if self.sigma_variability < 0:
            raise PolicyError(
                f"sigma_variability must be >= 0, got {self.sigma_variability}"
            )
        if self.sigma_window < 2:
            raise PolicyError(f"sigma_window must be >= 2, got {self.sigma_window}")
        if not 0.0 < self.step_fraction <= 1.0:
            raise PolicyError(
                f"step_fraction must be in (0, 1], got {self.step_fraction}"
            )
        if self.sample_interval <= 0:
            raise PolicyError(
                f"sample_interval must be > 0, got {self.sample_interval}"
            )
        if self.adjust_every < 1:
            raise PolicyError(f"adjust_every must be >= 1, got {self.adjust_every}")

    def with_(self, **overrides: Any) -> "AdaptationPolicy":
        """A copy with some fields replaced (re-validated)."""
        return replace(self, **overrides)
