"""Continuous query access to running applications.

The count-samps problem statement wants the answer available "at any given
point in the stream" (Section 5.1) — not only after the run.  This module
provides that client path:

* :class:`Queryable` — mixin/protocol for stage processors that can
  answer a query mid-stream (``JoinStage.current_topk`` already does;
  any processor exposing ``current_answer()`` qualifies).
* :class:`ContinuousQuery` — a simulation process that polls a queryable
  stage on a cadence and records the answer (and optionally a quality
  score against a known truth) as time series.  The result is the
  accuracy-over-time trajectory — how quickly the distributed summaries
  converge on the true answer as data accumulates.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional, Tuple

from repro.core.runtime_sim import SimulatedRuntime
from repro.simnet.trace import TimeSeries

__all__ = ["ContinuousQuery", "Queryable"]


class Queryable:
    """Protocol marker: processors answering queries mid-stream.

    A processor is queryable if it implements ``current_answer()``; the
    shipped :class:`~repro.apps.count_samps.JoinStage` is adapted via its
    ``current_topk`` method automatically.
    """

    def current_answer(self) -> Any:  # pragma: no cover - protocol default
        """The processor's best current answer to its standing query."""
        raise NotImplementedError


def _resolve_query_fn(processor: Any) -> Callable[[], Any]:
    if hasattr(processor, "current_answer"):
        return processor.current_answer
    if hasattr(processor, "current_topk"):
        return processor.current_topk
    raise TypeError(
        f"{type(processor).__name__} is not queryable "
        "(needs current_answer() or current_topk())"
    )


class ContinuousQuery:
    """Polls a stage's live answer while the application runs.

    Parameters
    ----------
    runtime:
        The (not yet run) :class:`SimulatedRuntime`.
    stage_name:
        Stage whose processor is polled.
    interval:
        Simulated seconds between polls.
    score:
        Optional callable mapping an answer to a quality score in [0, 1]
        (e.g. top-k accuracy against known ground truth); scores land in
        :attr:`quality`.

    Call :meth:`attach` before ``runtime.run()``; afterwards,
    :attr:`answers` holds (time, answer) pairs and :attr:`quality` the
    scored trajectory.
    """

    def __init__(
        self,
        runtime: SimulatedRuntime,
        stage_name: str,
        interval: float = 1.0,
        score: Optional[Callable[[Any], float]] = None,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        self.runtime = runtime
        self.stage_name = stage_name
        self.interval = float(interval)
        self.score = score
        self.answers: List[Tuple[float, Any]] = []
        self.quality = TimeSeries(f"{stage_name}.quality")
        self._attached = False

    def attach(self) -> None:
        """Arm the polling process (idempotent is an error: call once)."""
        if self._attached:
            raise RuntimeError("continuous query already attached")
        # Stage existence check against the configuration.
        self.runtime.deployment.config.stage(self.stage_name)
        self._attached = True
        self.runtime.env.process(self._poll(), name=f"query:{self.stage_name}")

    def _poll(self) -> Generator:
        # The runtime builds stages lazily inside run(); wait one tick so
        # the registry of stage runtimes exists.
        yield self.runtime.env.timeout(self.interval)
        while True:
            stage = self.runtime._stages.get(self.stage_name)
            if stage is None:
                # run() not started yet or stage vanished; try again.
                yield self.runtime.env.timeout(self.interval)
                continue
            answer = _resolve_query_fn(stage.processor)()
            now = self.runtime.env.now
            self.answers.append((now, answer))
            if self.score is not None:
                self.quality.record(now, float(self.score(answer)))
            if stage.done:
                return
            yield self.runtime.env.timeout(self.interval)

    def latest(self) -> Any:
        """Most recent polled answer."""
        if not self.answers:
            raise RuntimeError("no answers polled yet")
        return self.answers[-1][1]

    def time_to_quality(self, threshold: float) -> Optional[float]:
        """Earliest time the quality score reached ``threshold``."""
        for time, value in self.quality:
            if value >= threshold:
                return time
        return None
