"""Shared end-of-stream bookkeeping for every runtime.

GATES pipelines terminate cooperatively: each source appends an
:class:`~repro.core.items.EndOfStream` sentinel, and a stage finishes
once it has consumed one sentinel per input (stream edges plus external
source bindings), flushed, and forwarded its own sentinel downstream.

The counting itself is identical in the simulated, threaded, and
networked runtimes, so it lives here once.  The tracker is deliberately
tiny: runtimes own scheduling, flushing, and propagation; the tracker
only answers "how many sentinels am I waiting for, and has the last one
arrived?".
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["EosTracker", "no_input_message"]


def no_input_message(stage_name: str) -> str:
    """Standard error text for a stage that could never terminate.

    A stage with zero inputs never receives an ``EndOfStream`` and would
    hang the run; every runtime rejects such stages at build time with
    this message (each wrapped in its own runtime-specific error type).
    """
    return (
        f"stage {stage_name!r} has no input streams or source bindings "
        "and would never terminate"
    )


@dataclass
class EosTracker:
    """Counts ``EndOfStream`` sentinels against the number expected.

    ``expected`` is fixed while the pipeline is wired (one :meth:`expect`
    per inbound stream edge or source binding); ``seen`` advances as the
    stage consumes sentinels.  ``observe()`` returns ``True`` exactly
    when the sentinel that completes the input set arrives — the caller
    then flushes and propagates its own sentinel.

    ``seen`` is part of a stage's durable state: checkpoints persist it
    (see :class:`repro.resilience.checkpoint.StageCheckpoint`) and
    failover restores it via :meth:`restore`, so an at-least-once replay
    recounts exactly the sentinels that were not yet acknowledged.
    """

    expected: int = 0
    seen: int = 0

    def expect(self, n: int = 1) -> None:
        """Register ``n`` more inputs whose sentinels must arrive."""
        if n < 0:
            raise ValueError("cannot expect a negative number of inputs")
        self.expected += n

    def observe(self) -> bool:
        """Consume one sentinel; ``True`` if the input set is complete.

        Tolerant of over-delivery (at-least-once replay may re-deliver a
        sentinel already counted before a crash): extra sentinels keep
        returning ``True`` rather than raising, matching the historical
        behaviour of both runtimes.
        """
        self.seen += 1
        return self.seen >= self.expected

    @property
    def has_inputs(self) -> bool:
        """Whether at least one input was registered."""
        return self.expected > 0

    @property
    def complete(self) -> bool:
        """Whether every expected sentinel has been observed."""
        return self.expected > 0 and self.seen >= self.expected

    @property
    def remaining(self) -> int:
        """Sentinels still outstanding (never negative)."""
        return max(0, self.expected - self.seen)

    # -- checkpoint support ------------------------------------------------
    def snapshot(self) -> int:
        """Durable form of the progress counter (``seen``)."""
        return self.seen

    def restore(self, seen: int) -> None:
        """Reset progress from a checkpoint (``expected`` is rewiring's job)."""
        self.seen = int(seen)
