"""Shared end-of-stream bookkeeping for every runtime.

GATES pipelines terminate cooperatively: each source appends an
:class:`~repro.core.items.EndOfStream` sentinel, and a stage finishes
once it has consumed one sentinel per input (stream edges plus external
source bindings), flushed, and forwarded its own sentinel downstream.

The counting itself is identical in the simulated, threaded, and
networked runtimes, so it lives here once.  The tracker is deliberately
tiny: runtimes own scheduling, flushing, and propagation; the tracker
only answers "how many sentinels am I waiting for, and has the last one
arrived?".

Sharded upstreams (see :mod:`repro.core.sharding`) fan one logical
stream out into one edge per replica; each edge registers its own
expectation, so replica-group termination needs no special case.  The
tracker additionally accepts an optional *group* label per expectation,
letting a runtime account sentinels per replica group (``remaining_in``)
— e.g. to tell which upstream group a drain is still waiting on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

__all__ = ["EosTracker", "no_input_message"]

#: Label under which unlabeled expectations/observations are accounted.
_DEFAULT_GROUP = ""


def no_input_message(stage_name: str) -> str:
    """Standard error text for a stage that could never terminate.

    A stage with zero inputs never receives an ``EndOfStream`` and would
    hang the run; every runtime rejects such stages at build time with
    this message (each wrapped in its own runtime-specific error type).

    Arguments:
        stage_name: The inputless stage's name.

    Returns:
        The shared, runtime-independent error message.
    """
    return (
        f"stage {stage_name!r} has no input streams or source bindings "
        "and would never terminate"
    )


@dataclass
class EosTracker:
    """Counts ``EndOfStream`` sentinels against the number expected.

    ``expected`` is fixed while the pipeline is wired (one :meth:`expect`
    per inbound stream edge or source binding); ``seen`` advances as the
    stage consumes sentinels.  ``observe()`` returns ``True`` exactly
    when the sentinel that completes the input set arrives — the caller
    then flushes and propagates its own sentinel.

    ``seen`` is part of a stage's durable state: checkpoints persist it
    (see :class:`repro.resilience.checkpoint.StageCheckpoint`) and
    failover restores it via :meth:`restore`, so an at-least-once replay
    recounts exactly the sentinels that were not yet acknowledged.

    Expectations may carry a *group* label — the name of the upstream
    replica group whose edges they stand for.  Grouping never changes
    completion (the totals decide that); it only adds per-group
    accounting (:meth:`remaining_in`, :meth:`groups`).  Checkpoints
    persist only the total, so a restore loses the per-group split —
    acceptable, because replay re-delivers sentinels through the same
    labeled :meth:`observe` calls.
    """

    expected: int = 0
    seen: int = 0
    #: Per-group (expected, seen) counts; unlabeled calls use "".
    _groups: Dict[str, Tuple[int, int]] = field(default_factory=dict)

    def expect(self, n: int = 1, group: Optional[str] = None) -> None:
        """Register ``n`` more inputs whose sentinels must arrive.

        Arguments:
            n: Number of additional inputs (>= 0); one per inbound
                stream edge or source binding.
            group: Optional replica-group label for per-group
                accounting (e.g. the upstream shard group's name).
        """
        if n < 0:
            raise ValueError("cannot expect a negative number of inputs")
        self.expected += n
        label = group if group is not None else _DEFAULT_GROUP
        exp, seen = self._groups.get(label, (0, 0))
        self._groups[label] = (exp + n, seen)

    def observe(self, group: Optional[str] = None) -> bool:
        """Consume one sentinel; ``True`` if the input set is complete.

        Tolerant of over-delivery (at-least-once replay may re-deliver a
        sentinel already counted before a crash): extra sentinels keep
        returning ``True`` rather than raising, matching the historical
        behaviour of both runtimes.

        Arguments:
            group: Optional replica-group label the sentinel arrived
                from; must match the label used at :meth:`expect` time
                for per-group accounting to stay meaningful.

        Returns:
            ``True`` exactly from the sentinel completing the input set
            onward; ``False`` while sentinels are still outstanding.
        """
        self.seen += 1
        label = group if group is not None else _DEFAULT_GROUP
        exp, seen = self._groups.get(label, (0, 0))
        self._groups[label] = (exp, seen + 1)
        return self.seen >= self.expected

    @property
    def has_inputs(self) -> bool:
        """Whether at least one input was registered."""
        return self.expected > 0

    @property
    def complete(self) -> bool:
        """Whether every expected sentinel has been observed."""
        return self.expected > 0 and self.seen >= self.expected

    @property
    def remaining(self) -> int:
        """Sentinels still outstanding (never negative)."""
        return max(0, self.expected - self.seen)

    def remaining_in(self, group: str) -> int:
        """Sentinels still outstanding from one labeled group.

        Arguments:
            group: A replica-group label passed to :meth:`expect`.

        Returns:
            Outstanding sentinels under that label (never negative);
            0 for labels never registered.
        """
        exp, seen = self._groups.get(group, (0, 0))
        return max(0, exp - seen)

    def groups(self) -> Tuple[str, ...]:
        """The labels expectations were registered under.

        Returns:
            Sorted group labels, excluding the unlabeled default bucket.
        """
        return tuple(sorted(g for g in self._groups if g != _DEFAULT_GROUP))

    # -- checkpoint support ------------------------------------------------
    def snapshot(self) -> int:
        """Durable form of the progress counter.

        Returns:
            ``seen`` — the only part of the tracker that is stage
            progress rather than wiring (``expected`` is re-derived when
            the pipeline is rewired after a failover).
        """
        return self.seen

    def restore(self, seen: int) -> None:
        """Reset progress from a checkpoint.

        Arguments:
            seen: The checkpointed :meth:`snapshot` value; per-group
                splits are cleared into the unlabeled bucket
                (``expected`` is rewiring's job).
        """
        self.seen = int(seen)
        self._groups = {
            label: (exp, 0) for label, (exp, _) in self._groups.items()
        }
        if self.seen:
            exp, _ = self._groups.get(_DEFAULT_GROUP, (0, 0))
            self._groups[_DEFAULT_GROUP] = (exp, self.seen)
