"""Data units flowing between stages."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.obs.tracing import Hop, ItemTrace

__all__ = ["EndOfStream", "Item"]


@dataclass(slots=True)
class Item:
    """One data item in flight through the pipeline.

    Attributes
    ----------
    payload:
        Application data.
    size:
        Bytes, used for link transmission time and per-byte CPU cost.
    origin:
        Name of the stream (edge) that delivered the item into the current
        stage, or the source binding name for external arrivals.
    created_at:
        Simulation/wall time when the item entered the system (for
        end-to-end latency accounting).
    trace:
        Sampled hop-trace context (:mod:`repro.obs.tracing`), or None for
        the untraced majority.  Emissions inherit the trace of the item
        being processed, so the context follows the data across stages.
    hop:
        The trace's open :class:`~repro.obs.tracing.Hop` for the stage
        queue this item currently sits in (runtime-internal).
    """

    payload: Any
    size: float = 8.0
    origin: str = ""
    created_at: float = 0.0
    trace: Optional[ItemTrace] = None
    hop: Optional[Hop] = None

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"item size must be >= 0, got {self.size}")


@dataclass(frozen=True)
class EndOfStream:
    """Sentinel marking the end of one input stream.

    A stage with N input streams terminates after receiving N sentinels,
    then flushes and propagates its own sentinel downstream.
    """

    origin: str = ""
    #: Size is zero: the sentinel is a control message, effectively free
    #: to transmit (modeled as a minimal 1-byte frame on links).
    size: float = field(default=1.0)
