"""Run results and per-stage statistics.

Since the observability layer (:mod:`repro.obs`), both runtimes publish
their measurements into a :class:`~repro.obs.registry.MetricsRegistry`
during the run and *materialize* :class:`StageStats` from it at the end
(:meth:`StageStats.from_registry`) — the stats are views over the
registry, so the simulated and threaded runtimes report identically and
the exporters serialize one source of truth.  :class:`StageStats` remains
a plain dataclass so tests and analysis code can also build one directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.obs.registry import MetricsRegistry
from repro.obs.tracing import ItemTrace
from repro.simnet.trace import EventLog, StatSummary, TimeSeries, percentile

__all__ = ["RunResult", "StageStats"]


@dataclass
class StageStats:
    """Everything measured about one stage during a run."""

    stage_name: str
    host_name: str = ""
    items_in: int = 0
    items_out: int = 0
    #: Items dropped at ingestion (lossy source bindings only).
    items_dropped: int = 0
    #: EWMA arrival-rate estimate (items/s) at the end of the run — the
    #: paper's "monitors the arrival rate" signal, per stage.
    arrival_rate: float = 0.0
    bytes_in: float = 0.0
    bytes_out: float = 0.0
    busy_seconds: float = 0.0
    #: Adjustment-parameter trajectories, name -> series (Figures 8/9).
    parameter_history: Dict[str, TimeSeries] = field(default_factory=dict)
    #: Long-term load score trajectory (d̃ over time).
    load_history: Optional[TimeSeries] = None
    #: Queue length series sampled on the adaptation cadence.
    queue_history: Optional[TimeSeries] = None
    #: Over-/under-load exceptions *received from downstream*.
    exceptions_received: int = 0
    #: Exceptions this stage reported upstream.
    exceptions_reported: int = 0
    #: Per-item latency samples (arrival at system -> processed here).
    latencies: List[float] = field(default_factory=list)
    #: Final value returned by the stage processor's ``result()``.
    final_value: Any = None

    @classmethod
    def from_registry(
        cls,
        registry: MetricsRegistry,
        stage_name: str,
        host_name: str = "",
        final_value: Any = None,
    ) -> "StageStats":
        """Materialize the stats view of one stage from the registry.

        Missing metrics read as zero/empty, so a registry populated by
        either runtime (or loaded from an export) yields the same shape.
        """
        prefix = f"stage.{stage_name}"
        stats = cls(
            stage_name=stage_name,
            host_name=host_name,
            items_in=int(registry.value(f"{prefix}.items_in", 0.0)),
            items_out=int(registry.value(f"{prefix}.items_out", 0.0)),
            items_dropped=int(registry.value(f"{prefix}.items_dropped", 0.0)),
            arrival_rate=registry.value(f"{prefix}.arrival_rate", 0.0),
            bytes_in=registry.value(f"{prefix}.bytes_in", 0.0),
            bytes_out=registry.value(f"{prefix}.bytes_out", 0.0),
            busy_seconds=registry.value(f"{prefix}.busy_seconds", 0.0),
            exceptions_received=int(
                registry.value(f"{prefix}.exceptions_received", 0.0)
            ),
            exceptions_reported=int(
                registry.value(f"{prefix}.exceptions_reported", 0.0)
            ),
            final_value=final_value,
        )
        if f"{prefix}.latency" in registry:
            stats.latencies = registry.get(f"{prefix}.latency").samples
        if f"{prefix}.queue_len" in registry:
            stats.queue_history = registry.get(f"{prefix}.queue_len").series
        if f"adapt.{stage_name}.d_tilde" in registry:
            stats.load_history = registry.get(f"adapt.{stage_name}.d_tilde").series
        param_prefix = f"adapt.{stage_name}.param."
        for name in registry.names(param_prefix):
            stats.parameter_history[name[len(param_prefix):]] = (
                registry.get(name).series
            )
        return stats

    def latency_summary(self) -> StatSummary:
        """Summary of end-to-end latencies observed at this stage."""
        return StatSummary.of(self.latencies)

    def latency_percentiles(self, qs=(50.0, 95.0, 99.0)) -> Dict[float, float]:
        """Latency percentiles (default p50/p95/p99).

        Reporting surface: an empty sample set zero-fills via the shared
        ``percentile(..., default=0.0)`` contract (see
        :func:`repro.simnet.trace.percentile`).
        """
        return {q: percentile(self.latencies, q, default=0.0) for q in qs}

    def to_dict(self, include_series: bool = True) -> Dict[str, Any]:
        """JSON-ready representation.

        ``include_series=False`` drops the (potentially long) parameter /
        load / queue trajectories and raw latency samples, keeping only
        scalars — the compact form for result tables.
        """
        data: Dict[str, Any] = {
            "stage_name": self.stage_name,
            "host_name": self.host_name,
            "items_in": self.items_in,
            "items_out": self.items_out,
            "items_dropped": self.items_dropped,
            "arrival_rate": self.arrival_rate,
            "bytes_in": self.bytes_in,
            "bytes_out": self.bytes_out,
            "busy_seconds": self.busy_seconds,
            "exceptions_received": self.exceptions_received,
            "exceptions_reported": self.exceptions_reported,
            "latency_mean": self.latency_summary().mean,
            "final_value": self.final_value,
        }
        if include_series:
            data["parameter_history"] = {
                name: series.to_dict()
                for name, series in self.parameter_history.items()
            }
            data["load_history"] = (
                self.load_history.to_dict() if self.load_history else None
            )
            data["queue_history"] = (
                self.queue_history.to_dict() if self.queue_history else None
            )
            data["latencies"] = list(self.latencies)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "StageStats":
        """Inverse of :meth:`to_dict` (full form with series)."""
        stats = cls(
            stage_name=data["stage_name"],
            host_name=data.get("host_name", ""),
            items_in=data.get("items_in", 0),
            items_out=data.get("items_out", 0),
            items_dropped=data.get("items_dropped", 0),
            arrival_rate=data.get("arrival_rate", 0.0),
            bytes_in=data.get("bytes_in", 0.0),
            bytes_out=data.get("bytes_out", 0.0),
            busy_seconds=data.get("busy_seconds", 0.0),
            exceptions_received=data.get("exceptions_received", 0),
            exceptions_reported=data.get("exceptions_reported", 0),
            final_value=data.get("final_value"),
        )
        for name, payload in (data.get("parameter_history") or {}).items():
            stats.parameter_history[name] = TimeSeries.from_dict(payload)
        if data.get("load_history"):
            stats.load_history = TimeSeries.from_dict(data["load_history"])
        if data.get("queue_history"):
            stats.queue_history = TimeSeries.from_dict(data["queue_history"])
        stats.latencies = list(data.get("latencies") or [])
        return stats

    @property
    def selectivity(self) -> float:
        """items_out / items_in (data-reduction factor of the stage)."""
        return self.items_out / self.items_in if self.items_in else 0.0


@dataclass
class RunResult:
    """Outcome of executing a deployed application."""

    app_name: str
    #: Simulated (or wall-clock) seconds from start to completion — the
    #: "execution time" of Figures 5 and 6.
    execution_time: float = 0.0
    stages: Dict[str, StageStats] = field(default_factory=dict)
    events: EventLog = field(default_factory=EventLog)
    #: The metrics registry the runtime published into (None for results
    #: assembled by hand or by pre-observability code paths).
    metrics: Optional[MetricsRegistry] = None
    #: Sampled per-item hop traces (empty unless tracing was enabled).
    traces: List[ItemTrace] = field(default_factory=list)

    def stage(self, name: str) -> StageStats:
        """Stats for one stage."""
        try:
            return self.stages[name]
        except KeyError:
            raise KeyError(
                f"no stage {name!r} in results (have {sorted(self.stages)})"
            ) from None

    def final_value(self, stage_name: str) -> Any:
        """The ``result()`` of a (typically sink) stage."""
        return self.stage(stage_name).final_value

    def parameter_series(self, stage_name: str, parameter: str) -> TimeSeries:
        """Trajectory of one adjustment parameter (Figures 8/9 series)."""
        stage = self.stage(stage_name)
        try:
            return stage.parameter_history[parameter]
        except KeyError:
            raise KeyError(
                f"stage {stage_name!r} has no parameter {parameter!r} "
                f"(have {sorted(stage.parameter_history)})"
            ) from None

    def total_bytes_moved(self) -> float:
        """Sum of bytes received by all stages (network volume proxy)."""
        return sum(s.bytes_in for s in self.stages.values())

    def total_exceptions(self) -> int:
        """All load exceptions reported during the run."""
        return sum(s.exceptions_reported for s in self.stages.values())

    def to_dict(self, include_series: bool = True) -> Dict[str, Any]:
        """JSON-ready representation of the whole run.

        The ``final_value`` of each stage must itself be JSON-serializable
        for ``json.dumps`` to succeed — all shipped applications return
        dicts/lists of primitives.
        """
        return {
            "app_name": self.app_name,
            "execution_time": self.execution_time,
            "stages": {
                name: stats.to_dict(include_series=include_series)
                for name, stats in self.stages.items()
            },
            "events": [
                {"time": t, "kind": kind, **attrs}
                for t, kind, attrs in self.events.entries
            ],
            "metrics": self.metrics.to_dict() if self.metrics else None,
            "traces": [trace.to_dict() for trace in self.traces],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunResult":
        """Inverse of :meth:`to_dict` — what the JSONL loader assembles."""
        result = cls(
            app_name=data["app_name"],
            execution_time=data.get("execution_time", 0.0),
        )
        for name, payload in data.get("stages", {}).items():
            result.stages[name] = StageStats.from_dict(payload)
        for event in data.get("events", []):
            attrs = {k: v for k, v in event.items() if k not in ("time", "kind")}
            result.events.log(event["time"], event["kind"], **attrs)
        if data.get("metrics"):
            result.metrics = MetricsRegistry.from_dict(data["metrics"])
        result.traces = [
            ItemTrace.from_dict(t) for t in data.get("traces") or []
        ]
        return result
