"""GATES middleware core: stage API, self-adaptation, runtimes.

This package is the paper's primary contribution:

* :mod:`repro.core.api` — the developer-facing stage API
  (:class:`StreamProcessor`, :meth:`StageContext.specify_parameter` /
  :meth:`StageContext.get_suggested_value`, mirroring Section 3.3's
  ``specifyPara`` / ``getSuggestedValue``).
* :mod:`repro.core.adaptation` — the self-adaptation algorithm of
  Section 4 (load factors φ₁/φ₂/φ₃, the long-term load score d̃, the
  over-/under-load exception protocol, and the ΔP parameter controller).
* :mod:`repro.core.runtime_sim` — the deterministic discrete-event
  runtime that executes a deployed application over the simulated grid.
* :mod:`repro.core.runtime_threads` — a real-thread runtime with
  token-bucket throttled links, demonstrating the middleware under real
  concurrency.
"""

from repro.core.adaptation import (
    AdaptationPolicy,
    LoadEstimator,
    LoadExceptionKind,
    ParameterController,
    phi1,
    phi2_linear,
    phi2_saturating,
    phi3,
)
from repro.core.api import (
    AdjustmentParameter,
    ProcessorError,
    StageContext,
    StreamProcessor,
)
from repro.core.items import EndOfStream, Item
from repro.core.queries import ContinuousQuery
from repro.core.results import RunResult, StageStats
from repro.core.stages import (
    AdaptiveSampleStage,
    BatchStage,
    CollectStage,
    FilterStage,
    MapStage,
    SlidingWindowStage,
    TumblingWindowStage,
)
from repro.core.runtime_sim import SimulatedRuntime, SourceBinding
from repro.core.runtime_threads import ThreadedRuntime

__all__ = [
    "AdaptationPolicy",
    "AdaptiveSampleStage",
    "AdjustmentParameter",
    "BatchStage",
    "CollectStage",
    "ContinuousQuery",
    "EndOfStream",
    "FilterStage",
    "MapStage",
    "SlidingWindowStage",
    "TumblingWindowStage",
    "Item",
    "LoadEstimator",
    "LoadExceptionKind",
    "ParameterController",
    "ProcessorError",
    "RunResult",
    "SimulatedRuntime",
    "SourceBinding",
    "StageContext",
    "StageStats",
    "StreamProcessor",
    "ThreadedRuntime",
    "phi1",
    "phi2_linear",
    "phi2_saturating",
    "phi3",
]
