"""Deterministic discrete-event runtime for deployed GATES applications.

This module ties everything together: it takes a
:class:`~repro.grid.deployer.Deployment` (stages already placed on hosts by
the grid substrate), wires the configured streams over the network's links,
instantiates the user processors inside their service instances, and runs
the pipeline plus the self-adaptation machinery as simulation processes.

Per stage, three kinds of processes run:

* the **worker** — pulls items from the stage's input queue, charges the
  host CPU for each item, invokes the user's
  :class:`~repro.core.api.StreamProcessor`, and transmits emissions over
  the (bandwidth-limited) links to downstream queues.  Sender-side
  blocking on a saturated link is what backs data up into the stage's own
  queue — the mechanism behind the network-constraint adaptation of
  Figure 9.
* the **monitor** — on the adaptation cadence, feeds the stage's
  :class:`~repro.core.adaptation.LoadEstimator`, forwards any over-/
  under-load exception to the *upstream* stages' exception counters, and
  every ``adjust_every`` samples runs the stage's
  :class:`~repro.core.adaptation.ParameterController` s.
* **source feeders** — external stream arrivals (instruments,
  simulations) bound to first-layer stages at a configurable rate.

Downstream queue occupancy beyond capacity C is allowed (``force_put``):
the paper's model *observes* saturation (that is the signal adaptation
responds to) rather than hard-failing; lengths are clamped to C inside
the load factors.

Fault tolerance (opt-in via ``resilience=``; see docs/fault_tolerance.md)
adds three more per-stage mechanisms:

* a **checkpointer** snapshots the stage (processor state, adjustment
  parameters, adaptation state, replay cursors) on a cadence — never
  mid-item, so checkpoints are always item-consistent;
* every queue insertion is recorded in a bounded per-channel **replay
  buffer**; the worker acknowledges a message only after fully
  processing it, and :meth:`SimulatedRuntime.failover_stage` rebuilds a
  crashed stage from its last checkpoint and re-delivers everything
  unacknowledged (at-least-once: duplicates are counted, not hidden);
* transmission faults on lossy links are **retried** with exponential
  backoff, and poison items are skipped or quarantined to a dead-letter
  queue under the configured error policy.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, Iterable, List, Optional, Tuple

from repro.core.adaptation.controller import ParameterController
from repro.core.adaptation.load import LoadEstimator
from repro.core.adaptation.policy import AdaptationPolicy
from repro.core.adaptation.protocol import ExceptionCounter
from repro.core.api import AdjustmentParameter, ProcessorError, StageContext, StreamProcessor
from repro.core.batching import BatchBuffer, BatchPolicy, batch_policy_from_properties
from repro.core.items import EndOfStream, Item
from repro.core.results import RunResult, StageStats
from repro.core.sharding import (
    SHARD_GROUP_PROPERTY,
    SHARD_INDEX_PROPERTY,
    ShardGroup,
    groups_of,
    logical_stream,
)
from repro.core.termination import EosTracker, no_input_message
from repro.grid.config import StreamConfig
from repro.grid.deployer import Deployment
from repro.metrics.rates import RateEstimator
from repro.obs.registry import BatchMetrics, MetricsRegistry, StageMetrics
from repro.obs.tracing import ItemTrace, TraceCollector, publish_traces
from repro.resilience.checkpoint import (
    CheckpointStore,
    MemoryCheckpointStore,
    StageCheckpoint,
)
from repro.resilience.policy import DeadLetter, DeadLetterQueue, ResilienceConfig
from repro.resilience.replay import ReplayBuffers
from repro.simnet.engine import Environment, Event, SimulationError
from repro.simnet.hosts import HostFailedError
from repro.simnet.links import Link, TransmissionError
from repro.simnet.resources import BoundedQueue
from repro.simnet.topology import Network

__all__ = ["RuntimeError_", "SimulatedRuntime", "SourceBinding"]


class RuntimeError_(Exception):
    """Raised for invalid runtime configuration (name avoids the builtin)."""


@dataclass
class SourceBinding:
    """An external data stream feeding a first-layer stage.

    Parameters
    ----------
    name:
        Diagnostic name; also the ``origin`` tag on injected items.
    target_stage:
        Name of the stage receiving the stream.
    payloads:
        Iterable of payload objects (consumed once).
    rate:
        Arrival rate in items/second, or ``None`` to deliver as fast as
        the pipeline accepts (the finite-workload mode of the Figure 5/6
        experiments).  Ignored when ``arrivals`` is given.
    item_size:
        Bytes per item, or a callable payload -> bytes.
    arrivals:
        Optional :class:`~repro.streams.arrivals.ArrivalProcess` supplying
        inter-arrival gaps (Poisson, bursty ON/OFF ...); overrides
        ``rate``.
    drop_when_full:
        If True, arrivals finding the stage queue at capacity are
        *dropped* (counted in the stage's ``items_dropped``) instead of
        back-pressuring the source — real instruments do not pause; "it
        is often not feasible to store all data" (Section 1).
    """

    name: str
    target_stage: str
    payloads: Iterable[Any]
    rate: Optional[float] = None
    item_size: float | Callable[[Any], float] = 8.0
    arrivals: Optional[Any] = None
    drop_when_full: bool = False

    def size_of(self, payload: Any) -> float:
        """Bytes to account for ``payload`` on the wire."""
        if callable(self.item_size):
            return float(self.item_size(payload))
        return float(self.item_size)


class _SimStageContext(StageContext):
    """Runtime-backed stage context handed to user processors."""

    def __init__(self, stage: "_StageRuntime", runtime: "SimulatedRuntime") -> None:
        self._stage = stage
        self._runtime = runtime
        self._in_setup = False
        #: True while a failover re-runs setup() on a fresh processor
        #: instance; duplicate parameter declarations then return the
        #: surviving parameter object (its value, history series, and
        #: controller all outlive the crashed incarnation).
        self._restoring = False
        #: Emissions buffered during one on_item/flush call; the worker
        #: transmits them (with blocking) after the call returns.  Each
        #: entry is (payload, size, stream-or-None).
        self.pending: List[Tuple[Any, float, Optional[str]]] = []

    def specify_parameter(
        self,
        name: str,
        initial: float,
        minimum: float,
        maximum: float,
        increment: float,
        direction: int,
    ) -> AdjustmentParameter:
        if not self._in_setup:
            raise ProcessorError(
                f"{self._stage.name}: specify_parameter must be called in setup()"
            )
        if name in self._stage.parameters:
            if self._restoring:
                return self._stage.parameters[name]
            raise ProcessorError(f"{self._stage.name}: parameter {name!r} declared twice")
        param = AdjustmentParameter(name, initial, minimum, maximum, increment, direction)
        param.set_value(initial, self.now)
        self._stage.parameters[name] = param
        self._stage.controllers[name] = ParameterController(
            param, self._runtime.policy
        )
        return param

    def get_suggested_value(self, name: str) -> float:
        try:
            return self._stage.parameters[name].value
        except KeyError:
            raise ProcessorError(
                f"{self._stage.name}: unknown parameter {name!r}"
            ) from None

    def emit(self, payload: Any, size: float = 8.0, stream: Optional[str] = None) -> None:
        if size < 0:
            raise ProcessorError(f"emit size must be >= 0, got {size}")
        if stream is not None and not any(
            e.stream.name == stream or logical_stream(e.stream.name) == stream
            for e in self._stage.out_edges
        ):
            raise ProcessorError(
                f"{self._stage.name}: emit to unknown stream {stream!r} "
                f"(have {[e.stream.name for e in self._stage.out_edges]})"
            )
        self.pending.append((payload, float(size), stream))

    @property
    def now(self) -> float:
        return self._runtime.env.now

    @property
    def stage_name(self) -> str:
        return self._stage.name

    @property
    def properties(self) -> Dict[str, str]:
        return self._stage.properties


@dataclass
class _Edge:
    """One wired stream: src stage -> (link or colocated) -> dst stage."""

    stream: StreamConfig
    dst: "_StageRuntime"
    #: Bottleneck link along the routed path (None when colocated).
    link: Optional[Link]
    #: Total propagation latency of the remaining hops.
    extra_latency: float = 0.0


class _BatchEnvelope:
    """Several Items shipped over a link as one transmission.

    The envelope pays one token-bucket charge for the summed size (the
    batched fast path's saving); :meth:`SimulatedRuntime._deliver` unpacks
    it so the destination still sees individual items — per-item replay
    recording, hop opening, and queue occupancy are unchanged.
    """

    __slots__ = ("items", "size", "origin")

    def __init__(self, items: List[Item], origin: str) -> None:
        self.items = items
        self.size = sum(item.size for item in items)
        self.origin = origin


@dataclass
class _RouteUnit:
    """One routing decision among a stage's out-edges.

    A *solo* unit (``group is None``) wraps one ordinary edge.  A
    *family* unit wraps the per-replica edges fanning out to one sharded
    destination group: ``edges[slot]`` is the out-edge index reaching
    replica ``slot``, and exactly one of them — the key owner's — gets
    each emitted item.  ``accepts`` holds every stream name addressing
    the unit (the declared name plus, for families, the expanded
    per-replica names); ``named`` maps a concrete per-replica stream
    name to its slot so an explicit ``emit(..., stream="t#1")``
    overrides the partitioner.
    """

    accepts: frozenset
    edges: List[int]
    group: Optional[str] = None
    named: Dict[str, int] = field(default_factory=dict)


@dataclass
class _StageRuntime:
    """Internal per-stage runtime state."""

    name: str
    host_name: str
    processor: StreamProcessor
    queue: BoundedQueue
    properties: Dict[str, str]
    policy: AdaptationPolicy
    eos: EosTracker = field(default_factory=EosTracker)
    out_edges: List[_Edge] = field(default_factory=list)
    upstream: List["_StageRuntime"] = field(default_factory=list)
    parameters: Dict[str, AdjustmentParameter] = field(default_factory=dict)
    controllers: Dict[str, ParameterController] = field(default_factory=dict)
    exceptions: ExceptionCounter = field(default_factory=ExceptionCounter)
    estimator: Optional[LoadEstimator] = None
    context: Optional[_SimStageContext] = None
    rate_estimator: RateEstimator = field(default_factory=RateEstimator)
    #: Registry-backed metric handles (items/bytes/latency/queue...).
    metrics: Optional[StageMetrics] = None
    #: Effective micro-batch policy (None = one-at-a-time emission).
    batch: Optional[BatchPolicy] = None
    #: One accumulating buffer per out-edge (parallel to ``out_edges``),
    #: holding (item, parent-hop) entries.
    batch_buffers: List[BatchBuffer] = field(default_factory=list)
    batch_metrics: Optional[BatchMetrics] = None
    #: Routing decisions over ``out_edges`` (solo edges and sharded
    #: families); built once in ``_build`` after the edges are wired.
    route_units: List[_RouteUnit] = field(default_factory=list)
    done: bool = False
    # -- fault-tolerance state (used only with resilience enabled) --------
    #: Channel (message origin) -> sequence number of the last fully
    #: processed delivery.  Deliveries are per-channel FIFO, so the
    #: worker's increment-per-message stays aligned with the insertion
    #: sequence numbers the replay buffer assigns.
    cursors: Dict[str, int] = field(default_factory=dict)
    #: Incarnation counter; bumped per failover so superseded workers
    #: notice and exit instead of corrupting the restored state.
    generation: int = 0
    #: When the stage went down (None while healthy).
    down_since: Optional[float] = None
    #: True while the worker is between dequeue and acknowledgment; the
    #: checkpointer defers to keep checkpoints item-consistent.
    in_flight: bool = False
    checkpoint_due: bool = False
    #: True while a planned migration is draining/switching this stage;
    #: the recovery watch and failure detector must not treat the
    #: hand-off as an outage (see docs/migration.md).
    migrating: bool = False
    #: Worker generations superseded by a *planned* switch whose pending
    #: ``get`` may already hold an item: on resume they must give the
    #: item back (nothing replays on the planned path).  Entries are
    #: consumed by the superseded worker within the switch's timestep.
    requeue_generations: set = field(default_factory=set)


class SimulatedRuntime:
    """Executes a deployment on the simulated grid fabric.

    Typical use::

        runtime = SimulatedRuntime(env, network, deployment)
        runtime.bind_source(SourceBinding("s0", "filter-0", payloads, rate=100.0))
        result = runtime.run()

    ``run`` drives the environment until every stage has flushed (or
    ``max_sim_time`` elapses) and returns a
    :class:`~repro.core.results.RunResult`.

    Passing ``resilience=ResilienceConfig(...)`` arms the fault-tolerance
    machinery (checkpointing, replay-based failover, transmission retry,
    poison-item quarantine); without it the runtime keeps the original
    fail-stop behaviour — any fault aborts the run.
    """

    #: Default input-queue capacity C when a stage doesn't override it via
    #: the "queue-capacity" configuration property.
    DEFAULT_QUEUE_CAPACITY = 200

    def __init__(
        self,
        env: Environment,
        network: Network,
        deployment: Deployment,
        policy: Optional[AdaptationPolicy] = None,
        adaptation_enabled: bool = True,
        metrics: Optional[MetricsRegistry] = None,
        trace_every: Optional[int] = None,
        max_traces: int = 10_000,
        resilience: Optional[ResilienceConfig] = None,
        checkpoints: Optional[CheckpointStore] = None,
        batch: Optional[BatchPolicy] = None,
    ) -> None:
        """``metrics`` shares a registry (e.g. with a MonitoringService);
        ``trace_every=N`` hop-traces every N-th source arrival (None
        disables tracing; 1 traces everything).  ``checkpoints`` selects
        the checkpoint store (defaults to an in-memory one when
        ``resilience`` is given).  ``batch`` enables the micro-batched
        emission fast path for every stage (``batch-max-items`` /
        ``batch-max-delay`` stage properties override it per stage);
        ``max_delay`` is in simulated seconds.  See docs/performance.md.
        """
        self.env = env
        self.network = network
        self.deployment = deployment
        self.policy = policy or AdaptationPolicy()
        self.adaptation_enabled = adaptation_enabled
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer: Optional[TraceCollector] = (
            TraceCollector(trace_every, max_traces=max_traces)
            if trace_every is not None
            else None
        )
        self.batch = batch
        self.resilience = resilience
        self.checkpoints: Optional[CheckpointStore] = None
        self.replay: Optional[ReplayBuffers] = None
        self.dead_letters: Optional[DeadLetterQueue] = None
        self._retry_rng: Optional[random.Random] = None
        if resilience is not None:
            self.checkpoints = (
                checkpoints if checkpoints is not None else MemoryCheckpointStore()
            )
            self.replay = ReplayBuffers(resilience.replay_limit)
            self.dead_letters = DeadLetterQueue(resilience.dead_letter_limit)
            self._retry_rng = random.Random(resilience.seed)
        elif checkpoints is not None:
            raise RuntimeError_("checkpoints= requires resilience= as well")
        self._bindings: List[SourceBinding] = []
        self._stages: Dict[str, _StageRuntime] = {}
        #: Shard groups reconstructed from the expanded config's replica
        #: markers (see repro.core.sharding); static here — the
        #: simulated runtime runs the declared active count unchanged.
        self._groups: Dict[str, ShardGroup] = {}
        self._shard_counters: Dict[str, Any] = {}
        self._stage_done: Dict[str, Event] = {}
        self._result: Optional[RunResult] = None
        self._built = False
        #: Completed planned moves, in commit order.
        self.migrations: List[Any] = []
        #: Per-stage FIFO of pending migration requests; a drainer
        #: process per stage serializes them (double triggers queue).
        self._migration_queues: Dict[str, List[Tuple[Any, Optional[str], str]]] = {}
        self._migration_drainers: set = set()

    # -- setup -------------------------------------------------------------

    def bind_source(self, binding: SourceBinding) -> None:
        """Attach an external stream to a stage (before :meth:`run`).

        ``target_stage`` may also name a shard *group* (the declared
        name of a stage expanded into replicas): the feeder then routes
        each arrival to the replica owning its key and delivers the
        end-of-stream sentinel to every replica slot.
        """
        if self._built:
            raise RuntimeError_("cannot bind sources after run()")
        if binding.rate is not None and binding.rate <= 0:
            raise RuntimeError_(f"source rate must be > 0, got {binding.rate}")
        config = self.deployment.config
        target = binding.target_stage
        if not any(
            stage.name == target
            or stage.properties.get(SHARD_GROUP_PROPERTY) == target
            for stage in config.stages
        ):
            raise RuntimeError_(
                f"source {binding.name!r}: unknown target stage {target!r}"
            )
        self._bindings.append(binding)

    def _build(self) -> None:
        config = self.deployment.config
        for stage_cfg in config.stages:
            host_name = self.deployment.host_of(stage_cfg.name)
            properties = {
                k: str(v)
                for k, v in self.deployment.instance_of(stage_cfg.name).properties.items()
            }
            capacity = int(properties.get("queue-capacity", self.DEFAULT_QUEUE_CAPACITY))
            queue = BoundedQueue(self.env, capacity=capacity, window=self.policy.window)
            processor = self.deployment.instance_of(stage_cfg.name).instantiate_processor()
            if not isinstance(processor, StreamProcessor):
                raise RuntimeError_(
                    f"stage {stage_cfg.name!r} code is not a StreamProcessor "
                    f"(got {type(processor).__name__})"
                )
            stage = _StageRuntime(
                name=stage_cfg.name,
                host_name=host_name,
                processor=processor,
                queue=queue,
                properties=properties,
                policy=self.policy,
            )
            stage.metrics = StageMetrics(self.metrics, stage_cfg.name)
            stage.estimator = LoadEstimator(stage_cfg.name, queue, self.policy)
            self.metrics.series(
                f"adapt.{stage_cfg.name}.d_tilde", stage.estimator.history
            )
            stage.context = _SimStageContext(stage, self)
            if self.replay is not None:
                # Record every insertion at insertion time (including
                # blocked puts admitted later), so a failover's purge can
                # never outrun the replay record.
                queue.on_insert = (
                    lambda message, _stage=stage: self._record_delivery(_stage, message)
                )
            self._stages[stage_cfg.name] = stage

        # Reconstruct shard groups from the expanded config's markers.
        self._groups = groups_of(
            {name: stage.properties for name, stage in self._stages.items()}
        )
        for group in self._groups.values():
            for member in group.members:
                self._shard_counters[member] = self.metrics.counter(
                    f"shard.{member}.items"
                )

        # Wire edges over the network.
        for stream in config.streams:
            src = self._stages[stream.src]
            dst = self._stages[stream.dst]
            edge = _Edge(stream=stream, dst=dst, link=None)
            self._wire_edge(edge, src)
            src.out_edges.append(edge)
            dst.upstream.append(src)
            dst.eos.expect(group=src.properties.get(SHARD_GROUP_PROPERTY))
        for stage in self._stages.values():
            self._build_route_units(stage)

        # Account for external source bindings (a group target expects
        # one end-of-stream per replica slot — the feeder sends to all).
        for binding in self._bindings:
            group = self._groups.get(binding.target_stage)
            if group is not None and binding.target_stage not in self._stages:
                for member in group.members:
                    self._stages[member].eos.expect()
            else:
                self._stages[binding.target_stage].eos.expect()

        # Resolve per-stage micro-batch policies now that edges exist.
        for stage in self._stages.values():
            try:
                effective = batch_policy_from_properties(stage.properties, self.batch)
            except ValueError as exc:
                raise RuntimeError_(f"stage {stage.name!r}: {exc}") from None
            if effective is not None and effective.enabled and stage.out_edges:
                stage.batch = effective
                stage.batch_buffers = [BatchBuffer(effective) for _ in stage.out_edges]
                stage.batch_metrics = BatchMetrics(self.metrics, stage.name)

        # Every stage must have at least one input, or it can never end.
        for stage in self._stages.values():
            if not stage.eos.has_inputs:
                raise RuntimeError_(no_input_message(stage.name))
        self._built = True

    def _wire_edge(self, edge: _Edge, src: _StageRuntime) -> None:
        """(Re)bind an edge to the current src/dst host placement."""
        src_host = src.host_name
        dst_host = edge.dst.host_name
        if src_host == dst_host:
            edge.link = None
            edge.extra_latency = 0.0
            return
        links = self.network.route(src_host, dst_host)
        bottleneck = min(links, key=lambda l: l.bandwidth)
        edge.extra_latency = sum(l.latency for l in links if l is not bottleneck)
        # The runtime tracks its own deliveries (it must attribute
        # each message to its edge); leaving inbox collection on
        # would let unrelated cross-traffic interleave and would
        # leak memory on long runs.
        bottleneck.collect_inbox = False
        bottleneck.bind_metrics(self.metrics)
        edge.link = bottleneck

    def _build_route_units(self, stage: _StageRuntime) -> None:
        """Group a stage's out-edges into routing units.

        Edges fanning out to the replicas of one sharded destination
        group (same declared stream name, same group) collapse into one
        partitioned *family* unit; everything else stays a solo unit.
        A partial family — some replica edge missing, which only
        hand-built configs can produce — falls back to solo units
        rather than partitioning over an incomplete slot set.
        """
        families: Dict[Tuple[str, str], Dict[int, int]] = {}
        order: List[Tuple[Optional[Tuple[str, str]], int]] = []
        for index, edge in enumerate(stage.out_edges):
            dst_group = edge.dst.properties.get(SHARD_GROUP_PROPERTY)
            if dst_group is None:
                order.append((None, index))
                continue
            key = (logical_stream(edge.stream.name), dst_group)
            if key not in families:
                order.append((key, index))
            families[key] = families.get(key, {})
            families[key][int(edge.dst.properties[SHARD_INDEX_PROPERTY])] = index
        for key, index in order:
            if key is None:
                edge = stage.out_edges[index]
                stage.route_units.append(
                    _RouteUnit(
                        accepts=frozenset({edge.stream.name}), edges=[index]
                    )
                )
                continue
            logical, dst_group = key
            mapping = families[key]
            slots = len(self._groups[dst_group].members)
            if set(mapping) == set(range(slots)):
                edges = [mapping[slot] for slot in range(slots)]
                names = {stage.out_edges[i].stream.name for i in edges}
                stage.route_units.append(
                    _RouteUnit(
                        accepts=frozenset(names | {logical}),
                        edges=edges,
                        group=dst_group,
                        named={
                            stage.out_edges[i].stream.name: slot
                            for slot, i in enumerate(edges)
                        },
                    )
                )
            else:
                for edge_index in sorted(mapping.values()):
                    name = stage.out_edges[edge_index].stream.name
                    stage.route_units.append(
                        _RouteUnit(
                            accepts=frozenset({name, logical}),
                            edges=[edge_index],
                        )
                    )

    def _route_indices(
        self, stage: _StageRuntime, payload: Any, stream: Optional[str]
    ) -> Iterable[int]:
        """Out-edge indices one emission goes to.

        Solo units behave like the pre-sharding fan-out (every edge
        matching the requested stream, or all of them on a broadcast);
        a family unit contributes exactly one edge — the key owner's, or
        the explicitly addressed replica's.
        """
        for unit in stage.route_units:
            if stream is not None and stream not in unit.accepts:
                continue
            if unit.group is None:
                yield unit.edges[0]
                continue
            if stream is not None and stream in unit.named:
                slot = unit.named[stream]
            else:
                slot = self._groups[unit.group].owner(payload)
            index = unit.edges[slot]
            self._shard_counters[stage.out_edges[index].dst.name].inc()
            yield index

    # -- execution -----------------------------------------------------------

    def run(self, max_sim_time: float = 1e7, stop_at: Optional[float] = None) -> RunResult:
        """Execute to completion and collect results.

        ``stop_at`` ends the run gracefully at that simulation time even
        if the pipeline has not drained — the mode for continuous-stream
        experiments (Figures 8/9) where the interesting output is the
        parameter trajectory, not a final answer.  Without it, the run
        ends when every stage has flushed, and exceeding ``max_sim_time``
        raises (a wedged pipeline is a bug, not a result).
        """
        if self._built:
            raise RuntimeError_("run() may only be called once")
        self._build()

        result = RunResult(app_name=self.deployment.config.name)
        self._result = result
        start = self.env.now

        # Call setup() on every processor (parameters get declared here).
        for stage in self._stages.values():
            stage.context._in_setup = True
            stage.processor.setup(stage.context)
            stage.context._in_setup = False
            # setup() may emit (e.g. headers); transmit before data flows.
            if stage.context.pending:
                raise RuntimeError_(
                    f"stage {stage.name!r} emitted during setup(); emissions "
                    "are only allowed from on_item()/flush()"
                )
            # Parameters exist now — publish their trajectories.
            for pname, param in stage.parameters.items():
                self.metrics.series(
                    f"adapt.{stage.name}.param.{pname}", param.history
                )

        for stage in self._stages.values():
            self._stage_done[stage.name] = self.env.event()
            self._spawn_worker(stage)
            if self.adaptation_enabled:
                self.env.process(self._monitor(stage, result), name=f"monitor:{stage.name}")
            if self.resilience is not None:
                if self.resilience.checkpoint_interval is not None:
                    self.env.process(
                        self._checkpointer(stage), name=f"checkpoint:{stage.name}"
                    )
                self.env.process(
                    self._recovery_watch(stage), name=f"recovery:{stage.name}"
                )
        for binding in self._bindings:
            self.env.process(self._feeder(binding), name=f"feeder:{binding.name}")

        finished = self.env.all_of(list(self._stage_done.values()))
        guard: Dict[str, bool] = {}

        def _done(event) -> None:
            guard["done"] = True

        finished.add_callback(_done)
        horizon = stop_at if stop_at is not None else max_sim_time
        while self.env.peek() <= horizon and "done" not in guard:
            if self.env.peek() == math.inf:
                break
            self.env.step()
        if "done" not in guard and stop_at is None:
            raise SimulationError(
                f"run exceeded max_sim_time={max_sim_time} "
                f"(now={self.env.now}); pipeline likely wedged"
            )

        result.execution_time = self.env.now - start
        self.metrics.gauge("run.execution_time").set(result.execution_time)
        for group_name, group in self._groups.items():
            self.metrics.gauge(f"shard.{group_name}.replicas").set(
                float(group.active)
            )
        if self.tracer is not None:
            result.traces = self.tracer.traces
            publish_traces(self.metrics, result.traces)
        for stage in self._stages.values():
            assert stage.metrics is not None
            stage.metrics.arrival_rate.set(
                stage.rate_estimator.decayed_rate(self.env.now)
            )
            result.stages[stage.name] = StageStats.from_registry(
                self.metrics, stage.name,
                host_name=stage.host_name,
                final_value=stage.processor.result(),
            )
        result.metrics = self.metrics
        return result

    # -- processes ------------------------------------------------------------

    def _feeder(self, binding: SourceBinding) -> Generator:
        group: Optional[ShardGroup] = None
        if binding.target_stage in self._stages:
            targets = [self._stages[binding.target_stage]]
        else:
            group = self._groups[binding.target_stage]
            targets = [self._stages[member] for member in group.members]
        if binding.arrivals is not None:
            gaps: Optional[Any] = binding.arrivals.gaps()
        else:
            gaps = None
        fixed_gap = 1.0 / binding.rate if binding.rate else 0.0
        for payload in binding.payloads:
            gap = next(gaps) if gaps is not None else fixed_gap
            if gap:
                yield self.env.timeout(gap)
            stage = targets[group.owner(payload)] if group is not None else targets[0]
            assert stage.metrics is not None
            item = Item(
                payload=payload,
                size=binding.size_of(payload),
                origin=binding.name,
                created_at=self.env.now,
            )
            if self.tracer is not None:
                item.trace = self.tracer.maybe_trace(binding.name, self.env.now)
                if item.trace is not None:
                    self.metrics.counter("run.traced_items").inc()
                    # Open the hop before the put: completing a blocking
                    # put may resume the waiting worker first, which must
                    # already see item.hop.
                    item.hop = item.trace.begin_hop(stage.name, self.env.now)
            if binding.drop_when_full:
                if stage.queue.is_full:
                    stage.metrics.items_dropped.inc()
                    if item.hop is not None:
                        item.trace.hops.remove(item.hop)
                        item.hop = None
                    continue
                stage.queue.force_put(item)
            else:
                # A blocking put waits for queue space; that back-pressure
                # wait counts as queue time (the hop is already open).
                yield stage.queue.put(item)
            stage.rate_estimator.observe(self.env.now)
            if group is not None:
                self._shard_counters[stage.name].inc()
        for stage in targets:
            yield stage.queue.put(EndOfStream(origin=binding.name))

    def _spawn_worker(self, stage: _StageRuntime) -> None:
        self.env.process(
            self._worker(stage, stage.generation),
            name=f"worker:{stage.name}:g{stage.generation}",
        )
        if stage.batch_buffers:
            self.env.process(
                self._batch_flusher(stage, stage.generation),
                name=f"batch-flush:{stage.name}:g{stage.generation}",
            )

    def _worker(self, stage: _StageRuntime, generation: int) -> Generator:
        host = self.network.host(stage.host_name)
        ctx = stage.context
        assert ctx is not None
        resilient = self.resilience is not None
        while True:
            if resilient and stage.generation != generation:
                # Superseded before pulling anything (e.g. spawned by a
                # planned switch that was itself immediately superseded
                # by a queued second move): exit without touching the
                # queue, or this stale worker would race the live one.
                return
            if resilient and stage.migrating:
                # A planned migration is draining this stage: pause at
                # the item boundary (never mid-item) instead of pulling
                # the next message.  The drainer checkpoints here and
                # bumps the generation; this worker is then superseded.
                yield self.env.timeout(self.MIGRATE_DRAIN_POLL)
                continue
            message = yield stage.queue.get()
            if resilient and stage.generation != generation:
                if generation in stage.requeue_generations:
                    # Superseded by a planned switch with this message
                    # already dequeued: give it back at the head — the
                    # planned path has no replay to re-deliver it.
                    stage.requeue_generations.discard(generation)
                    stage.queue.requeue(message)
                return  # superseded by a failover or planned switch
            if resilient and host.failed:
                # Dequeued but unprocessed: the cursor stays put, so the
                # replay buffer re-delivers this message after recovery.
                self._note_stage_down(stage)
                return
            stage.in_flight = True
            if isinstance(message, EndOfStream):
                complete = stage.eos.observe()
                self._advance_cursor(stage, message)
                if not complete:
                    self._item_finished(stage)
                    continue
                stage.processor.flush(ctx)
                ctx.det.finalize_stage(stage.processor)
                yield from self._transmit_pending(stage, host)
                for index in range(len(stage.batch_buffers)):
                    yield from self._flush_edge_batch(stage, index)
                for edge in stage.out_edges:
                    yield from self._send_one(
                        stage, edge, EndOfStream(origin=edge.stream.name), control=True
                    )
                if resilient and stage.generation != generation:
                    return
                stage.done = True
                stage.in_flight = False
                self._result.events.log(self.env.now, "stage-finished", stage=stage.name)
                self._stage_done[stage.name].succeed()
                return
            assert isinstance(message, Item)
            assert stage.metrics is not None
            stage.metrics.items_in.inc()
            stage.metrics.bytes_in.inc(message.size)
            hop = message.hop
            if hop is not None:
                hop.dequeue_t = self.env.now
            items, nbytes = stage.processor.work_amount(message.payload, message.size)
            try:
                if items or nbytes:
                    duration = yield host.execute(
                        stage.processor.cost_model, items=items, nbytes=nbytes
                    )
                    stage.metrics.busy_seconds.inc(duration)
                    if hop is not None:
                        hop.process_t += duration
            except HostFailedError:
                if not resilient:
                    raise
                self._note_stage_down(stage)
                return
            if resilient and stage.generation != generation:
                return
            try:
                stage.processor.on_item(message.payload, ctx)
            except Exception as exc:
                if (
                    not resilient
                    or self.resilience.error_policy == "fail"
                    or isinstance(exc, HostFailedError)
                ):
                    raise
                ctx.pending.clear()
                self._quarantine(stage, message.payload, exc, reason="processing")
                self._advance_cursor(stage, message)
                self._item_finished(stage)
                continue
            stage.metrics.latency.observe(self.env.now - message.created_at)
            tx_start = self.env.now
            yield from self._transmit_pending(stage, host, trace=message.trace, hop=hop)
            if hop is not None and not stage.batch_buffers:
                # Batched stages attribute transmission inside
                # _flush_edge_batch, shared across the batch's parents.
                hop.tx_t += self.env.now - tx_start
            if resilient and stage.generation != generation:
                return
            self._advance_cursor(stage, message)
            self._item_finished(stage)

    def _transmit_pending(
        self,
        stage: _StageRuntime,
        host,
        trace: Optional[ItemTrace] = None,
        hop=None,
    ) -> Generator:
        ctx = stage.context
        assert ctx is not None
        assert stage.metrics is not None
        pending, ctx.pending = ctx.pending, []
        if stage.batch_buffers:
            # Batched fast path: accumulate per-edge, flush on max_items
            # (the flusher process enforces the max_delay age bound).
            now = self.env.now
            flush: List[int] = []
            for payload, size, stream in pending:
                stage.metrics.items_out.inc()
                stage.metrics.bytes_out.inc(size)
                for index in self._route_indices(stage, payload, stream):
                    edge = stage.out_edges[index]
                    item = Item(
                        payload=payload,
                        size=size,
                        origin=edge.stream.name,
                        created_at=now,
                        trace=trace,
                    )
                    full = stage.batch_buffers[index].add((item, hop), now)
                    if full and index not in flush:
                        flush.append(index)
            for index in flush:
                yield from self._flush_edge_batch(stage, index)
            return
        for payload, size, stream in pending:
            stage.metrics.items_out.inc()
            stage.metrics.bytes_out.inc(size)
            for index in self._route_indices(stage, payload, stream):
                edge = stage.out_edges[index]
                item = Item(
                    payload=payload,
                    size=size,
                    origin=edge.stream.name,
                    created_at=self.env.now,
                    trace=trace,
                )
                yield from self._send_one(stage, edge, item)

    def _flush_edge_batch(
        self, stage: _StageRuntime, index: int, age: bool = False
    ) -> Generator:
        """Ship one edge's accumulated batch: one transmission, n items.

        The sender blocks once for the summed size; the measured
        transmission time is shared equally across the batch's traced
        parent hops.  Colocated edges skip the link but still amortize
        the handoff into one rate observation.
        """
        buffer = stage.batch_buffers[index]
        entries = buffer.drain()
        if not entries:
            return
        edge = stage.out_edges[index]
        count = len(entries)
        assert stage.batch_metrics is not None
        stage.batch_metrics.batches.inc()
        stage.batch_metrics.items.inc(count)
        stage.batch_metrics.flush_size.observe(float(count))
        if age:
            stage.batch_metrics.age_flushes.inc()
        items = [item for item, _ in entries]
        tx_start = self.env.now
        if edge.link is None:
            for item in items:
                self._open_hop(edge.dst, item)
                edge.dst.queue.force_put(item)
            edge.dst.rate_estimator.observe(self.env.now, count=count)
        else:
            envelope = _BatchEnvelope(items, edge.stream.name)
            yield from self._send_one(stage, edge, envelope)
        elapsed = self.env.now - tx_start
        if elapsed > 0:
            share = elapsed / count
            for _, parent_hop in entries:
                if parent_hop is not None:
                    parent_hop.tx_t += share

    def _batch_flusher(self, stage: _StageRuntime, generation: int) -> Generator:
        """Enforce the age bound: every ``max_delay``, flush every
        non-empty buffer, so no batched item ever waits longer than
        ``max_delay`` for stragglers."""
        assert stage.batch is not None
        interval = stage.batch.max_delay
        if interval <= 0:
            return
        while not stage.done:
            yield self.env.timeout(interval)
            if stage.done or stage.generation != generation:
                return
            if stage.down_since is not None:
                continue
            for index in range(len(stage.batch_buffers)):
                yield from self._flush_edge_batch(stage, index, age=True)

    def _send_one(self, stage: _StageRuntime, edge: _Edge, message, control: bool = False) -> Generator:
        """Transmit one message over an edge (blocking the sender for TX).

        With resilience enabled, a :class:`TransmissionError` (transient
        link loss) is retried up to ``max_retries`` times with
        exponential backoff plus jitter.  Exhausted retries on a *data*
        item follow the error policy (quarantine under skip/dead-letter);
        on a *control* end-of-stream marker they always raise — dropping
        it would wedge the downstream stage forever.
        """
        size = message.size if not control else 1.0
        if edge.link is None:
            self._open_hop(edge.dst, message)
            edge.dst.queue.force_put(message)
            if not control:
                edge.dst.rate_estimator.observe(self.env.now)
            return
        attempt = 0
        while True:
            try:
                yield edge.link.send(message, size)
            except TransmissionError as exc:
                if self.resilience is None:
                    raise
                if attempt >= self.resilience.max_retries:
                    if control or self.resilience.error_policy == "fail":
                        raise
                    if isinstance(message, _BatchEnvelope):
                        for item in message.items:
                            self._quarantine(
                                stage, item.payload, exc, reason="transmission"
                            )
                    else:
                        self._quarantine(
                            stage,
                            getattr(message, "payload", message),
                            exc,
                            reason="transmission",
                        )
                    return
                self.metrics.counter(f"fault.{stage.name}.retries").inc()
                delay = self.resilience.retry_delay(attempt, self._retry_rng)
                attempt += 1
                if delay:
                    yield self.env.timeout(delay)
                continue
            break
        self.env.process(
            self._deliver(edge, message), name=f"deliver:{edge.stream.name}"
        )

    def _deliver(self, edge: _Edge, message) -> Generator:
        # Wait out the propagation delay (bottleneck + remaining hops);
        # transmission time was already paid inside link.send().
        delay = edge.link.latency + edge.extra_latency
        if delay:
            yield self.env.timeout(delay)
        if isinstance(message, _BatchEnvelope):
            # Unpack at the destination: per-item hop opening, replay
            # recording (queue.on_insert fires per force_put) and queue
            # occupancy are identical to one-at-a-time delivery.
            for item in message.items:
                self._open_hop(edge.dst, item)
                edge.dst.queue.force_put(item)
            edge.dst.rate_estimator.observe(self.env.now, count=len(message.items))
            return
        self._open_hop(edge.dst, message)
        edge.dst.queue.force_put(message)
        if isinstance(message, Item):
            edge.dst.rate_estimator.observe(self.env.now)

    def _open_hop(self, dst: _StageRuntime, message) -> None:
        """Start the downstream hop record as a traced item is enqueued."""
        if isinstance(message, Item) and message.trace is not None:
            message.hop = message.trace.begin_hop(dst.name, self.env.now)

    def _monitor(self, stage: _StageRuntime, result: RunResult) -> Generator:
        assert stage.estimator is not None
        assert stage.metrics is not None
        samples = 0
        while not stage.done:
            yield self.env.timeout(self.policy.sample_interval)
            if stage.done:
                return
            if stage.down_since is not None:
                continue  # a dead stage reports no load
            now = self.env.now
            stage.metrics.queue_len.record(now, stage.queue.current_length)
            exception = stage.estimator.sample(now)
            if exception is not None and self.policy.exceptions_enabled:
                stage.metrics.exceptions_reported.inc()
                result.events.log(
                    now,
                    "load-exception",
                    stage=stage.name,
                    exception_kind=exception.kind.value,
                    score=exception.score,
                )
                for upstream in stage.upstream:
                    upstream.exceptions.report(exception)
                    assert upstream.metrics is not None
                    upstream.metrics.exceptions_received.inc()
            samples += 1
            if samples % self.policy.adjust_every == 0 and stage.controllers:
                t1, t2 = stage.exceptions.drain()
                score = stage.estimator.normalized_score
                for controller in stage.controllers.values():
                    new_value = controller.adjust(score, t1, t2, now)
                    result.events.log(
                        now,
                        "parameter-adjusted",
                        stage=stage.name,
                        parameter=controller.parameter.name,
                        value=new_value,
                    )

    # -- fault tolerance -------------------------------------------------------

    def _record_delivery(self, stage: _StageRuntime, message: Any) -> None:
        assert self.replay is not None
        self.replay.append(stage.name, message.origin, message)

    def _advance_cursor(self, stage: _StageRuntime, message: Any) -> None:
        """Acknowledge one fully processed message (at-least-once)."""
        if self.resilience is None:
            return
        origin = message.origin
        stage.cursors[origin] = stage.cursors.get(origin, 0) + 1

    def _item_finished(self, stage: _StageRuntime) -> None:
        """Between-items point: safe to take a deferred checkpoint."""
        stage.in_flight = False
        if stage.checkpoint_due:
            stage.checkpoint_due = False
            self._checkpoint_stage(stage)

    def _checkpointer(self, stage: _StageRuntime) -> Generator:
        assert self.resilience is not None
        interval = self.resilience.checkpoint_interval
        while not stage.done:
            yield self.env.timeout(interval)
            if stage.done:
                return
            if stage.down_since is not None:
                continue
            if self.network.host(stage.host_name).failed:
                continue
            if stage.in_flight:
                # Mid-item state is not a consistent cut; the worker takes
                # the checkpoint as soon as it finishes the current item.
                stage.checkpoint_due = True
                continue
            self._checkpoint_stage(stage)

    def _checkpoint_stage(self, stage: _StageRuntime) -> StageCheckpoint:
        """Snapshot the stage and trim its acknowledged replay history."""
        assert self.checkpoints is not None and self.replay is not None
        checkpoint = StageCheckpoint(
            stage=stage.name,
            time=self.env.now,
            generation=stage.generation,
            processor_state=stage.processor.snapshot(),
            parameters={name: p.value for name, p in stage.parameters.items()},
            estimator=stage.estimator.snapshot() if stage.estimator else None,
            exceptions=stage.exceptions.snapshot(),
            cursors=dict(stage.cursors),
            eos_seen=stage.eos.snapshot(),
        )
        self.checkpoints.save(checkpoint)
        for channel, cursor in checkpoint.cursors.items():
            self.replay.trim(stage.name, channel, cursor)
        self.metrics.counter(f"recovery.{stage.name}.checkpoints").inc()
        return checkpoint

    def _note_stage_down(self, stage: _StageRuntime) -> None:
        if stage.down_since is not None:
            return
        stage.down_since = self.env.now
        if self._result is not None:
            self._result.events.log(
                self.env.now, "stage-down", stage=stage.name, host=stage.host_name
            )

    def _recovery_watch(self, stage: _StageRuntime) -> Generator:
        """In-place restart when a failed host recovers before failover.

        Also notices hosts that fail while the stage's worker is idle
        (blocked in ``get()``) — the worker only observes the failure on
        its next dequeue or CPU charge, but the outage clock should start
        at the crash.
        """
        assert self.resilience is not None
        poll = self.resilience.recovery_poll
        while not stage.done:
            yield self.env.timeout(poll)
            if stage.done:
                return
            if stage.migrating:
                # A planned migration owns the stage's lifecycle until it
                # commits; its drainer handles a mid-move crash itself.
                continue
            host_failed = self.network.host(stage.host_name).failed
            if stage.down_since is None:
                if host_failed:
                    self._note_stage_down(stage)
                continue
            if not host_failed:
                # Either the host recovered in place, or a Redeployer
                # moved the stage's placement; both restore the same way.
                self.failover_stage(stage.name)

    def failover_stage(self, stage_name: str, down_since: Optional[float] = None) -> None:
        """Restore a crashed stage from its last checkpoint and replay.

        Call after the deployment's placement for ``stage_name`` points
        at a healthy host again — either the Redeployer moved it (live
        failover) or its original host recovered (in-place restart).
        ``down_since`` optionally back-dates the outage start (e.g. to
        the host's last heartbeat) for the recovery-latency histogram.
        """
        stage = self._stages.get(stage_name)
        if stage is None:
            raise RuntimeError_(f"unknown stage {stage_name!r}")
        if self.resilience is None:
            raise RuntimeError_("failover_stage requires resilience= on the runtime")
        if stage.done:
            return
        if down_since is not None and (
            stage.down_since is None or down_since < stage.down_since
        ):
            stage.down_since = down_since
        self._note_stage_down(stage)
        self._restore_stage(stage)

    def _restore_stage(self, stage: _StageRuntime) -> None:
        assert self.replay is not None and self.checkpoints is not None
        down_since = stage.down_since if stage.down_since is not None else self.env.now
        stage.generation += 1
        new_host = self.deployment.host_of(stage.name)
        if new_host != stage.host_name:
            stage.host_name = new_host
            self._rewire_stage(stage)

        # The crashed worker's queue content is lost with the host; its
        # pending get must not swallow the first replayed message.
        stage.queue.discard_getters()
        stage.queue.purge()
        live_cursors = dict(stage.cursors)

        checkpoint = self._reinstantiate_from_checkpoint(stage)

        # Re-deliver everything unacknowledged, per channel, in order.
        # The insertion hook is suspended so replayed entries keep their
        # original sequence numbers instead of being re-recorded.
        replayed = duplicates = dropped_total = 0
        saved_hook, stage.queue.on_insert = stage.queue.on_insert, None
        try:
            for channel in self.replay.channels(stage.name):
                cursor = stage.cursors.get(channel, 0)
                dropped, entries = self.replay.replay_from(stage.name, channel, cursor)
                if dropped:
                    # Evicted entries can never be processed; align the
                    # cursor with the oldest retained sequence number.
                    dropped_total += dropped
                    stage.cursors[channel] = cursor + dropped
                for seq, message in entries:
                    if isinstance(message, Item):
                        message.hop = None
                        if seq <= live_cursors.get(channel, 0):
                            duplicates += 1
                    replayed += 1
                    stage.queue.force_put(message)
        finally:
            stage.queue.on_insert = saved_hook
        # Producers blocked on the previously full queue resume (their
        # items enter *after* the replayed backlog, preserving FIFO).
        stage.queue.admit_waiting()

        stage.down_since = None
        stage.in_flight = False
        stage.checkpoint_due = False
        latency = self.env.now - down_since
        self.metrics.counter(f"fault.{stage.name}.failovers").inc()
        self.metrics.histogram(f"recovery.{stage.name}.latency").observe(latency)
        if replayed:
            self.metrics.counter(f"recovery.{stage.name}.items_replayed").inc(replayed)
        if duplicates:
            self.metrics.counter(f"recovery.{stage.name}.duplicates").inc(duplicates)
        if dropped_total:
            self.metrics.counter(f"recovery.{stage.name}.replay_dropped").inc(dropped_total)
        if self._result is not None:
            self._result.events.log(
                self.env.now,
                "stage-recovered",
                stage=stage.name,
                host=stage.host_name,
                replayed=replayed,
                duplicates=duplicates,
                dropped=dropped_total,
                outage=latency,
                checkpoint_time=checkpoint.time if checkpoint is not None else None,
            )
        self._spawn_worker(stage)

    def _reinstantiate_from_checkpoint(self, stage: _StageRuntime):
        """Fresh processor from the stage's (possibly new) service
        instance, restored from the latest checkpoint.

        Shared by crash failover and planned migration: both replace the
        processor object wholesale and rebuild its state from the
        checkpoint store; only the surrounding queue/replay treatment
        differs.  Returns the checkpoint used (None if none existed).
        """
        assert self.checkpoints is not None
        processor = self.deployment.instance_of(stage.name).instantiate_processor()
        if not isinstance(processor, StreamProcessor):
            raise RuntimeError_(
                f"stage {stage.name!r} code is not a StreamProcessor "
                f"(got {type(processor).__name__})"
            )
        stage.processor = processor
        ctx = stage.context
        assert ctx is not None
        ctx.pending.clear()
        ctx._in_setup = True
        ctx._restoring = True
        try:
            processor.setup(ctx)
        finally:
            ctx._in_setup = False
            ctx._restoring = False
        if ctx.pending:
            raise RuntimeError_(
                f"stage {stage.name!r} emitted during setup(); emissions "
                "are only allowed from on_item()/flush()"
            )

        checkpoint = self.checkpoints.latest(stage.name)
        if checkpoint is not None:
            for pname, value in checkpoint.parameters.items():
                if pname in stage.parameters:
                    stage.parameters[pname].set_value(value, self.env.now)
            if checkpoint.estimator is not None and stage.estimator is not None:
                stage.estimator.restore(checkpoint.estimator)
            stage.exceptions.restore(checkpoint.exceptions)
            if checkpoint.processor_state is not None:
                processor.restore(checkpoint.processor_state)
            stage.eos.restore(checkpoint.eos_seen)
            stage.cursors = dict(checkpoint.cursors)
        else:
            stage.eos.restore(0)
            stage.cursors = {}
        return checkpoint

    def _rewire_stage(self, stage: _StageRuntime) -> None:
        """Re-route every edge touching a stage after its host changed."""
        for edge in stage.out_edges:
            self._wire_edge(edge, stage)
        for up in stage.upstream:
            for edge in up.out_edges:
                if edge.dst is stage:
                    self._wire_edge(edge, up)

    # -- planned migration -----------------------------------------------------

    #: Drain poll while waiting for the in-flight item at a migration's
    #: pause point (simulated seconds).
    MIGRATE_DRAIN_POLL = 0.01

    def scale_stage(self, group_name: str, active: int) -> None:
        """Change a shard group's active replica count mid-run.

        The simulated counterpart of the threaded autoscaler's
        transitions: items emitted after the call are partitioned over
        the new count (slots are pre-provisioned to the group's ceiling
        by ``expand_shards``, so scaling up needs no new workers).
        Items already queued at a replica stay there — per-key order is
        preserved because routing only ever changes *between* items.
        Logged as a ``shard-scaled`` event so recorded runs capture the
        decision.
        """
        group = self._groups.get(group_name)
        if group is None:
            raise RuntimeError_(f"unknown shard group {group_name!r}")
        if not 1 <= active <= len(group.members):
            raise RuntimeError_(
                f"group {group_name!r}: active must be in "
                f"[1, {len(group.members)}], got {active}"
            )
        previous = group.active
        if active == previous:
            return
        group.active = active
        self.metrics.gauge(f"shard.{group_name}.replicas").set(float(active))
        if self._result is not None:
            self._result.events.log(
                self.env.now,
                "shard-scaled",
                group=group_name,
                previous=previous,
                active=active,
            )

    def is_migrating(self, stage_name: str) -> bool:
        """Whether a planned migration of ``stage_name`` is in flight."""
        stage = self._stages.get(stage_name)
        return stage is not None and stage.migrating

    def migrating_stages(self) -> frozenset:
        """Names of stages currently under planned migration."""
        return frozenset(
            name for name, stage in self._stages.items() if stage.migrating
        )

    def migrate_stage(
        self,
        stage_name: str,
        migrator=None,
        target_host: Optional[str] = None,
        trigger: str = "manual",
    ) -> None:
        """Request a planned, non-destructive move of a healthy stage.

        The request is asynchronous: a per-stage drainer process drains
        the stage to an item boundary, checkpoints it, asks ``migrator``
        (a :class:`repro.resilience.migration.Migrator`) to secure the
        replacement service instance on ``target_host`` (or a
        Matchmaker-selected host), and switches the channels over.  A
        second request while one is in flight is queued behind it, never
        interleaved.  Completed moves append a ``MigrationReport`` to
        :attr:`migrations`.

        Requires ``resilience=`` (the pause point is a checkpoint).  If
        the source host dies mid-move, the switch degrades to the
        ordinary failover restore (checkpoint + replay) and the report
        carries ``planned=False``.
        """
        if self.resilience is None:
            raise RuntimeError_("migrate_stage requires resilience= on the runtime")
        if migrator is None:
            raise RuntimeError_(
                "migrate_stage requires a migrator= "
                "(repro.resilience.migration.Migrator)"
            )
        stage = self._stages.get(stage_name)
        if stage is None:
            raise RuntimeError_(f"unknown stage {stage_name!r}")
        queue = self._migration_queues.setdefault(stage_name, [])
        queue.append((migrator, target_host, trigger))
        if stage_name not in self._migration_drainers:
            self._migration_drainers.add(stage_name)
            self.env.process(
                self._migration_drainer(stage), name=f"migrate:{stage_name}"
            )

    def _migration_drainer(self, stage: _StageRuntime) -> Generator:
        queue = self._migration_queues[stage.name]
        try:
            while queue:
                migrator, target_host, trigger = queue.pop(0)
                yield from self._migrate_once(stage, migrator, target_host, trigger)
        finally:
            self._migration_drainers.discard(stage.name)

    def _migrate_once(
        self,
        stage: _StageRuntime,
        migrator,
        target_host: Optional[str],
        trigger: str,
    ) -> Generator:
        from repro.resilience.migration import MigrationReport

        if stage.done:
            return
        requested_at = self.env.now
        stage.migrating = True
        try:
            # Drain to an item boundary: the pause clock starts when the
            # request lands, because upstream output is still flowing —
            # only this stage's consumption pauses at the boundary.
            while stage.in_flight and stage.down_since is None and not stage.done:
                yield self.env.timeout(self.MIGRATE_DRAIN_POLL)
            if stage.done:
                return
            crashed = (
                stage.down_since is not None
                or self.network.host(stage.host_name).failed
            )
            if not crashed:
                # Item-consistent snapshot at the pause point; the
                # replay buffer trims to it, so nothing needs replaying
                # on the planned path below.
                self._checkpoint_stage(stage)
            old_host, new_host = migrator.place(stage.name, target_host)
            replayed = duplicates = 0
            if crashed:
                # The source host died mid-plan: the queue content is
                # gone with it, so fall through to the ordinary failover
                # restore (checkpoint + replay, at-least-once).
                before_r = self.metrics.counter(
                    f"recovery.{stage.name}.items_replayed"
                ).value
                before_d = self.metrics.counter(
                    f"recovery.{stage.name}.duplicates"
                ).value
                self._restore_stage(stage)
                replayed = int(
                    self.metrics.counter(
                        f"recovery.{stage.name}.items_replayed"
                    ).value - before_r
                )
                duplicates = int(
                    self.metrics.counter(
                        f"recovery.{stage.name}.duplicates"
                    ).value - before_d
                )
            else:
                self._switch_stage(stage)
            pause = self.env.now - requested_at
            self.metrics.counter(f"migration.{stage.name}.moves").inc()
            self.metrics.histogram(f"migration.{stage.name}.pause_seconds").observe(pause)
            if replayed:
                self.metrics.counter(
                    f"migration.{stage.name}.items_replayed"
                ).inc(replayed)
            if duplicates:
                self.metrics.counter(
                    f"migration.{stage.name}.duplicates"
                ).inc(duplicates)
            report = MigrationReport(
                stage=stage.name,
                from_host=old_host,
                to_host=new_host,
                trigger=trigger,
                requested_at=requested_at,
                completed_at=self.env.now,
                pause_seconds=pause,
                items_replayed=replayed,
                duplicates=duplicates,
                planned=not crashed,
            )
            self.migrations.append(report)
            if self._result is not None:
                self._result.events.log(
                    self.env.now,
                    "stage-migrated",
                    stage=stage.name,
                    from_host=old_host,
                    to_host=new_host,
                    trigger=trigger,
                    pause=pause,
                    planned=not crashed,
                )
        finally:
            stage.migrating = False

    def _switch_stage(self, stage: _StageRuntime) -> None:
        """The loss-free channel switch-over of a planned move.

        Unlike :meth:`_restore_stage`, the queue's backlog survives in
        place (nothing was lost, so nothing is purged or replayed): the
        superseded worker's pending ``get`` is discarded, the fresh
        processor restores from the checkpoint just taken at the pause
        point, and a new worker generation resumes consuming the same
        queue — zero loss, zero duplicates.
        """
        stage.requeue_generations.add(stage.generation)
        stage.generation += 1
        new_host = self.deployment.host_of(stage.name)
        if new_host != stage.host_name:
            stage.host_name = new_host
            self._rewire_stage(stage)
        stage.queue.discard_getters()
        self._reinstantiate_from_checkpoint(stage)
        stage.queue.admit_waiting()
        stage.in_flight = False
        stage.checkpoint_due = False
        self._spawn_worker(stage)

    def _quarantine(self, stage: _StageRuntime, payload: Any, exc: BaseException, reason: str) -> None:
        assert self.resilience is not None and self.dead_letters is not None
        self.metrics.counter(f"fault.{stage.name}.quarantined").inc()
        if self.resilience.error_policy == "dead-letter":
            self.dead_letters.add(
                DeadLetter(
                    stage=stage.name,
                    payload=payload,
                    time=self.env.now,
                    error=repr(exc),
                    reason=reason,
                )
            )
        if self._result is not None:
            self._result.events.log(
                self.env.now,
                "item-quarantined",
                stage=stage.name,
                reason=reason,
                error=repr(exc),
            )
