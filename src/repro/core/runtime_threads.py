"""Real-thread runtime with token-bucket throttled links.

The paper ran GATES stages as JVM threads over delay-injected cluster
links; this runtime is the Python equivalent, demonstrating the same
middleware (processors, adjustment parameters, the Section 4 adaptation
algorithm) under genuine concurrency and wall-clock time.

Compared to :class:`~repro.core.runtime_sim.SimulatedRuntime` it is
programmatic (stages and edges are added directly rather than via a
Deployment) and inherently noisy — exactly the "impact of the thread
scheduler" the paper observed.  The benchmark harness therefore uses the
simulated runtime; this one backs the threaded example and its
timing-tolerant tests.

Processing cost is modeled by sleeping ``cost * time_scale`` seconds per
item (``time_scale`` defaults to 1.0; tests shrink it).

Fault tolerance (``resilience=``) covers the subset that makes sense
without a simulated fabric: poison-item quarantine under the configured
``error_policy`` (skip / dead-letter) and periodic stage checkpointing
to a :class:`~repro.resilience.checkpoint.CheckpointStore` — threads do
not crash-stop like simulated hosts, so live failover and replay remain
:class:`~repro.core.runtime_sim.SimulatedRuntime` features (see
docs/fault_tolerance.md).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.core.adaptation.controller import ParameterController
from repro.core.adaptation.load import LoadEstimator
from repro.core.adaptation.policy import AdaptationPolicy
from repro.core.adaptation.protocol import ExceptionCounter
from repro.core.api import AdjustmentParameter, ProcessorError, StageContext, StreamProcessor
from repro.core.batching import BatchBuffer, BatchPolicy, batch_policy_from_properties
from repro.core.items import EndOfStream, Item
from repro.core.results import RunResult, StageStats
from repro.core.sharding import (
    SHARD_GROUP_PROPERTY,
    ShardGroup,
    ShardScaler,
    expand_shards,
    export_keyed_state,
    extract_key,
    groups_of,
    import_keyed_state,
    logical_stream,
)
from repro.core.termination import EosTracker, no_input_message
from repro.metrics.rates import RateEstimator
from repro.obs.registry import BatchMetrics, Counter, MetricsRegistry, StageMetrics
from repro.obs.tracing import TraceCollector, publish_traces
from repro.resilience.checkpoint import (
    CheckpointStore,
    MemoryCheckpointStore,
    StageCheckpoint,
)
from repro.resilience.policy import DeadLetter, DeadLetterQueue, ResilienceConfig
from repro.simnet.hosts import CpuCostModel
from repro.simnet.links import TokenBucket

__all__ = ["ThreadedRuntime", "ThreadedRuntimeError"]


class ThreadedRuntimeError(Exception):
    """Raised for invalid threaded-runtime configuration or timeouts."""


class _MonitoredQueue:
    """Bounded thread-safe FIFO satisfying the estimator's QueueLike protocol.

    ``put`` blocks while the queue holds ``capacity`` items, so a slow
    consumer exerts real backpressure on its producers — the Section-4
    queue-length signal stays meaningful instead of saturating on an
    unbounded deque.  ``force_put`` bypasses the bound for control
    messages that must never deadlock (the error-path end-of-stream),
    and ``close`` releases any blocked producers when the consumer dies.
    """

    def __init__(self, capacity: int, window: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._items: deque = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)
        self._closed = False
        self._recent: deque = deque([0], maxlen=window)

    def put(self, item: Any) -> None:
        """Append one item, blocking while the queue is at capacity."""
        with self._lock:
            while len(self._items) >= self.capacity and not self._closed:
                self._not_full.wait()
            if self._closed:
                return
            self._items.append(item)
            self._recent.append(len(self._items))
            self._not_empty.notify()

    def put_many(self, items: List[Any]) -> None:
        """Append a batch under one lock acquisition, respecting capacity.

        Blocks whenever the queue is full, appending as many items as fit
        per wakeup — the capacity bound holds exactly, the per-item lock
        and notify round-trips are amortized over the batch.
        """
        with self._lock:
            index = 0
            while index < len(items):
                while len(self._items) >= self.capacity and not self._closed:
                    self._not_full.wait()
                if self._closed:
                    return
                while index < len(items) and len(self._items) < self.capacity:
                    self._items.append(items[index])
                    index += 1
                self._recent.append(len(self._items))
                self._not_empty.notify()

    def force_put(self, item: Any) -> None:
        """Append regardless of capacity; never blocks.

        Reserved for control messages a dying producer must deliver (its
        end-of-stream) — blocking there could deadlock against a consumer
        that will never drain.
        """
        with self._lock:
            if self._closed:
                return
            self._items.append(item)
            self._recent.append(len(self._items))
            self._not_empty.notify()

    def close(self) -> None:
        """Mark the consumer gone: wake and release every blocked producer.

        Subsequent puts are dropped silently — there is nobody left to
        process them, and blocking a healthy upstream stage on a dead
        downstream queue would turn one stage failure into a run-wide
        deadlock.
        """
        with self._lock:
            self._closed = True
            self._not_full.notify_all()

    def get(self, timeout: Optional[float] = None) -> Any:
        with self._lock:
            deadline = None if timeout is None else time.monotonic() + timeout
            while not self._items:
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    raise TimeoutError("queue get timed out")
                self._not_empty.wait(remaining)
            item = self._items.popleft()
            self._recent.append(len(self._items))
            self._not_full.notify()
            return item

    def get_many(self, max_items: int, timeout: Optional[float] = None) -> List[Any]:
        """Block for the first item (as :meth:`get`), then drain up to
        ``max_items`` without further waiting."""
        with self._lock:
            deadline = None if timeout is None else time.monotonic() + timeout
            while not self._items:
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    raise TimeoutError("queue get timed out")
                self._not_empty.wait(remaining)
            taken = []
            while self._items and len(taken) < max_items:
                taken.append(self._items.popleft())
            self._recent.append(len(self._items))
            self._not_full.notify(len(taken))
            return taken

    @property
    def current_length(self) -> int:
        with self._lock:
            return len(self._items)

    @property
    def recent_average(self) -> float:
        with self._lock:
            return sum(self._recent) / len(self._recent)


class _ThreadStageContext(StageContext):
    """Wall-clock stage context."""

    def __init__(self, stage: "_ThreadStage", runtime: "ThreadedRuntime") -> None:
        self._stage = stage
        self._runtime = runtime
        self._in_setup = False
        #: True while a replacement processor re-runs setup() during a
        #: live migration: re-declaring an existing parameter then binds
        #: to the live one (its adapted value survives the move).
        self._restoring = False
        self.pending: List[Tuple[Any, float, Optional[str]]] = []

    def specify_parameter(
        self,
        name: str,
        initial: float,
        minimum: float,
        maximum: float,
        increment: float,
        direction: int,
    ) -> AdjustmentParameter:
        if not self._in_setup:
            raise ProcessorError(
                f"{self._stage.name}: specify_parameter must be called in setup()"
            )
        if name in self._stage.parameters:
            if self._restoring:
                return self._stage.parameters[name]
            raise ProcessorError(f"{self._stage.name}: parameter {name!r} declared twice")
        param = AdjustmentParameter(name, initial, minimum, maximum, increment, direction)
        param.set_value(initial, self.now)
        self._stage.parameters[name] = param
        self._stage.controllers[name] = ParameterController(param, self._runtime.policy)
        return param

    def get_suggested_value(self, name: str) -> float:
        with self._stage.param_lock:
            try:
                return self._stage.parameters[name].value
            except KeyError:
                raise ProcessorError(
                    f"{self._stage.name}: unknown parameter {name!r}"
                ) from None

    def emit(self, payload: Any, size: float = 8.0, stream: Optional[str] = None) -> None:
        if size < 0:
            raise ProcessorError(f"emit size must be >= 0, got {size}")
        # A processor written against the declared configuration may name
        # a logical stream that sharding expanded into per-replica edges
        # ("t" -> "t#0", "t#1", ...), so logical names are accepted too.
        if stream is not None and not any(
            e.name is not None
            and (e.name == stream or logical_stream(e.name) == stream)
            for e in self._stage.out_edges
        ):
            raise ProcessorError(
                f"{self._stage.name}: emit to unknown stream {stream!r}"
            )
        self.pending.append((payload, float(size), stream))

    @property
    def now(self) -> float:
        return self._runtime.elapsed()

    @property
    def stage_name(self) -> str:
        return self._stage.name

    @property
    def properties(self) -> Dict[str, str]:
        return self._stage.properties


@dataclass
class _ThreadEdge:
    dst: "_ThreadStage"
    bucket: Optional[TokenBucket]
    name: Optional[str] = None


@dataclass
class _RouteUnit:
    """One routing decision per emitted item: a solo edge or a shard family.

    A solo unit carries exactly one edge index; a family unit carries one
    edge index per replica slot of ``group`` (position == shard index),
    of which the group's partitioner picks exactly one per item.
    """

    #: Stream names addressing this unit via ``emit(..., stream=...)``
    #: (``None`` — broadcast — always matches every unit).
    accepts: frozenset
    #: Indices into the stage's ``out_edges``.
    edges: List[int]
    #: Shard-group name for family units; None for solo units.
    group: Optional[str] = None
    #: Concrete edge name -> edge index (family units), letting an emit
    #: target one specific replica explicitly.
    named: Dict[str, int] = field(default_factory=dict)


@dataclass
class _GroupState:
    """Mutable runtime state of one shard group (threaded runtime).

    ``lock`` serializes routing decisions against scale transitions: a
    producer holds it per routed item, the autoscaler holds it for a
    whole rebalance, so no item is partitioned with a stale active count
    while keyed state is in flight.
    """

    group: ShardGroup
    active: int
    lock: threading.Lock = field(default_factory=threading.Lock)


@dataclass
class _ThreadStage:
    name: str
    processor: StreamProcessor
    queue: _MonitoredQueue
    properties: Dict[str, str]
    eos: EosTracker = field(default_factory=EosTracker)
    out_edges: List[_ThreadEdge] = field(default_factory=list)
    upstream: List["_ThreadStage"] = field(default_factory=list)
    parameters: Dict[str, AdjustmentParameter] = field(default_factory=dict)
    controllers: Dict[str, ParameterController] = field(default_factory=dict)
    exceptions: ExceptionCounter = field(default_factory=ExceptionCounter)
    estimator: Optional[LoadEstimator] = None
    context: Optional[_ThreadStageContext] = None
    #: Registry-backed metric handles (items/bytes/latency/queue...).
    metrics: Optional[StageMetrics] = None
    #: Effective micro-batch policy (max_delay pre-scaled to wall seconds);
    #: None means one-at-a-time emission.
    batch: Optional[BatchPolicy] = None
    #: One accumulating buffer per out-edge (parallel to ``out_edges``),
    #: holding (item, parent-hop) entries; built at run() start.
    batch_buffers: List[BatchBuffer] = field(default_factory=list)
    batch_metrics: Optional[BatchMetrics] = None
    rate_estimator: RateEstimator = field(default_factory=RateEstimator)
    #: Routing units built at run() start (see :class:`_RouteUnit`).
    route_units: List[_RouteUnit] = field(default_factory=list)
    #: ``shard.{stage}.items`` counter handle (replica stages only).
    shard_items: Optional[Counter] = None
    #: Items routed to this stage through a shard group (written under
    #: the group's lock) vs items its worker finished with (written by
    #: the worker thread only).  The autoscaler drains a group by waiting
    #: for the two to meet.
    delivered: int = 0
    consumed: int = 0
    param_lock: threading.Lock = field(default_factory=threading.Lock)
    #: Serializes arrival-rate observations (several producer threads
    #: feed one queue; the estimator requires non-decreasing times).
    rate_lock: threading.Lock = field(default_factory=threading.Lock)
    #: Serializes processor mutation (on_item/flush in the worker) against
    #: the checkpointer thread's snapshot(), keeping checkpoints
    #: item-consistent.
    state_lock: threading.Lock = field(default_factory=threading.Lock)
    done: threading.Event = field(default_factory=threading.Event)
    error: Optional[BaseException] = None


@dataclass
class _ThreadSource:
    name: str
    target: str
    payloads: Iterable[Any]
    rate: Optional[float]
    item_size: float | Callable[[Any], float]
    arrivals: Optional[Any] = None


class ThreadedRuntime:
    """Programmatic pipeline executed on real threads.

    Example::

        rt = ThreadedRuntime(time_scale=0.01)
        rt.add_stage("sampler", SamplerProcessor())
        rt.add_stage("sink", SinkProcessor())
        rt.connect("sampler", "sink", bandwidth=10_000)
        rt.bind_source("gen", "sampler", payloads, rate=200.0)
        result = rt.run(timeout=30.0)
    """

    DEFAULT_QUEUE_CAPACITY = 200

    def __init__(
        self,
        policy: Optional[AdaptationPolicy] = None,
        time_scale: float = 1.0,
        adaptation_enabled: bool = True,
        metrics: Optional[MetricsRegistry] = None,
        trace_every: Optional[int] = None,
        max_traces: int = 10_000,
        resilience: Optional[ResilienceConfig] = None,
        checkpoints: Optional[CheckpointStore] = None,
        batch: Optional[BatchPolicy] = None,
    ) -> None:
        """``metrics``/``trace_every``/``resilience`` mirror
        :class:`~repro.core.runtime_sim.SimulatedRuntime`: both runtimes
        publish the same ``stage.*`` / ``adapt.*`` metric families, and
        both quarantine poison items and checkpoint on a cadence when
        ``resilience`` is given (failover/replay are simulation-only).

        ``batch`` enables the micro-batched emission fast path for every
        stage (``batch-max-items`` / ``batch-max-delay`` stage properties
        override it per stage); ``max_delay`` is in scaled seconds, like
        processing cost.  See docs/performance.md.
        """
        if time_scale <= 0:
            raise ThreadedRuntimeError(f"time_scale must be > 0, got {time_scale}")
        self.policy = policy or AdaptationPolicy()
        self.time_scale = time_scale
        self.adaptation_enabled = adaptation_enabled
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer: Optional[TraceCollector] = (
            TraceCollector(trace_every, max_traces=max_traces)
            if trace_every is not None
            else None
        )
        self.batch = batch
        self.resilience = resilience
        self.checkpoints: Optional[CheckpointStore] = None
        self.dead_letters: Optional[DeadLetterQueue] = None
        if resilience is not None:
            self.checkpoints = (
                checkpoints if checkpoints is not None else MemoryCheckpointStore()
            )
            self.dead_letters = DeadLetterQueue(resilience.dead_letter_limit)
        elif checkpoints is not None:
            raise ThreadedRuntimeError("checkpoints= requires resilience= as well")
        self._stages: Dict[str, _ThreadStage] = {}
        self._sources: List[_ThreadSource] = []
        self._groups: Dict[str, _GroupState] = {}
        self._start_time = 0.0
        self._started = False
        #: Completed planned moves (MigrationReport), in commit order.
        self.migrations: List[Any] = []
        #: Per-stage lock serializing migrate_stage() calls: a second
        #: request while one is in flight queues at the lock, never
        #: interleaves.
        self._migration_locks: Dict[str, threading.Lock] = {}

    def elapsed(self) -> float:
        """Wall-clock seconds since :meth:`run` started."""
        return time.monotonic() - self._start_time

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_config(
        cls,
        config: "AppConfig",  # noqa: F821 - imported lazily below
        repository: Optional[Any] = None,
        *,
        verify: bool = True,
        **kwargs: Any,
    ) -> "ThreadedRuntime":
        """Build a runtime with stages and streams from an AppConfig.

        Resolves each stage's code URL through ``repository`` (default:
        the built-in application repository), instantiates the
        processors, and wires the declared streams.  Sources still need
        :meth:`bind_source`; ``kwargs`` pass through to the constructor.

        ``verify=True`` (the default) runs the static verifier
        (:mod:`repro.analysis.verifier`) first and refuses configurations
        with error-severity findings — the threaded runtime's pre-deploy
        gate; pass ``verify=False`` to skip it.
        """
        if repository is None:
            from repro.net.worker import default_repository

            repository = default_repository()
        if verify:
            from repro.analysis.verifier import verify_config

            report = verify_config(config, repository=repository)
            if not report.ok:
                raise ThreadedRuntimeError(
                    f"configuration {config.name!r} failed verification "
                    f"({report.summary_line()}):\n{report.render_text()}"
                )
        config.validate()
        config = expand_shards(config)
        runtime = cls(**kwargs)
        for stage in config.stages:
            factory = repository.fetch(stage.code_url)
            runtime.add_stage(stage.name, factory(), properties=stage.properties)
        for stream in config.streams:
            runtime.connect(stream.src, stream.dst, name=stream.name)
        return runtime

    def add_stage(
        self,
        name: str,
        processor: StreamProcessor,
        properties: Optional[Dict[str, str]] = None,
        queue_capacity: Optional[int] = None,
    ) -> None:
        """Register a stage."""
        if self._started:
            raise ThreadedRuntimeError("cannot add stages after run()")
        if name in self._stages:
            raise ThreadedRuntimeError(f"duplicate stage {name!r}")
        if not isinstance(processor, StreamProcessor):
            raise ThreadedRuntimeError(f"{name}: processor must be a StreamProcessor")
        capacity = queue_capacity or self.DEFAULT_QUEUE_CAPACITY
        stage = _ThreadStage(
            name=name,
            processor=processor,
            queue=_MonitoredQueue(capacity, self.policy.window),
            properties=dict(properties or {}),
        )
        try:
            effective = batch_policy_from_properties(stage.properties, self.batch)
        except ValueError as exc:
            raise ThreadedRuntimeError(f"{name}: {exc}") from None
        if effective is not None and effective.enabled:
            # Pre-scale the age bound once so BatchBuffer deadlines compare
            # directly against elapsed() wall-clock time.
            stage.batch = BatchPolicy(
                max_items=effective.max_items,
                max_delay=effective.max_delay * self.time_scale,
            )
        stage.metrics = StageMetrics(self.metrics, name)
        stage.estimator = LoadEstimator(name, stage.queue, self.policy)
        self.metrics.series(f"adapt.{name}.d_tilde", stage.estimator.history)
        stage.context = _ThreadStageContext(stage, self)
        self._stages[name] = stage

    def connect(
        self,
        src: str,
        dst: str,
        bandwidth: Optional[float] = None,
        name: Optional[str] = None,
    ) -> None:
        """Wire src -> dst, optionally through a token-bucket limited link.

        ``bandwidth`` is bytes/second of *scaled* time (i.e. the effective
        rate is bandwidth / time_scale in wall seconds).  ``name`` makes
        the edge addressable by ``context.emit(..., stream=name)``.
        """
        if self._started:
            raise ThreadedRuntimeError("cannot connect stages after run()")
        try:
            source, target = self._stages[src], self._stages[dst]
        except KeyError as exc:
            raise ThreadedRuntimeError(f"unknown stage {exc}") from None
        bucket = None
        if bandwidth is not None:
            if bandwidth <= 0:
                raise ThreadedRuntimeError(f"bandwidth must be > 0, got {bandwidth}")
            # Burst of ~10 ms of tokens: enough to amortize per-message
            # overhead, small enough that short transfers still see the
            # configured rate (a 1 s burst would let whole test workloads
            # through unthrottled).
            bucket = TokenBucket(
                rate=bandwidth, burst=max(1.0, bandwidth * 0.01), clock=time.monotonic
            )
        source.out_edges.append(_ThreadEdge(dst=target, bucket=bucket, name=name))
        target.upstream.append(source)
        target.eos.expect(group=source.properties.get(SHARD_GROUP_PROPERTY))

    def bind_source(
        self,
        name: str,
        target: str,
        payloads: Iterable[Any],
        rate: Optional[float] = None,
        item_size: float | Callable[[Any], float] = 8.0,
        arrivals: Optional[Any] = None,
    ) -> None:
        """Attach an external stream (rate in items per *scaled* second).

        ``arrivals`` (an :class:`~repro.streams.arrivals.ArrivalProcess`)
        overrides ``rate`` with per-item gaps, as in the simulated runtime.

        ``target`` may also name a shard group (the declared name of a
        stage expanded into replicas): the feeder then routes each item
        to its key's owning replica and delivers one end-of-stream
        sentinel per replica slot.
        """
        if self._started:
            raise ThreadedRuntimeError("cannot bind sources after run()")
        if target not in self._stages and not any(
            s.properties.get(SHARD_GROUP_PROPERTY) == target
            for s in self._stages.values()
        ):
            raise ThreadedRuntimeError(f"unknown stage {target!r}")
        if rate is not None and rate <= 0:
            raise ThreadedRuntimeError(f"rate must be > 0, got {rate}")
        self._sources.append(
            _ThreadSource(name, target, payloads, rate, item_size, arrivals)
        )

    # -- execution ----------------------------------------------------------------

    def run(self, timeout: float = 120.0) -> RunResult:
        """Run all threads to completion (or raise on ``timeout``)."""
        if self._started:
            raise ThreadedRuntimeError("run() may only be called once")
        self._build_shards()
        for source in self._sources:
            state = self._groups.get(source.target)
            if state is not None:
                for member in state.group.members:
                    self._stages[member].eos.expect(group=state.group.name)
            else:
                self._stages[source.target].eos.expect()
        for stage in self._stages.values():
            if not stage.eos.has_inputs:
                raise ThreadedRuntimeError(no_input_message(stage.name))
        self._started = True
        self._start_time = time.monotonic()
        result = RunResult(app_name="threaded-app")

        for stage in self._stages.values():
            if stage.batch is not None and stage.out_edges:
                stage.batch_buffers = [
                    BatchBuffer(stage.batch) for _ in stage.out_edges
                ]
                stage.batch_metrics = BatchMetrics(self.metrics, stage.name)
            assert stage.context is not None
            stage.context._in_setup = True
            stage.processor.setup(stage.context)
            stage.context._in_setup = False
            for pname, param in stage.parameters.items():
                self.metrics.series(
                    f"adapt.{stage.name}.param.{pname}", param.history
                )

        threads: List[threading.Thread] = []
        stop_monitors = threading.Event()
        for stage in self._stages.values():
            threads.append(
                threading.Thread(target=self._worker, args=(stage,), daemon=True)
            )
            if self.adaptation_enabled:
                monitor = threading.Thread(
                    target=self._monitor, args=(stage, stop_monitors), daemon=True
                )
                monitor.start()
            if (
                self.resilience is not None
                and self.resilience.checkpoint_interval is not None
            ):
                checkpointer = threading.Thread(
                    target=self._checkpointer, args=(stage, stop_monitors), daemon=True
                )
                checkpointer.start()
        for state in self._groups.values():
            if state.group.policy.elastic:
                autoscaler = threading.Thread(
                    target=self._autoscaler, args=(state, stop_monitors), daemon=True
                )
                autoscaler.start()
        for source in self._sources:
            threads.append(
                threading.Thread(target=self._feeder, args=(source,), daemon=True)
            )
        for thread in threads:
            thread.start()

        deadline = time.monotonic() + timeout
        for stage in self._stages.values():
            remaining = deadline - time.monotonic()
            if remaining <= 0 or not stage.done.wait(remaining):
                stop_monitors.set()
                raise ThreadedRuntimeError(
                    f"stage {stage.name!r} did not finish within {timeout}s"
                )
        stop_monitors.set()

        errors = [s.error for s in self._stages.values() if s.error is not None]
        if errors:
            raise errors[0]

        result.execution_time = self.elapsed()
        self.metrics.gauge("run.execution_time").set(result.execution_time)
        for group_name, state in self._groups.items():
            self.metrics.gauge(f"shard.{group_name}.replicas").set(float(state.active))
        if self.tracer is not None:
            result.traces = self.tracer.traces
            publish_traces(self.metrics, result.traces)
        for stage in self._stages.values():
            assert stage.metrics is not None
            stage.metrics.arrival_rate.set(
                stage.rate_estimator.decayed_rate(self.elapsed())
            )
            result.stages[stage.name] = StageStats.from_registry(
                self.metrics, stage.name,
                host_name="local-thread",
                final_value=stage.processor.result(),
            )
        result.metrics = self.metrics
        return result

    # -- thread bodies -----------------------------------------------------------

    def _observe_arrival(self, stage: _ThreadStage, count: int = 1) -> None:
        """Record ``count`` arrivals; the lock keeps observation times monotone.

        Several producer threads (feeders, upstream workers) may feed one
        queue; reading the clock *inside* the lock guarantees the
        estimator sees non-decreasing times.  A batched handoff is one
        observation with ``count=n`` — the estimator's burst semantics,
        not ``n`` zero-gap observations.
        """
        with stage.rate_lock:
            stage.rate_estimator.observe(self.elapsed(), count=count)

    def _feeder(self, source: _ThreadSource) -> None:
        state = self._groups.get(source.target)
        if state is not None:
            self._feed_group(source, state)
            return
        stage = self._stages[source.target]
        gaps = source.arrivals.gaps() if source.arrivals is not None else None
        fixed_gap = (1.0 / source.rate) * self.time_scale if source.rate else 0.0
        # When the target stage batches, back-to-back arrivals (no pacing
        # gap) are handed over in chunks of the stage's batch size — one
        # lock round-trip and one rate observation per chunk.
        chunk_limit = stage.batch.max_items if stage.batch is not None else 1
        chunk: List[Item] = []

        def flush_chunk() -> None:
            if not chunk:
                return
            if len(chunk) == 1:
                stage.queue.put(chunk[0])
            else:
                stage.queue.put_many(chunk)
            self._observe_arrival(stage, count=len(chunk))
            chunk.clear()

        for payload in source.payloads:
            gap = next(gaps) * self.time_scale if gaps is not None else fixed_gap
            if gap:
                flush_chunk()
                time.sleep(gap)
            size = (
                float(source.item_size(payload))
                if callable(source.item_size)
                else float(source.item_size)
            )
            item = Item(
                payload=payload, size=size, origin=source.name,
                created_at=self.elapsed(),
            )
            if self.tracer is not None:
                item.trace = self.tracer.maybe_trace(source.name, item.created_at)
                if item.trace is not None:
                    self.metrics.counter("run.traced_items").inc()
                    item.hop = item.trace.begin_hop(stage.name, self.elapsed())
            chunk.append(item)
            if len(chunk) >= chunk_limit:
                flush_chunk()
        flush_chunk()
        stage.queue.put(EndOfStream(origin=source.name))

    def _feed_group(self, source: _ThreadSource, state: _GroupState) -> None:
        """Feeder body for a source bound to a shard group.

        Each payload goes to its key's owning replica under the group's
        routing lock; every replica slot (active or not) receives one
        end-of-stream sentinel, matching the per-member expectations
        registered by :meth:`run`.
        """
        members = [self._stages[name] for name in state.group.members]
        gaps = source.arrivals.gaps() if source.arrivals is not None else None
        fixed_gap = (1.0 / source.rate) * self.time_scale if source.rate else 0.0
        for payload in source.payloads:
            gap = next(gaps) * self.time_scale if gaps is not None else fixed_gap
            if gap:
                time.sleep(gap)
            size = (
                float(source.item_size(payload))
                if callable(source.item_size)
                else float(source.item_size)
            )
            item = Item(
                payload=payload, size=size, origin=source.name,
                created_at=self.elapsed(),
            )
            if self.tracer is not None:
                item.trace = self.tracer.maybe_trace(source.name, item.created_at)
                if item.trace is not None:
                    self.metrics.counter("run.traced_items").inc()
            with state.lock:
                owner = state.group.partitioner.select(
                    extract_key(payload, state.group.shard_by), state.active
                )
                member = members[owner]
                if item.trace is not None:
                    item.hop = item.trace.begin_hop(member.name, self.elapsed())
                member.queue.put(item)
                member.delivered += 1
            self._observe_arrival(member)
            if member.shard_items is not None:
                member.shard_items.inc()
        for member in members:
            member.queue.put(EndOfStream(origin=source.name))

    def _worker(self, stage: _ThreadStage) -> None:
        ctx = stage.context
        assert ctx is not None
        batching = bool(stage.batch_buffers)
        # Chunked input drain applies to every stage under a batch policy
        # (sinks included — they have no output buffers but still benefit
        # from amortized queue locking and aggregated accounting).
        chunked = stage.batch is not None
        cost_model = stage.processor.cost_model
        free = isinstance(cost_model, CpuCostModel) and cost_model.is_free
        local: deque = deque()
        try:
            while True:
                if not local:
                    try:
                        if chunked:
                            assert stage.batch is not None
                            drained = stage.queue.get_many(
                                stage.batch.max_items,
                                timeout=self._next_flush_timeout(stage),
                            )
                            local.extend(drained)
                            assert stage.metrics is not None
                            count, nbytes_in = 0, 0.0
                            for msg in drained:
                                if not isinstance(msg, EndOfStream):
                                    count += 1
                                    nbytes_in += msg.size
                            if count:
                                stage.metrics.items_in.inc(count)
                                stage.metrics.bytes_in.inc(nbytes_in)
                        else:
                            local.append(stage.queue.get())
                    except TimeoutError:
                        # No input before the oldest batch's age bound:
                        # flush whatever is due and keep waiting.
                        self._flush_due(stage)
                        continue
                message = local.popleft()
                if isinstance(message, EndOfStream):
                    if not stage.eos.observe():
                        continue
                    with stage.state_lock:
                        stage.processor.flush(ctx)
                        ctx.det.finalize_stage(stage.processor)
                    self._transmit_pending(stage)
                    self._flush_all(stage)
                    for edge in stage.out_edges:
                        edge.dst.queue.put(EndOfStream(origin=stage.name))
                    return
                assert stage.metrics is not None
                if not chunked:
                    stage.metrics.items_in.inc()
                    stage.metrics.bytes_in.inc(message.size)
                hop = message.hop
                if hop is not None:
                    hop.dequeue_t = self.elapsed()
                if not free:
                    items, nbytes = stage.processor.work_amount(
                        message.payload, message.size
                    )
                    cost = cost_model.cost(items, nbytes)
                    if cost > 0:
                        time.sleep(cost * self.time_scale)
                        stage.metrics.busy_seconds.inc(cost * self.time_scale)
                        if hop is not None:
                            hop.process_t += cost * self.time_scale
                mark = len(ctx.pending)
                try:
                    with stage.state_lock:
                        stage.processor.on_item(message.payload, ctx)
                except Exception as exc:
                    if self.resilience is None or self.resilience.error_policy == "fail":
                        raise
                    # Poison item: drop whatever it half-emitted (earlier
                    # chunk-mates' deferred emissions stay), quarantine
                    # it, and keep the stage alive (skip / dead-letter).
                    del ctx.pending[mark:]
                    self._quarantine(stage, message.payload, exc)
                    stage.consumed += 1
                    continue
                stage.consumed += 1
                stage.metrics.latency.observe(self.elapsed() - message.created_at)
                if batching:
                    # Transmission happens at flush time; _flush_edge
                    # shares the measured wait across the batch's parent
                    # hops instead of this blanket attribution.  Untraced
                    # emissions are handed over once per drained chunk —
                    # traced items transmit immediately so hop attribution
                    # stays per parent item.  Age flushes are likewise
                    # checked once per chunk; the drain spans
                    # microseconds, far inside any sane max_delay.
                    if message.trace is not None:
                        self._transmit_pending(stage, trace=message.trace, hop=hop)
                    if not local:
                        self._transmit_pending(stage)
                        self._flush_due(stage)
                elif hop is not None:
                    tx_start = self.elapsed()
                    self._transmit_pending(stage, trace=message.trace, hop=hop)
                    hop.tx_t += self.elapsed() - tx_start
                else:
                    self._transmit_pending(stage, trace=message.trace, hop=hop)
        except BaseException as exc:  # noqa: BLE001 - surfaced by run()
            stage.error = exc
            # Release every neighbour promptly: producers blocked on our
            # bounded queue are woken (close), and downstream stages get
            # our end-of-stream so run() surfaces this error instead of
            # timing out.  force_put: a full downstream queue must not
            # block a dying stage.
            stage.queue.close()
            for edge in stage.out_edges:
                edge.dst.queue.force_put(EndOfStream(origin=stage.name))
        finally:
            stage.done.set()

    def _transmit_pending(
        self, stage: _ThreadStage, trace=None, hop=None
    ) -> None:
        ctx = stage.context
        assert ctx is not None
        assert stage.metrics is not None
        if not ctx.pending:
            return
        pending, ctx.pending = ctx.pending, []
        if stage.batch_buffers:
            # Batched fast path: accumulate per-edge, flush on max_items.
            # Items are stamped created_at=now here — time spent waiting
            # in the buffer is real latency and is accounted downstream.
            # Family (sharded) edges bypass the buffers and ship per item:
            # a buffered item routed with a pre-rebalance active count
            # would land on a stale owner after the handoff.
            now = self.elapsed()
            flush: List[int] = []
            nbytes_out = 0.0
            for payload, size, stream in pending:
                nbytes_out += size
                for unit in stage.route_units:
                    if stream is not None and stream not in unit.accepts:
                        continue
                    if unit.group is not None:
                        self._send_family(stage, unit, payload, size, stream, trace)
                        continue
                    index = unit.edges[0]
                    item = Item(
                        payload=payload, size=size, origin=stage.name,
                        created_at=now, trace=trace,
                    )
                    full = stage.batch_buffers[index].add((item, hop), now)
                    if full and index not in flush:
                        flush.append(index)
            stage.metrics.items_out.inc(len(pending))
            stage.metrics.bytes_out.inc(nbytes_out)
            for index in flush:
                self._flush_edge(stage, index)
            return
        for payload, size, stream in pending:
            stage.metrics.items_out.inc()
            stage.metrics.bytes_out.inc(size)
            for unit in stage.route_units:
                if stream is not None and stream not in unit.accepts:
                    continue
                if unit.group is not None:
                    self._send_family(stage, unit, payload, size, stream, trace)
                    continue
                edge = stage.out_edges[unit.edges[0]]
                if edge.bucket is not None:
                    wait = edge.bucket.consume(size)
                    if wait > 0:
                        time.sleep(wait * self.time_scale)
                item = Item(
                    payload=payload, size=size, origin=stage.name,
                    created_at=self.elapsed(), trace=trace,
                )
                if trace is not None:
                    # Open the hop before the put: the downstream worker
                    # may dequeue immediately.  Emissions share the parent
                    # item's trace.
                    item.hop = trace.begin_hop(edge.dst.name, self.elapsed())
                edge.dst.queue.put(item)
                self._observe_arrival(edge.dst)

    def _send_family(
        self,
        stage: _ThreadStage,
        unit: _RouteUnit,
        payload: Any,
        size: float,
        stream: Optional[str],
        trace=None,
    ) -> None:
        """Ship one emission across a shard family: exactly one replica.

        The owner is the key's replica under the group's partitioner and
        current active count, chosen and delivered under the group's
        routing lock so a concurrent rebalance never splits a key's items
        between the old and the new owner.  Naming a concrete per-replica
        stream (``"t#1"``) overrides the partitioner for that emission.
        """
        state = self._groups[unit.group or ""]
        wait = 0.0
        with state.lock:
            if stream is not None and stream in unit.named:
                edge = stage.out_edges[unit.named[stream]]
            else:
                owner = state.group.partitioner.select(
                    extract_key(payload, state.group.shard_by), state.active
                )
                edge = stage.out_edges[unit.edges[owner]]
            if edge.bucket is not None:
                wait = edge.bucket.consume(size)
            item = Item(
                payload=payload, size=size, origin=stage.name,
                created_at=self.elapsed(), trace=trace,
            )
            if trace is not None:
                item.hop = trace.begin_hop(edge.dst.name, self.elapsed())
            edge.dst.queue.put(item)
            edge.dst.delivered += 1
        if wait > 0:
            # The bucket already charged this emission; sleeping out here
            # paces the producer identically but keeps the routing lock
            # short — a throttled edge must stall only this thread, not
            # every producer routing to the group (and the autoscaler).
            time.sleep(wait * self.time_scale)
        self._observe_arrival(edge.dst)
        if edge.dst.shard_items is not None:
            edge.dst.shard_items.inc()

    # -- micro-batch flushing ----------------------------------------------

    def _next_flush_timeout(self, stage: _ThreadStage) -> Optional[float]:
        """Seconds until the oldest buffered batch hits its age bound."""
        deadlines = [
            d for d in (b.deadline() for b in stage.batch_buffers) if d is not None
        ]
        if not deadlines:
            return None
        return max(0.0, min(deadlines) - self.elapsed())

    def _flush_due(self, stage: _ThreadStage) -> None:
        now = self.elapsed()
        for index, buffer in enumerate(stage.batch_buffers):
            if buffer.due(now):
                self._flush_edge(stage, index, age=True)

    def _flush_all(self, stage: _ThreadStage) -> None:
        for index in range(len(stage.batch_buffers)):
            self._flush_edge(stage, index)

    def _flush_edge(self, stage: _ThreadStage, index: int, age: bool = False) -> None:
        """Ship one edge's accumulated batch downstream.

        One token-bucket charge and one (amortized) queue handoff for the
        whole batch; the measured transmission wait is shared equally
        across the batch's traced parent hops.
        """
        buffer = stage.batch_buffers[index]
        entries = buffer.drain()
        if not entries:
            return
        edge = stage.out_edges[index]
        count = len(entries)
        assert stage.batch_metrics is not None
        stage.batch_metrics.batches.inc()
        stage.batch_metrics.items.inc(count)
        stage.batch_metrics.flush_size.observe(float(count))
        if age:
            stage.batch_metrics.age_flushes.inc()
        tx_wall = 0.0
        if edge.bucket is not None:
            wait = edge.bucket.consume(sum(item.size for item, _ in entries))
            if wait > 0:
                tx_wall = wait * self.time_scale
                time.sleep(tx_wall)
        share = tx_wall / count
        now = self.elapsed()
        items: List[Item] = []
        for item, parent_hop in entries:
            if parent_hop is not None and share > 0:
                parent_hop.tx_t += share
            if item.trace is not None:
                item.hop = item.trace.begin_hop(edge.dst.name, now)
            items.append(item)
        edge.dst.queue.put_many(items)
        self._observe_arrival(edge.dst, count=count)

    # -- sharding and elastic scaling ---------------------------------------

    def _build_shards(self) -> None:
        """Discover shard groups and build every stage's routing units.

        Runs once at :meth:`run` start: reconstructs the groups from the
        expanded stages' properties, binds the ``shard.{stage}.items``
        counters, and turns each stage's flat out-edge list into
        :class:`_RouteUnit` entries — solo edges as-is, per-replica edge
        families collapsed into one partitioned unit each.
        """
        properties = {name: s.properties for name, s in self._stages.items()}
        self._groups = {
            name: _GroupState(group=group, active=group.active)
            for name, group in groups_of(properties).items()
        }
        member_slot: Dict[str, Tuple[str, int]] = {}
        for group_name, state in self._groups.items():
            for index, member in enumerate(state.group.members):
                member_slot[member] = (group_name, index)
            for member in state.group.members:
                self._stages[member].shard_items = self.metrics.counter(
                    f"shard.{member}.items"
                )
        for stage in self._stages.values():
            units: List[_RouteUnit] = []
            families: Dict[Tuple[str, str], Dict[int, Tuple[int, str]]] = {}
            order: List[Tuple[str, str]] = []
            for index, edge in enumerate(stage.out_edges):
                slot = member_slot.get(edge.dst.name)
                if slot is None or edge.name is None:
                    accepts = frozenset(
                        name
                        for name in (
                            edge.name,
                            logical_stream(edge.name) if edge.name else None,
                        )
                        if name is not None
                    )
                    units.append(_RouteUnit(accepts=accepts, edges=[index]))
                    continue
                group_name, shard_index = slot
                key = (logical_stream(edge.name), group_name)
                if key not in families:
                    order.append(key)
                families.setdefault(key, {})[shard_index] = (index, edge.name)
            for key in order:
                logical, group_name = key
                mapping = families[key]
                slots = len(self._groups[group_name].group.members)
                if set(mapping) != set(range(slots)):
                    # Partial wiring (programmatic): no safe partition
                    # function over a ragged family — keep each edge solo.
                    for shard_index in sorted(mapping):
                        index, name = mapping[shard_index]
                        units.append(
                            _RouteUnit(
                                accepts=frozenset({name, logical}),
                                edges=[index],
                            )
                        )
                    continue
                named = {mapping[i][1]: mapping[i][0] for i in range(slots)}
                units.append(
                    _RouteUnit(
                        accepts=frozenset({logical}) | frozenset(named),
                        edges=[mapping[i][0] for i in range(slots)],
                        group=group_name,
                        named=named,
                    )
                )
            stage.route_units = units

    def _autoscaler(self, state: _GroupState, stop: threading.Event) -> None:
        """Per-group control loop: occupancy samples in, rebalances out.

        Samples mean queue occupancy across the group's active replicas
        on the adaptation cadence (the Section-4 queue-length signal,
        normalized by capacity), feeds it to a :class:`ShardScaler`, and
        executes the transitions it decides.  Every transition is
        recorded in the ``scale.*`` metric family.
        """
        group_name = state.group.name
        members = [self._stages[name] for name in state.group.members]
        scaler = ShardScaler(state.group.policy, state.active)
        replicas_series = self.metrics.series(f"scale.{group_name}.replicas")
        scale_ups = self.metrics.counter(f"scale.{group_name}.scale_ups")
        scale_downs = self.metrics.counter(f"scale.{group_name}.scale_downs")
        rebalance_seconds = self.metrics.histogram(
            f"scale.{group_name}.rebalance_seconds"
        )
        interval = self.policy.sample_interval * self.time_scale
        replicas_series.record(self.elapsed(), float(state.active))
        while not stop.is_set():
            if stop.wait(interval):
                return
            if all(member.done.is_set() for member in members):
                return
            active_members = members[: state.active]
            occupancy = sum(
                min(1.0, m.queue.current_length / m.queue.capacity)
                for m in active_members
            ) / len(active_members)
            previous = state.active
            target = scaler.observe(occupancy)
            if target is None or target == previous:
                continue
            started = time.monotonic()
            if self._rebalance(state, members, target):
                rebalance_seconds.observe(time.monotonic() - started)
                (scale_ups if target > previous else scale_downs).inc()
                replicas_series.record(self.elapsed(), float(state.active))
            else:
                # Transition aborted (a member finished or died mid-drain);
                # resync the scaler with reality.
                scaler.active = state.active

    def _rebalance(
        self, state: _GroupState, members: List[_ThreadStage], target: int
    ) -> bool:
        """Move the group to ``target`` active replicas with state handoff.

        Protocol: take the routing lock (producers can no longer route to
        the group), wait until every previously-active member has
        processed everything already delivered, export each member's
        keyed state (under its state lock, serializing against on_item
        and the checkpointer), repartition the merged state by the new
        active count, import, then publish the new count and release.

        Returns False — leaving the active count untouched — when a
        member terminates or errors while draining.
        """
        group = state.group
        with state.lock:
            previous = state.active
            while any(m.delivered > m.consumed for m in members[:previous]):
                if any(m.done.is_set() for m in members):
                    return False
                # The routing lock *is* the drain barrier here: producers
                # must stay parked while already-delivered items drain, so
                # this poll deliberately sleeps under the lock.
                time.sleep(0.001)  # repro: noqa[GA601]
            merged: Dict[Any, Any] = {}
            exported = False
            for member in members[:previous]:
                with member.state_lock:
                    keyed = export_keyed_state(member.processor)
                if keyed is not None:
                    exported = True
                    merged.update(keyed)
            if exported:
                buckets: List[Dict[Any, Any]] = [{} for _ in range(target)]
                for key, value in merged.items():
                    buckets[group.partitioner.select(key, target)][key] = value
                for index in range(target):
                    member = members[index]
                    with member.state_lock:
                        import_keyed_state(member.processor, buckets[index])
            state.active = target
            group.active = target
        return True

    def _quarantine(self, stage: _ThreadStage, payload: Any, exc: BaseException) -> None:
        """Count (and under ``dead-letter``, retain) one poison item."""
        assert self.resilience is not None
        self.metrics.counter(f"fault.{stage.name}.quarantined").inc()
        if self.resilience.error_policy == "dead-letter":
            assert self.dead_letters is not None
            self.dead_letters.add(
                DeadLetter(
                    stage=stage.name,
                    payload=payload,
                    time=self.elapsed(),
                    error=repr(exc),
                    reason="processing",
                )
            )

    def _checkpointer(self, stage: _ThreadStage, stop: threading.Event) -> None:
        """Snapshot ``stage`` every ``checkpoint_interval`` scaled seconds.

        The threaded runtime has no replay buffer (threads do not
        crash-stop), so checkpoints carry empty cursors — they exist for
        durability (e.g. a :class:`JsonlCheckpointStore` a later process
        resumes from), not live failover.
        """
        assert self.resilience is not None
        assert self.resilience.checkpoint_interval is not None
        interval = self.resilience.checkpoint_interval * self.time_scale
        while not stop.is_set() and not stage.done.is_set():
            if stop.wait(interval):
                return
            if stage.done.is_set():
                return
            self._checkpoint_stage(stage)

    def _checkpoint_stage(self, stage: _ThreadStage) -> None:
        assert self.checkpoints is not None
        with stage.state_lock:
            processor_state = stage.processor.snapshot()
        with stage.param_lock:
            parameters = {n: p.value for n, p in stage.parameters.items()}
        checkpoint = StageCheckpoint(
            stage=stage.name,
            time=self.elapsed(),
            generation=0,
            processor_state=processor_state,
            parameters=parameters,
            estimator=stage.estimator.snapshot() if stage.estimator else None,
            exceptions=stage.exceptions.snapshot(),
            cursors={},
            eos_seen=0,
        )
        self.checkpoints.save(checkpoint)
        self.metrics.counter(f"recovery.{stage.name}.checkpoints").inc()

    def migrate_stage(self, stage_name: str, factory: Optional[Callable[[], StreamProcessor]] = None):
        """Swap a running stage's processor live, preserving its state.

        The threaded runtime has no placement fabric, so its "move" is
        the processor half of a migration: snapshot the live processor
        at an item boundary (under ``state_lock``, exactly like the
        checkpointer), instantiate a replacement (``factory`` or the
        same class), re-run ``setup()`` with parameter re-declaration
        bound to the live adjustment parameters, ``restore()`` the
        snapshot into it, and swap — while the worker thread is parked
        at the lock.  Concurrent calls for the same stage queue at a
        per-stage lock; no two moves interleave.

        Returns the :class:`~repro.resilience.migration.MigrationReport`
        (hosts are ``"local"``; the pause is wall-clock scaled seconds).
        """
        from repro.resilience.migration import MigrationReport

        stage = self._stages.get(stage_name)
        if stage is None:
            raise ThreadedRuntimeError(f"unknown stage {stage_name!r}")
        lock = self._migration_locks.setdefault(stage_name, threading.Lock())
        with lock:
            requested_at = self.elapsed()
            t0 = time.monotonic()
            with stage.state_lock:
                if stage.done.is_set():
                    raise ThreadedRuntimeError(
                        f"stage {stage_name!r} already finished; nothing to migrate"
                    )
                state = stage.processor.snapshot()
                replacement = (factory or type(stage.processor))()
                if not isinstance(replacement, StreamProcessor):
                    raise ThreadedRuntimeError(
                        f"stage {stage_name!r}: replacement is not a "
                        f"StreamProcessor (got {type(replacement).__name__})"
                    )
                ctx = stage.context
                assert ctx is not None
                pending_before = list(ctx.pending)
                ctx.pending.clear()
                ctx._in_setup = True
                ctx._restoring = True
                try:
                    replacement.setup(ctx)
                finally:
                    ctx._in_setup = False
                    ctx._restoring = False
                if ctx.pending:
                    raise ThreadedRuntimeError(
                        f"stage {stage_name!r}: replacement emitted during "
                        "setup(); emissions are only allowed from "
                        "on_item()/flush()"
                    )
                ctx.pending.extend(pending_before)
                if state is not None:
                    replacement.restore(state)
                stage.processor = replacement
            pause = (time.monotonic() - t0) / self.time_scale
            self.metrics.counter(f"migration.{stage_name}.moves").inc()
            self.metrics.histogram(f"migration.{stage_name}.pause_seconds").observe(pause)
            report = MigrationReport(
                stage=stage_name,
                from_host="local",
                to_host="local",
                trigger="manual",
                requested_at=requested_at,
                completed_at=self.elapsed(),
                pause_seconds=pause,
                items_replayed=0,
                duplicates=0,
                planned=True,
            )
            self.migrations.append(report)
            return report

    def _monitor(self, stage: _ThreadStage, stop: threading.Event) -> None:
        assert stage.estimator is not None
        assert stage.metrics is not None
        samples = 0
        interval = self.policy.sample_interval * self.time_scale
        while not stop.is_set() and not stage.done.is_set():
            if stop.wait(interval):
                return
            now = self.elapsed()
            stage.metrics.queue_len.record(now, float(stage.queue.current_length))
            exception = stage.estimator.sample(now)
            if exception is not None and self.policy.exceptions_enabled:
                stage.metrics.exceptions_reported.inc()
                for upstream in stage.upstream:
                    upstream.exceptions.report(exception)
                    assert upstream.metrics is not None
                    upstream.metrics.exceptions_received.inc()
            samples += 1
            if samples % self.policy.adjust_every == 0 and stage.controllers:
                t1, t2 = stage.exceptions.drain()
                score = stage.estimator.normalized_score
                with stage.param_lock:
                    for controller in stage.controllers.values():
                        controller.adjust(score, t1, t2, now)
