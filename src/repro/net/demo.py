"""The networked demo: count-samps across three real OS processes.

This is the acceptance scenario for :mod:`repro.net` (and the body of
the ``repro netdemo`` CLI): the distributed count-samps application from
the paper's Section 5 deployed onto three local worker processes — one
filter per worker for two workers, the join on the third — with a
deliberately slowed join so the Section 4 loop observes a real overload
and ships exceptions back to the filters *over the wire*.

``SlowJoinStage`` is resolved by the workers through the repository's
``py://`` scheme, demonstrating that stage code outside the built-in
``repo://`` publications deploys the same way.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Optional, Tuple

from repro.apps.count_samps import JoinStage, build_distributed_config
from repro.core.adaptation.policy import AdaptationPolicy
from repro.core.api import CpuCostModel, StageContext
from repro.core.results import RunResult
from repro.net.coordinator import NetworkedRuntime
from repro.obs.registry import MetricsRegistry

__all__ = ["SlowJoinStage", "run_netdemo"]


class SlowJoinStage(JoinStage):
    """A JoinStage whose per-summary cost is set by a property.

    ``join-cost-ms`` (milliseconds per summary, default 2.0) makes the
    join the pipeline's bottleneck, so its inbox fills, the local load
    estimator's d̃ crosses the overload threshold, and exceptions travel
    upstream over the summary channels to the filter workers.
    """

    def setup(self, context: StageContext) -> None:
        super().setup(context)
        cost_ms = float(context.properties.get("join-cost-ms", "2.0"))
        self.cost_model = CpuCostModel(per_item=cost_ms / 1000.0)


def run_netdemo(
    workers: int = 3,
    items_per_source: int = 4000,
    batch: int = 40,
    top_n: int = 5,
    seed: int = 11,
    join_cost_ms: float = 2.0,
    timeout: float = 90.0,
    metrics: Optional[MetricsRegistry] = None,
    verify: bool = True,
) -> Tuple[RunResult, Dict[str, Any]]:
    """Run the 3-process demo; returns (result, summary-of-interesting-facts).

    The summary dict carries what the demo is meant to prove: the final
    top-n, the per-channel wire metrics, and how many adaptation
    exceptions crossed a process boundary.
    """
    if workers < 2:
        raise ValueError(f"the demo needs at least 2 workers, got {workers}")
    n_sources = max(1, workers - 1)
    worker_names = [f"worker-{i}" for i in range(workers)]
    config = build_distributed_config(
        n_sources=n_sources,
        source_hosts=worker_names[:n_sources],
        batch=batch,
        top_n=top_n,
        seed=seed,
    )
    join = config.stage("join")
    join.code_url = "py://repro.net.demo:SlowJoinStage"
    join.properties["join-cost-ms"] = repr(join_cost_ms)
    # A small inbox relative to the credit window: the wire can keep it
    # saturated, so the estimator sees a genuinely overloaded queue.
    join.properties["net-queue-capacity"] = "16"

    policy = AdaptationPolicy().with_(sample_interval=0.05, adjust_every=2)
    runtime = NetworkedRuntime(
        config,
        workers=workers,
        policy=policy,
        adaptation_enabled=True,
        credit_window=16,
        metrics=metrics,
        verify=verify,
    )
    rng = random.Random(seed)
    for i in range(n_sources):
        runtime.bind_source(
            f"src-{i}",
            f"filter-{i}",
            [rng.randrange(0, 50) for _ in range(items_per_source)],
            item_size=8.0,
        )
    result = runtime.run(timeout=timeout)

    registry = runtime.metrics
    channels: Dict[str, Dict[str, float]] = {}
    for name in registry.names("net."):
        _, channel, metric = name.split(".", 2)
        if metric == "rtt":
            continue
        channels.setdefault(channel, {})[metric] = registry.value(name, 0.0)
    wire_exceptions = sum(
        stats.get("exceptions", 0.0) for stats in channels.values()
    )
    summary = {
        "placement": dict(runtime.placement),
        "topk": result.final_value("join"),
        "channels": channels,
        "wire_exceptions": wire_exceptions,
        "execution_time": result.execution_time,
    }
    return result, summary
