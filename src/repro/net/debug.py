"""Live diagnostics for the networked runtime.

A wedged distributed run is invisible from the outside: every process
is alive, every socket open, and nothing moves.  Both the worker and
the coordinator install a SIGUSR1 handler that dumps every asyncio
task's current stack to stderr, so ``kill -USR1 <pid>`` answers "what
is this process waiting on?" without killing the run.
"""

from __future__ import annotations

import asyncio
import signal
import sys

__all__ = ["install_task_dump"]


def install_task_dump(label: str) -> None:
    """Dump all asyncio task stacks to stderr on SIGUSR1 (POSIX only)."""
    if not hasattr(signal, "SIGUSR1"):
        return

    loop = asyncio.get_running_loop()

    def _dump() -> None:
        tasks = asyncio.all_tasks(loop)
        print(f"== {label}: {len(tasks)} asyncio tasks ==", file=sys.stderr)
        for task in tasks:
            task.print_stack(file=sys.stderr)
        sys.stderr.flush()

    try:
        loop.add_signal_handler(signal.SIGUSR1, _dump)
    except (NotImplementedError, RuntimeError):
        pass
