"""The worker process: one GATES service container as a real OS process.

A worker is launched with ``python -m repro.net.worker`` (or ``repro
worker``), binds a TCP port, and announces it on stdout as
``REPRO-NET-WORKER <port>`` so a coordinator spawning it with ``--port
0`` can find it.  Everything after that arrives over sockets:

1. the coordinator connects and HELLOs (assigning the worker its
   placement name, adaptation policy, time scale, and credit window);
2. REGISTER frames instantiate stage processors (code resolved through
   the same :class:`~repro.grid.repository.CodeRepository` scheme the
   simulated Deployer uses: built-in ``repo://`` publications plus
   ``py://module:attr`` imports);
3. CHANNEL frames declare the stage graph's edges as seen from this
   worker — local (both ends here), inbound (remote sender will ATTACH),
   or outbound (dial the peer worker at START);
4. START begins execution: each stage runs the same consume/cost/emit
   loop as the other runtimes, and — when adaptation is on — a monitor
   task executes the paper's Section 4 loop locally, delivering
   over-/under-load exceptions upstream *over the wire* when the
   upstream stage lives on another worker;
5. when every local stage has drained (one EndOfStream per input,
   tracked by the shared :class:`~repro.core.termination.EosTracker`),
   the worker sends RESULT with its stage finals and its entire metrics
   registry, then waits for SHUTDOWN.

The worker is single-threaded asyncio: stages are tasks, not threads,
which keeps per-stage state lock-free while the real concurrency lives
between processes.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import sys
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.core.adaptation.controller import ParameterController
from repro.core.adaptation.load import LoadEstimator
from repro.core.adaptation.policy import AdaptationPolicy
from repro.core.adaptation.protocol import (
    ExceptionCounter,
    LoadException,
    LoadExceptionKind,
)
from repro.core.api import (
    AdjustmentParameter,
    ProcessorError,
    StageContext,
    StreamProcessor,
)
from repro.core.batching import (
    BatchBuffer,
    BatchPolicy,
    batch_policy_from_properties,
)
from repro.core.items import EndOfStream, Item
from repro.core.sharding import (
    BOUNDARIES_PROPERTY,
    PARTITIONER_PROPERTY,
    SHARD_ACTIVE_PROPERTY,
    SHARD_COUNT_PROPERTY,
    SHARD_GROUP_PROPERTY,
    Partitioner,
    extract_key,
    logical_stream,
    partitioner_from_properties,
)
from repro.core.termination import EosTracker, no_input_message
from repro.grid.repository import CodeRepository
from repro.metrics.rates import RateEstimator
from repro.net.channels import AsyncInbox, ChannelError, InChannel, OutChannel
from repro.net.debug import install_task_dump
from repro.net.protocol import (
    FrameType,
    ProtocolError,
    decode_payload,
    decode_payload_batch,
    encode_json,
    is_batch_payload,
    iter_frames,
    read_frame,
    send_frame,
)
from repro.obs.registry import BatchMetrics, MetricsRegistry, StageMetrics
from repro.simnet.hosts import CpuCostModel

__all__ = ["ANNOUNCE_PREFIX", "Worker", "WorkerError", "default_repository", "main"]

#: stdout announce line: ``REPRO-NET-WORKER <port>`` — plus an optional
#: third token, the worker's UNIX-socket path, when one is bound (the
#: co-located fast path; older parsers that only read the port keep
#: working).
ANNOUNCE_PREFIX = "REPRO-NET-WORKER"

#: Inbox capacity when a stage's properties carry no override.
DEFAULT_QUEUE_CAPACITY = 200

#: Accumulate modeled compute cost and sleep only past this debt, so
#: micro-costs (50 us/item) do not each pay the event loop's wakeup
#: granularity.
_SLEEP_DEBT_THRESHOLD = 0.001


class WorkerError(Exception):
    """Raised for protocol violations or invalid registrations."""


def default_repository() -> CodeRepository:
    """The code repository a bare worker resolves ``repo://`` URLs from.

    Publishes the built-in application stages (count-samps and friends);
    anything else ships as a ``py://module:attr`` reference, which the
    repository imports directly.
    """
    from repro.apps.count_samps import _register_codes

    repository = CodeRepository()
    _register_codes(repository)
    return repository


class _WorkerStageContext(StageContext):
    """Stage context backed by the worker's wall clock and pending buffer."""

    def __init__(self, stage: "_HostedStage", worker: "Worker") -> None:
        self._stage = stage
        self._worker = worker
        self._in_setup = False
        self.pending: List[Tuple[Any, float, Optional[str]]] = []

    def specify_parameter(
        self,
        name: str,
        initial: float,
        minimum: float,
        maximum: float,
        increment: float,
        direction: int,
    ) -> AdjustmentParameter:
        if not self._in_setup:
            raise ProcessorError(
                f"{self._stage.name}: specify_parameter must be called in setup()"
            )
        if name in self._stage.parameters:
            raise ProcessorError(
                f"{self._stage.name}: parameter {name!r} declared twice"
            )
        param = AdjustmentParameter(
            name, initial, minimum, maximum, increment, direction
        )
        param.set_value(initial, self.now)
        self._stage.parameters[name] = param
        self._stage.controllers[name] = ParameterController(
            param, self._worker.policy
        )
        return param

    def get_suggested_value(self, name: str) -> float:
        try:
            return self._stage.parameters[name].value
        except KeyError:
            raise ProcessorError(
                f"{self._stage.name}: unknown parameter {name!r}"
            ) from None

    def emit(
        self, payload: Any, size: float = 8.0, stream: Optional[str] = None
    ) -> None:
        if size < 0:
            raise ProcessorError(f"emit size must be >= 0, got {size}")
        if stream is not None and not any(
            r.stream == stream or logical_stream(r.stream) == stream
            for r in self._stage.out_routes
        ):
            raise ProcessorError(
                f"{self._stage.name}: emit to unknown stream {stream!r}"
            )
        self.pending.append((payload, float(size), stream))

    @property
    def now(self) -> float:
        return self._worker.elapsed()

    @property
    def stage_name(self) -> str:
        return self._stage.name

    @property
    def properties(self) -> Dict[str, str]:
        return self._stage.properties


@dataclass
class _RouteUnit:
    """One routing decision among a stage's out-routes.

    A *solo* unit (``group is None``) wraps one ordinary route.  A
    *family* unit wraps the per-replica routes fanning out to one
    sharded destination group: ``routes[slot]`` is the out-route index
    reaching replica ``slot``, and exactly one — the key owner's — gets
    each emitted item.  ``accepts`` names every stream addressing the
    unit; ``named`` maps a concrete per-replica stream name to its slot
    so an explicit ``emit(..., stream="t#1")`` overrides the
    partitioner.
    """

    accepts: frozenset
    routes: List[int]
    group: Optional[str] = None
    named: Dict[str, int] = field(default_factory=dict)


@dataclass
class _RouteGroup:
    """Partitioning facts for one sharded destination group."""

    partitioner: Partitioner
    shard_by: str
    active: int

    def owner(self, payload: Any) -> int:
        return self.partitioner.select(
            extract_key(payload, self.shard_by), self.active
        )


class _LocalRoute:
    """In-process edge between two stages hosted on the same worker."""

    def __init__(
        self, stream: str, dst: "_HostedStage", worker: "Worker", lane: int = 0
    ) -> None:
        self.stream = stream
        self.dst = dst
        self._worker = worker
        #: Which of the destination inbox's lanes this edge feeds (one
        #: lane per input edge keeps per-stream FIFO under sharding).
        self.lane = lane
        #: ``shard`` descriptor from the CHANNEL frame (None when the
        #: destination is not a replica); set by ``_register_channel``.
        self.shard: Optional[Dict[str, Any]] = None
        self.shard_counter: Optional[Any] = None

    async def send(self, payload: Any, size: float, origin: str) -> None:
        item = Item(
            payload=payload, size=size, origin=origin,
            created_at=self._worker.elapsed(),
        )
        await self.dst.inbox.put((None, item), lane=self.lane)
        self.dst.rate_estimator.observe(self._worker.elapsed())

    async def send_eos(self, origin: str) -> None:
        await self.dst.inbox.force_put(
            (None, EndOfStream(origin=origin)), lane=self.lane
        )

    async def close(self) -> None:  # symmetry with OutChannel
        return None


class _WireRoute:
    """Outbound edge to a stage on another worker, via an OutChannel."""

    def __init__(self, channel: OutChannel) -> None:
        self.channel = channel
        self.stream = channel.stream
        self.shard: Optional[Dict[str, Any]] = None
        self.shard_counter: Optional[Any] = None

    async def send(self, payload: Any, size: float, origin: str) -> None:
        await self.channel.send(payload, size)

    async def send_eos(self, origin: str) -> None:
        await self.channel.send_eos()

    async def close(self) -> None:
        await self.channel.close()


@dataclass
class _HostedStage:
    name: str
    processor: StreamProcessor
    properties: Dict[str, str]
    inbox: AsyncInbox
    eos: EosTracker = field(default_factory=EosTracker)
    out_routes: List[Any] = field(default_factory=list)
    #: Upstream stages on this worker (exception delivery in-process).
    upstream_local: List[str] = field(default_factory=list)
    #: Inbound wire channels feeding this stage (exception delivery over
    #: the socket, back to the remote sender).
    upstream_wire: List[InChannel] = field(default_factory=list)
    parameters: Dict[str, AdjustmentParameter] = field(default_factory=dict)
    controllers: Dict[str, ParameterController] = field(default_factory=dict)
    exceptions: ExceptionCounter = field(default_factory=ExceptionCounter)
    estimator: Optional[LoadEstimator] = None
    context: Optional[_WorkerStageContext] = None
    metrics: Optional[StageMetrics] = None
    rate_estimator: RateEstimator = field(default_factory=RateEstimator)
    done: Optional[asyncio.Event] = None
    error: Optional[BaseException] = None
    #: Effective batch policy (max_delay pre-scaled by time_scale); None
    #: means one-at-a-time.
    batch: Optional[BatchPolicy] = None
    #: Per-out-route accumulating batches, keyed by index into
    #: ``out_routes``.  Only wire routes get one — local routes hand
    #: items over in-process, where per-item cost is already one append.
    batch_buffers: Dict[int, "BatchBuffer[Tuple[Any, float]]"] = field(
        default_factory=dict
    )
    batch_metrics: Optional[BatchMetrics] = None
    #: Routing decisions over ``out_routes`` (solo routes and sharded
    #: families); built at START once every channel is declared.
    route_units: List[_RouteUnit] = field(default_factory=list)
    #: True once this stage's live copy moved to another worker: its
    #: task exited at the migration fence, its final value lives on the
    #: adopting worker, and EOF on its old channels is expected.
    migrated_away: bool = False
    #: Set by the stage task when it exits at a migration fence (the
    #: export handler awaits it before snapshotting).
    fence_passed: Optional[asyncio.Event] = None


class _MigrateFence:
    """Inbox sentinel marking a live migration's drain boundary.

    Everything before the fence is processed here; nothing follows it
    (the upstream channels are paused).  The stage task reacts by
    flushing pending emissions, closing its out-routes with the ordinary
    FIN/drain teardown (no EOS — the stream continues from the new
    worker), and exiting.
    """


class Worker:
    """One service container: hosts stages, talks frames, adapts locally."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        name: str = "worker",
        repository: Optional[CodeRepository] = None,
        uds_path: Optional[str] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.name = name
        #: When set, also listen on this UNIX-domain socket and announce
        #: it, so co-located senders skip the TCP stack entirely.
        self.uds_path = uds_path
        #: Default inbox lane count for hosted stages (coordinator HELLO
        #: or per-stage ``net-inbox-lanes`` property override it).
        self.inbox_lanes = 1
        self.repository = repository if repository is not None else default_repository()
        self.metrics = MetricsRegistry()
        self.policy = AdaptationPolicy()
        self.adaptation_enabled = True
        self.time_scale = 1.0
        self.credit_window = 32
        self.batch: Optional[BatchPolicy] = None
        self._stages: Dict[str, _HostedStage] = {}
        #: Partitioning facts per sharded destination group, built at
        #: START from the CHANNEL frames' shard descriptors.
        self._route_groups: Dict[str, _RouteGroup] = {}
        self._in_channels: Dict[str, InChannel] = {}
        self._out_channels: List[OutChannel] = []
        self._tasks: List[asyncio.Task] = []
        self._shutdown: Optional[asyncio.Event] = None
        self._started = False
        self._start_time = time.monotonic()
        #: Items received per stream (decoded DATA entries) — compared
        #: against the sender's ``items_sent`` during a migration drain.
        self._recv_counts: Dict[str, int] = {}
        #: Streams whose sender may legally EOF without EOS because a
        #: live migration is re-routing them (coordinator "expect" step).
        self._migrating_streams: set = set()
        #: When True (coordinator HELLO, runs with scheduled migrations),
        #: RESULT/ERROR are held until the coordinator's "collect" —
        #: adopted stages must be included and spare workers must not
        #: report before they might adopt one.
        self._hold_results = False
        self._release: Optional[asyncio.Event] = None

    def elapsed(self) -> float:
        """Wall-clock seconds since START (process start before that)."""
        return time.monotonic() - self._start_time

    # -- lifecycle -----------------------------------------------------------

    async def serve(self, announce=None) -> None:
        """Bind, announce ``REPRO-NET-WORKER <port>``, serve until SHUTDOWN."""
        self._shutdown = asyncio.Event()
        self._release = asyncio.Event()
        install_task_dump(f"worker {self.name}")
        server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        port = server.sockets[0].getsockname()[1]
        unix_server = None
        uds_bound: Optional[str] = None
        if self.uds_path:
            # Best effort: a platform without AF_UNIX (or a bad path)
            # just loses the fast path; TCP keeps everything working.
            try:
                unix_server = await asyncio.start_unix_server(
                    self._handle_connection, path=self.uds_path
                )
                uds_bound = self.uds_path
            except (AttributeError, NotImplementedError, OSError):
                unix_server = None
        announce_line = f"{ANNOUNCE_PREFIX} {port}"
        if uds_bound:
            announce_line += f" {uds_bound}"
        stream = announce if announce is not None else sys.stdout
        print(announce_line, file=stream, flush=True)
        try:
            async with server:
                await self._shutdown.wait()
        finally:
            if unix_server is not None:
                unix_server.close()
                try:
                    await unix_server.wait_closed()
                except (ConnectionError, OSError):
                    pass
            if uds_bound is not None:
                try:
                    os.unlink(uds_bound)
                except OSError:
                    pass
            for task in self._tasks:
                task.cancel()
            for channel in self._out_channels:
                await channel.close()

    async def _handle_connection(self, reader, writer) -> None:
        """Dispatch on the first frame: HELLO = coordinator, ATTACH = peer."""
        try:
            first = await read_frame(reader)
            if first is None:
                return
            if first.type is FrameType.HELLO:
                await self._serve_coordinator(reader, writer, first)
            elif first.type is FrameType.ATTACH:
                await self._serve_peer(reader, writer, first)
            else:
                await send_frame(
                    writer, FrameType.ERROR,
                    encode_json({"error": f"unexpected first frame {first.type.name}"}),
                )
        except (ProtocolError, ConnectionError) as exc:
            try:
                await send_frame(
                    writer, FrameType.ERROR, encode_json({"error": str(exc)})
                )
            except (ProtocolError, ConnectionError, OSError):
                pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # -- coordinator connection ----------------------------------------------

    async def _serve_coordinator(self, reader, writer, hello) -> None:
        body = hello.json()
        self.name = str(body.get("worker", self.name))
        self.time_scale = float(body.get("time_scale", self.time_scale))
        self.credit_window = int(body.get("credit_window", self.credit_window))
        self.inbox_lanes = int(body.get("inbox_lanes", self.inbox_lanes))
        self.adaptation_enabled = bool(
            body.get("adaptation", self.adaptation_enabled)
        )
        self._hold_results = bool(body.get("hold_results", False))
        if body.get("policy") is not None:
            self.policy = AdaptationPolicy(**body["policy"])
        if body.get("batch") is not None:
            self.batch = BatchPolicy(
                max_items=int(body["batch"]["max_items"]),
                max_delay=float(body["batch"]["max_delay"]),
            )
        await send_frame(
            writer, FrameType.HELLO,
            encode_json({"role": "worker", "worker": self.name, "proto": 1}),
        )
        while True:
            frame = await read_frame(reader)
            if frame is None or frame.type is FrameType.SHUTDOWN:
                break
            await self._dispatch_control(frame, writer)
        assert self._shutdown is not None
        self._shutdown.set()

    async def _dispatch_control(self, frame, writer) -> None:
        if frame.type is FrameType.PING:
            await send_frame(writer, FrameType.PONG, frame.payload)
        elif frame.type is FrameType.REGISTER:
            self._register_stage(frame.json())
        elif frame.type is FrameType.CHANNEL:
            self._register_channel(frame.json())
        elif frame.type is FrameType.SYNC:
            await send_frame(
                writer, FrameType.READY, encode_json({"phase": "synced"})
            )
        elif frame.type is FrameType.START:
            await self._start(writer)
            await send_frame(
                writer, FrameType.READY, encode_json({"phase": "started"})
            )
        elif frame.type is FrameType.MIGRATE:
            await self._handle_migrate(frame.json(), writer)
        else:
            raise WorkerError(f"unexpected control frame {frame.type.name}")

    def _register_stage(
        self, body: Dict[str, Any], allow_after_start: bool = False
    ) -> None:
        name = body["stage"]
        if self._started and not allow_after_start:
            raise WorkerError("cannot register stages after START")
        if name in self._stages:
            raise WorkerError(f"duplicate stage {name!r}")
        factory = self.repository.fetch(body["code"])
        processor = factory()
        if not isinstance(processor, StreamProcessor):
            raise WorkerError(f"{name}: code did not produce a StreamProcessor")
        properties = {str(k): str(v) for k, v in body.get("properties", {}).items()}
        capacity = int(properties.get("net-queue-capacity", DEFAULT_QUEUE_CAPACITY))
        lanes = int(properties.get("net-inbox-lanes", self.inbox_lanes))
        if lanes < 1:
            raise WorkerError(f"{name}: net-inbox-lanes must be >= 1, got {lanes}")
        try:
            effective = batch_policy_from_properties(properties, self.batch)
        except ValueError as exc:
            raise WorkerError(f"{name}: {exc}") from None
        stage = _HostedStage(
            name=name,
            processor=processor,
            properties=properties,
            inbox=AsyncInbox(capacity, self.policy.window, lanes=lanes),
        )
        if effective is not None and effective.enabled:
            # Pre-scale the age bound once so flush deadlines compare
            # directly against elapsed() wall seconds.
            stage.batch = BatchPolicy(
                max_items=effective.max_items,
                max_delay=effective.max_delay * self.time_scale,
            )
        stage.metrics = StageMetrics(self.metrics, name)
        stage.estimator = LoadEstimator(name, stage.inbox, self.policy)
        self.metrics.series(f"adapt.{name}.d_tilde", stage.estimator.history)
        stage.context = _WorkerStageContext(stage, self)
        stage.done = asyncio.Event()
        self._stages[name] = stage

    def _register_channel(self, body: Dict[str, Any]) -> None:
        kind = body["kind"]
        stream = body["stream"]
        shard = body.get("shard")
        if kind == "local":
            src = self._require_stage(body["src"], stream)
            dst = self._require_stage(body["dst"], stream)
            # One inbox lane per input edge: this edge's items (and its
            # EOS) stay FIFO in their own lane while other producers
            # append to theirs without contending.
            lane = len(dst.upstream_local) + len(dst.upstream_wire)
            route = _LocalRoute(stream, dst, self, lane=lane)
            self._annotate_shard(route, shard, body["dst"])
            src.out_routes.append(route)
            dst.eos.expect()
            dst.upstream_local.append(src.name)
        elif kind == "in":
            dst = self._require_stage(body["dst"], stream)
            window = int(body.get("window", self.credit_window))
            lane = len(dst.upstream_local) + len(dst.upstream_wire)
            channel = InChannel(stream, dst.name, window, lane=lane)
            self._in_channels[stream] = channel
            dst.eos.expect()
            dst.upstream_wire.append(channel)
        elif kind == "out":
            src = self._require_stage(body["src"], stream)
            channel = OutChannel(
                stream,
                body["dst"],
                body["peer_host"],
                int(body["peer_port"]),
                self.metrics,
                clock=self.elapsed,
                on_exception=self._wire_exception_handler(src),
                uds_path=body.get("peer_uds"),
            )
            self._out_channels.append(channel)
            route = _WireRoute(channel)
            self._annotate_shard(route, shard, body["dst"])
            src.out_routes.append(route)
        else:
            raise WorkerError(f"unknown channel kind {kind!r} for {stream!r}")

    def _annotate_shard(
        self, route: Any, shard: Optional[Dict[str, Any]], dst_name: str
    ) -> None:
        """Attach a CHANNEL frame's shard descriptor to an out-route."""
        if shard is None:
            return
        route.shard = shard
        route.shard_counter = self.metrics.counter(f"shard.{dst_name}.items")

    def _require_stage(self, name: str, stream: str) -> _HostedStage:
        try:
            return self._stages[name]
        except KeyError:
            raise WorkerError(
                f"channel {stream!r} references unregistered stage {name!r}"
            ) from None

    def _wire_exception_handler(self, stage: _HostedStage):
        """Receive a downstream stage's load exception for ``stage``."""

        def _handle(body: Dict[str, Any]) -> None:
            try:
                exception = LoadException(
                    kind=LoadExceptionKind(body["kind"]),
                    reporter=str(body["reporter"]),
                    time=self.elapsed(),
                    score=float(body.get("score", 0.0)),
                )
            except (KeyError, ValueError):
                return
            stage.exceptions.report(exception)
            assert stage.metrics is not None
            stage.metrics.exceptions_received.inc()

        return _handle

    async def _start(self, coordinator_writer) -> None:
        if self._started:
            raise WorkerError("START received twice")
        for stage in self._stages.values():
            if not stage.eos.has_inputs:
                raise WorkerError(no_input_message(stage.name))
        self._started = True
        self._start_time = time.monotonic()
        # Warm the deterministic-context module before any stage task
        # runs: StageContext.det imports it lazily, and paying a package
        # import inside the data path shows up as a multi-millisecond
        # latency spike on whichever item (or the EOS flush) touches
        # ``ctx.det`` first.
        import repro.ledger.context  # noqa: F401
        for stage in self._stages.values():
            assert stage.context is not None
            stage.context._in_setup = True
            stage.processor.setup(stage.context)
            stage.context._in_setup = False
            for pname, param in stage.parameters.items():
                self.metrics.series(
                    f"adapt.{stage.name}.param.{pname}", param.history
                )
        for stage in self._stages.values():
            self._build_route_units(stage)
            group = stage.properties.get(SHARD_GROUP_PROPERTY)
            if group is not None:
                active = stage.properties.get(
                    SHARD_ACTIVE_PROPERTY,
                    stage.properties.get(SHARD_COUNT_PROPERTY, "1"),
                )
                self.metrics.gauge(f"shard.{group}.replicas").set(float(active))
        # Batch buffers exist only for wire routes: a local handoff is
        # already a single in-process append, while a wire route pays a
        # frame + syscall per send, which batching amortizes.
        for stage in self._stages.values():
            if stage.batch is None:
                continue
            for index, route in enumerate(stage.out_routes):
                if isinstance(route, _WireRoute):
                    stage.batch_buffers[index] = BatchBuffer(stage.batch)
            if stage.batch_buffers:
                stage.batch_metrics = BatchMetrics(self.metrics, stage.name)
        # Dial every outbound channel; the receiving workers are already
        # synced (the coordinator barriers SYNC/READY before any START),
        # so their InChannels exist and grant credit on ATTACH.
        await asyncio.gather(*(c.connect() for c in self._out_channels))
        for stage in self._stages.values():
            self._tasks.append(asyncio.create_task(self._stage_task(stage)))
            if self.adaptation_enabled:
                self._tasks.append(asyncio.create_task(self._monitor_task(stage)))
        self._tasks.append(
            asyncio.create_task(self._completion_task(coordinator_writer))
        )

    def _build_route_units(self, stage: _HostedStage) -> None:
        """Group a stage's out-routes into routing units.

        Routes fanning out to the replicas of one sharded destination
        group (same declared stream name, same group) collapse into one
        partitioned family unit — local and wire routes mix freely, the
        replicas may live anywhere in the fleet.  A partial family
        (possible only if the coordinator shipped an incomplete slot
        set) falls back to solo units.
        """
        families: Dict[Tuple[str, str], Dict[int, int]] = {}
        descriptors: Dict[str, Dict[str, Any]] = {}
        order: List[Tuple[Optional[Tuple[str, str]], int]] = []
        for index, route in enumerate(stage.out_routes):
            shard = route.shard
            if shard is None:
                order.append((None, index))
                continue
            key = (logical_stream(route.stream), str(shard["group"]))
            if key not in families:
                order.append((key, index))
                families[key] = {}
            families[key][int(shard["slot"])] = index
            descriptors[str(shard["group"])] = shard
        units: List[_RouteUnit] = []
        for key, index in order:
            if key is None:
                units.append(
                    _RouteUnit(
                        accepts=frozenset({stage.out_routes[index].stream}),
                        routes=[index],
                    )
                )
                continue
            logical, group = key
            mapping = families[key]
            shard = descriptors[group]
            slots = int(shard["slots"])
            if set(mapping) == set(range(slots)):
                routes = [mapping[slot] for slot in range(slots)]
                names = {stage.out_routes[i].stream for i in routes}
                units.append(
                    _RouteUnit(
                        accepts=frozenset(names | {logical}),
                        routes=routes,
                        group=group,
                        named={
                            stage.out_routes[i].stream: slot
                            for slot, i in enumerate(routes)
                        },
                    )
                )
                if group not in self._route_groups:
                    properties = {PARTITIONER_PROPERTY: str(
                        shard.get("partitioner", "hash")
                    )}
                    if shard.get("boundaries") is not None:
                        properties[BOUNDARIES_PROPERTY] = str(shard["boundaries"])
                    self._route_groups[group] = _RouteGroup(
                        partitioner=partitioner_from_properties(properties),
                        shard_by=str(shard.get("by", "payload")),
                        active=int(shard["active"]),
                    )
            else:
                for route_index in sorted(mapping.values()):
                    name = stage.out_routes[route_index].stream
                    units.append(
                        _RouteUnit(
                            accepts=frozenset({name, logical}),
                            routes=[route_index],
                        )
                    )
        stage.route_units = units

    def _route_indices(
        self, stage: _HostedStage, payload: Any, stream: Optional[str]
    ):
        """Out-route indices one emission goes to.

        Solo units keep the pre-sharding fan-out; a family unit
        contributes exactly one route — the key owner's, or the
        explicitly addressed replica's.
        """
        for unit in stage.route_units:
            if stream is not None and stream not in unit.accepts:
                continue
            if unit.group is None:
                yield unit.routes[0]
                continue
            if stream is not None and stream in unit.named:
                slot = unit.named[stream]
            else:
                slot = self._route_groups[unit.group].owner(payload)
            index = unit.routes[slot]
            counter = stage.out_routes[index].shard_counter
            if counter is not None:
                counter.inc()
            yield index

    # -- stage execution -----------------------------------------------------

    async def _stage_task(self, stage: _HostedStage) -> None:
        ctx = stage.context
        assert ctx is not None
        assert stage.metrics is not None
        sleep_debt = 0.0
        # With batching on, the inbox is drained in chunks — one event-loop
        # suspension and one aggregated metrics update per chunk instead of
        # per item — and the per-item cost computation is skipped entirely
        # for provably-free cost models.
        chunked = stage.batch is not None
        cost_model = stage.processor.cost_model
        free = isinstance(cost_model, CpuCostModel) and cost_model.is_free
        local: Deque[Tuple[Any, Any]] = deque()
        try:
            while True:
                if not local:
                    timeout = self._next_flush_timeout(stage)
                    try:
                        if chunked:
                            assert stage.batch is not None
                            if timeout is None:
                                drained = await stage.inbox.get_many(
                                    stage.batch.max_items
                                )
                            else:
                                drained = await asyncio.wait_for(
                                    stage.inbox.get_many(stage.batch.max_items),
                                    timeout,
                                )
                            local.extend(drained)
                            count, nbytes_in = 0, 0.0
                            for _, msg in drained:
                                if not isinstance(msg, EndOfStream):
                                    count += 1
                                    nbytes_in += msg.size
                            if count:
                                stage.metrics.items_in.inc(count)
                                stage.metrics.bytes_in.inc(nbytes_in)
                        elif timeout is None:
                            local.append(await stage.inbox.get())
                        else:
                            local.append(
                                await asyncio.wait_for(stage.inbox.get(), timeout)
                            )
                    except asyncio.TimeoutError:
                        await self._flush_due(stage)
                        continue
                channel, message = local.popleft()
                if isinstance(message, _MigrateFence):
                    # Live-migration drain boundary: the upstreams are
                    # paused, so nothing can follow.  Flush everything,
                    # tear down out-routes with the plain FIN/drain close
                    # (no EOS — the stream continues on the new worker),
                    # and exit so the export handler can snapshot.
                    await self._transmit_pending(stage)
                    for index in list(stage.batch_buffers):
                        await self._flush_route(stage, index)
                    for route in stage.out_routes:
                        await route.close()
                    stage.migrated_away = True
                    assert stage.fence_passed is not None
                    stage.fence_passed.set()
                    return
                if isinstance(message, EndOfStream):
                    if not stage.eos.observe():
                        continue
                    stage.processor.flush(ctx)
                    ctx.det.finalize_stage(stage.processor)
                    await self._transmit_pending(stage)
                    for index in list(stage.batch_buffers):
                        await self._flush_route(stage, index)
                    for route in stage.out_routes:
                        await route.send_eos(stage.name)
                    return
                if not chunked:
                    stage.metrics.items_in.inc()
                    stage.metrics.bytes_in.inc(message.size)
                if not free:
                    items, nbytes = stage.processor.work_amount(
                        message.payload, message.size
                    )
                    cost = cost_model.cost(items, nbytes)
                    if cost > 0:
                        scaled = cost * self.time_scale
                        stage.metrics.busy_seconds.inc(scaled)
                        sleep_debt += scaled
                        if sleep_debt >= _SLEEP_DEBT_THRESHOLD:
                            await asyncio.sleep(sleep_debt)
                            sleep_debt = 0.0
                stage.processor.on_item(message.payload, ctx)
                now = self.elapsed()
                stage.metrics.latency.observe(now - message.created_at)
                if ctx.pending:
                    full = self._buffer_pending(stage, now)
                    if full is None:
                        await self._transmit_pending(stage)
                    else:
                        for index in full:
                            await self._flush_route(stage, index)
                if channel is not None and channel.note_consumed():
                    if channel.needs_drain():
                        # Credit backchannel piled up past the high
                        # watermark (slow/stalled sender): flush before
                        # consuming more so its buffer stays bounded.
                        await channel.drain()
        except asyncio.CancelledError:
            raise
        except BaseException as exc:  # noqa: BLE001 - reported via ERROR frame
            stage.error = exc
            # Release downstream stages (they will never hear from us
            # again); best effort — peers may already be gone.
            for route in stage.out_routes:
                try:
                    await route.send_eos(stage.name)
                except (ChannelError, ConnectionError, ProtocolError):
                    pass
        finally:
            assert stage.done is not None
            stage.done.set()

    def _buffer_pending(
        self, stage: _HostedStage, now: float
    ) -> Optional[List[int]]:
        """Synchronous fast path for the per-item hot loop: move every
        pending emission into its route's batch buffer and return the
        indices that filled (usually none — the caller then skips the
        coroutine round-trip entirely).  Returns None without consuming
        anything when some route has no buffer, so the caller falls back
        to the general :meth:`_transmit_pending` path."""
        ctx = stage.context
        assert ctx is not None
        assert stage.metrics is not None
        buffers = stage.batch_buffers
        if len(buffers) != len(stage.out_routes):
            return None
        pending, ctx.pending = ctx.pending, []
        full: List[int] = []
        nbytes_out = 0.0
        for payload, size, stream in pending:
            nbytes_out += size
            for index in self._route_indices(stage, payload, stream):
                if buffers[index].add((payload, size), now) and index not in full:
                    full.append(index)
        stage.metrics.items_out.inc(len(pending))
        stage.metrics.bytes_out.inc(nbytes_out)
        return full

    async def _transmit_pending(self, stage: _HostedStage) -> None:
        ctx = stage.context
        assert ctx is not None
        assert stage.metrics is not None
        if not ctx.pending:
            return
        now = self.elapsed()
        full = self._buffer_pending(stage, now)
        if full is not None:
            for index in full:
                await self._flush_route(stage, index)
            return
        # Mixed or unbatched routes: buffered where a buffer exists,
        # shipped immediately where none does (local routes, batch off).
        pending, ctx.pending = ctx.pending, []
        mixed_full: List[int] = []
        nbytes_out = 0.0
        for payload, size, stream in pending:
            nbytes_out += size
            for index in self._route_indices(stage, payload, stream):
                buffer = stage.batch_buffers.get(index)
                if buffer is None:
                    await stage.out_routes[index].send(payload, size, stage.name)
                elif buffer.add((payload, size), now) and index not in mixed_full:
                    mixed_full.append(index)
        stage.metrics.items_out.inc(len(pending))
        stage.metrics.bytes_out.inc(nbytes_out)
        for index in mixed_full:
            await self._flush_route(stage, index)

    def _next_flush_timeout(self, stage: _HostedStage) -> Optional[float]:
        """Seconds until the oldest buffered batch must age-flush."""
        deadlines = [
            buffer.deadline()
            for buffer in stage.batch_buffers.values()
            if buffer.entries
        ]
        if not deadlines:
            return None
        return max(0.0, min(d for d in deadlines if d is not None) - self.elapsed())

    async def _flush_due(self, stage: _HostedStage) -> None:
        now = self.elapsed()
        for index, buffer in stage.batch_buffers.items():
            if buffer.due(now):
                await self._flush_route(stage, index, age=True)

    async def _flush_route(
        self, stage: _HostedStage, index: int, age: bool = False
    ) -> None:
        """Ship one route's accumulated batch as (at most a few) DATA frames."""
        entries = stage.batch_buffers[index].drain()
        if not entries:
            return
        if stage.batch_metrics is not None:
            stage.batch_metrics.batches.inc()
            stage.batch_metrics.items.inc(len(entries))
            stage.batch_metrics.flush_size.observe(float(len(entries)))
            if age:
                stage.batch_metrics.age_flushes.inc()
        route = stage.out_routes[index]
        await route.channel.send_batch(entries)

    async def _monitor_task(self, stage: _HostedStage) -> None:
        """The Section 4 adaptation loop, run locally per stage."""
        assert stage.estimator is not None
        assert stage.metrics is not None
        assert stage.done is not None
        samples = 0
        interval = self.policy.sample_interval * self.time_scale
        while not stage.done.is_set():
            await asyncio.sleep(interval)
            if stage.done.is_set():
                return
            now = self.elapsed()
            stage.metrics.queue_len.record(
                now, float(stage.inbox.current_length)
            )
            exception = stage.estimator.sample(now)
            if exception is not None and self.policy.exceptions_enabled:
                stage.metrics.exceptions_reported.inc()
                self._report_upstream(stage, exception)
                for wire in stage.upstream_wire:
                    if wire.needs_drain():
                        await wire.drain()
            samples += 1
            if samples % self.policy.adjust_every == 0 and stage.controllers:
                t1, t2 = stage.exceptions.drain()
                score = stage.estimator.normalized_score
                for controller in stage.controllers.values():
                    controller.adjust(score, t1, t2, now)

    def _report_upstream(
        self, stage: _HostedStage, exception: LoadException
    ) -> None:
        """Deliver a load exception to every upstream: local or over the wire."""
        for src_name in stage.upstream_local:
            upstream = self._stages[src_name]
            upstream.exceptions.report(exception)
            assert upstream.metrics is not None
            upstream.metrics.exceptions_received.inc()
        for channel in stage.upstream_wire:
            channel.send_exception(
                {
                    "stream": channel.stream,
                    "kind": exception.kind.value,
                    "reporter": exception.reporter,
                    "time": exception.time,
                    "score": exception.score,
                }
            )

    async def _completion_task(self, writer) -> None:
        """Send RESULT (or ERROR) once every local stage has drained."""
        while True:
            # Snapshot: a live migration may adopt a stage onto this
            # worker after the wait started, so re-check until the set
            # is stable and fully drained.
            stages = list(self._stages.values())
            for stage in stages:
                assert stage.done is not None
                await stage.done.wait()
            if any(
                s.error is not None and not s.migrated_away
                for s in self._stages.values()
            ):
                # An error aborts the run: never hold it behind the
                # collect release, or a crashed stage stops consuming,
                # the coordinator's feeder starves on credit, and the
                # release broadcast it is waiting for never arrives.
                break
            if not self._hold_results:
                break
            assert self._release is not None
            await self._release.wait()
            if len(self._stages) == len(stages) and all(
                s.done is not None and s.done.is_set()
                for s in self._stages.values()
            ):
                break
        failed = [
            s for s in self._stages.values()
            if s.error is not None and not s.migrated_away
        ]
        try:
            if failed:
                await send_frame(
                    writer, FrameType.ERROR,
                    encode_json({
                        "error": f"stage {failed[0].name!r} failed: "
                                 f"{failed[0].error!r}",
                        "worker": self.name,
                    }),
                )
                return
            finals: Dict[str, Any] = {}
            for stage in self._stages.values():
                if stage.migrated_away:
                    # The live copy (and its final value) moved to
                    # another worker; ours is a stale snapshot.
                    continue
                assert stage.metrics is not None
                stage.metrics.arrival_rate.set(
                    stage.rate_estimator.decayed_rate(self.elapsed())
                )
                finals[stage.name] = stage.processor.result()
            for channel in self._out_channels:
                await channel.close()
            await send_frame(
                writer, FrameType.RESULT,
                encode_json({
                    "worker": self.name,
                    "finals": finals,
                    "metrics": self.metrics.to_dict(),
                }),
            )
        except (ConnectionError, ProtocolError, OSError):
            pass

    # -- live migration (docs/migration.md) ----------------------------------

    async def _handle_migrate(self, body: Dict[str, Any], writer) -> None:
        """One step of the coordinator's six-phase migration protocol.

        Each action except ``collect`` replies with a MIGRATE frame
        carrying the completed ``phase`` (``export`` replies HANDOFF on
        success); ``collect`` only releases held results — replying here
        would interleave with the RESULT frames it unblocks.
        """
        action = body.get("action")
        if action == "pause":
            sent: Dict[str, int] = {}
            closed: Dict[str, bool] = {}
            wanted = set(body["streams"])
            for channel in self._out_channels:
                if channel.stream in wanted:
                    await channel.pause()
                    sent[channel.stream] = channel.items_sent
                    closed[channel.stream] = channel.eos_sent
            await send_frame(
                writer, FrameType.MIGRATE,
                encode_json({"phase": "paused", "sent": sent,
                             "closed": closed}),
            )
        elif action == "expect":
            self._migrating_streams.update(body["streams"])
            await send_frame(
                writer, FrameType.MIGRATE, encode_json({"phase": "expecting"})
            )
        elif action == "export":
            await self._export_stage(body, writer)
        elif action == "adopt":
            await self._adopt_stage(body, writer)
        elif action == "resume":
            for stream, addr in body["streams"].items():
                for channel in self._out_channels:
                    if channel.stream != stream:
                        continue
                    if addr is not None and not channel.eos_sent:
                        await channel.redial(
                            addr["host"], int(addr["port"]),
                            uds_path=addr.get("uds"),
                        )
                    channel.resume()
            await send_frame(
                writer, FrameType.MIGRATE, encode_json({"phase": "resumed"})
            )
        elif action == "collect":
            assert self._release is not None
            self._release.set()
        else:
            raise WorkerError(f"unknown MIGRATE action {action!r}")

    async def _export_stage(self, body: Dict[str, Any], writer) -> None:
        """Drain a paused stage to its item boundary and hand its state off.

        The coordinator tells us how many items every inbound stream's
        sender shipped before pausing; once our receive counters match,
        everything the stage will ever see here is at least in its inbox.
        A fence sentinel then marks the drain boundary: when the stage
        task passes it, the inbox is empty and the processor is between
        items — the one moment a snapshot is consistent.
        """
        stage = self._stages[body["stage"]]
        expected = {str(k): int(v) for k, v in body["expected"].items()}
        assert stage.done is not None
        while not all(
            self._recv_counts.get(s, 0) >= n for s, n in expected.items()
        ):
            if stage.done.is_set():
                break
            await asyncio.sleep(0.001)
        if not stage.done.is_set():
            stage.fence_passed = asyncio.Event()
            # A barrier, not an ordinary entry: with a sharded inbox the
            # fence must sort after every lane's items, and the lanes
            # are quiescent (upstreams paused), so barrier delivery ==
            # "all lanes drained".
            await stage.inbox.put_barrier((None, _MigrateFence()))
            waits = [
                asyncio.create_task(stage.done.wait()),
                asyncio.create_task(stage.fence_passed.wait()),
            ]
            await asyncio.wait(waits, return_when=asyncio.FIRST_COMPLETED)
            for task in waits:
                task.cancel()
        if not stage.migrated_away:
            # The stage completed (EOS already queued behind the pause)
            # or failed before reaching the fence — nothing to move; the
            # coordinator unwinds the migration and lets the ordinary
            # RESULT/ERROR path report.
            await send_frame(
                writer, FrameType.MIGRATE,
                encode_json({"phase": "finished", "stage": stage.name}),
            )
            return
        await send_frame(
            writer, FrameType.HANDOFF,
            encode_json({
                "stage": stage.name,
                "state": stage.processor.snapshot(),
                "parameters": {
                    name: param.value
                    for name, param in stage.parameters.items()
                },
                "eos_seen": stage.eos.snapshot(),
            }),
        )

    async def _adopt_stage(self, body: Dict[str, Any], writer) -> None:
        """Instantiate a migrated stage here and resume it from a HANDOFF.

        Mirrors the REGISTER/CHANNEL/START sequence for one stage:
        fresh processor, fresh channels, ``setup()`` for structure, then
        the handed-off parameters/state/EOS progress layered on top —
        the same fresh-instance restore contract failover uses.
        """
        register = body["register"]
        self._register_stage(register, allow_after_start=True)
        stage = self._stages[register["stage"]]
        out_before = len(self._out_channels)
        for spec in body.get("in", []):
            self._register_channel({
                "kind": "in",
                "stream": spec["stream"],
                "dst": stage.name,
                "window": spec.get("window", self.credit_window),
            })
        for spec in body.get("out", []):
            self._register_channel({
                "kind": "out",
                "stream": spec["stream"],
                "src": stage.name,
                "dst": spec["dst"],
                "peer_host": spec["peer_host"],
                "peer_port": spec["peer_port"],
                "peer_uds": spec.get("peer_uds"),
                "shard": spec.get("shard"),
            })
        new_channels = self._out_channels[out_before:]
        assert stage.context is not None
        stage.context._in_setup = True
        stage.processor.setup(stage.context)
        stage.context._in_setup = False
        if stage.context.pending:
            raise WorkerError(
                f"{stage.name}: processor emitted during setup()"
            )
        for pname, param in stage.parameters.items():
            self.metrics.series(
                f"adapt.{stage.name}.param.{pname}", param.history
            )
        now = self.elapsed()
        for pname, value in body.get("parameters", {}).items():
            if pname in stage.parameters:
                stage.parameters[pname].set_value(float(value), now)
        if body.get("state") is not None:
            stage.processor.restore(body["state"])
        stage.eos.restore(int(body.get("eos_seen", 0)))
        if stage.batch is not None:
            for index, route in enumerate(stage.out_routes):
                if isinstance(route, _WireRoute):
                    stage.batch_buffers[index] = BatchBuffer(stage.batch)
            if stage.batch_buffers:
                stage.batch_metrics = BatchMetrics(self.metrics, stage.name)
        self._build_route_units(stage)
        await asyncio.gather(*(c.connect() for c in new_channels))
        self._tasks.append(asyncio.create_task(self._stage_task(stage)))
        if self.adaptation_enabled:
            self._tasks.append(
                asyncio.create_task(self._monitor_task(stage))
            )
        await send_frame(
            writer, FrameType.MIGRATE, encode_json({"phase": "adopted"})
        )

    # -- peer (data) connections ---------------------------------------------

    async def _serve_peer(self, reader, writer, attach) -> None:
        body = attach.json()
        stream = body["stream"]
        channel = self._in_channels.get(stream)
        if channel is None:
            raise ProtocolError(f"ATTACH for undeclared channel {stream!r}")
        if channel.attached:
            raise ProtocolError(f"channel {stream!r} attached twice")
        channel.attach(writer)
        stage = self._stages[channel.dst_stage]
        lane = channel.lane
        saw_eos = False
        try:
            # Bulk reads through one persistent decoder: back-to-back
            # DATA frames cost one syscall for many frames instead of
            # two readexactly calls per frame.
            async for frame in iter_frames(reader):
                if frame.type is FrameType.DATA:
                    if is_batch_payload(frame.payload):
                        decoded = decode_payload_batch(frame.payload)
                    else:
                        decoded = [decode_payload(frame.payload)]
                    now = self.elapsed()
                    await stage.inbox.force_put_many(
                        [
                            (
                                channel,
                                Item(
                                    payload=payload, size=size, origin=stream,
                                    created_at=now,
                                ),
                            )
                            for payload, size in decoded
                        ],
                        lane=lane,
                    )
                    stage.rate_estimator.observe(
                        self.elapsed(), count=float(len(decoded))
                    )
                    self._recv_counts[stream] = (
                        self._recv_counts.get(stream, 0) + len(decoded)
                    )
                elif frame.type is FrameType.EOS:
                    saw_eos = True
                    await stage.inbox.force_put(
                        (None, EndOfStream(origin=stream)), lane=lane
                    )
                else:
                    raise ProtocolError(
                        f"unexpected {frame.type.name} frame on data channel "
                        f"{stream!r}"
                    )
        except ConnectionError:
            pass
        if not saw_eos:
            if stream in self._migrating_streams:
                # Planned EOF: a live migration is re-routing this stream
                # (sender redialed to the new worker, or the migrated
                # stage closed its own outputs).  Detach so a later
                # re-attach — e.g. migrating back — gets a fresh window.
                self._migrating_streams.discard(stream)
                channel.detach()
                return
            # The sender vanished mid-stream.  Waiting for an EOS that
            # can never arrive would hang the whole run; fail the stage
            # so the worker reports ERROR and the coordinator aborts.
            if stage.error is None:
                stage.error = WorkerError(
                    f"data channel {stream!r} closed before EOS"
                )
            if stage.done is not None:
                stage.done.set()


def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.net.worker`` / ``repro worker`` entry point."""
    parser = argparse.ArgumentParser(
        prog="repro worker",
        description="Run one repro.net worker process (a GATES service "
        "container) and wait for a coordinator.",
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="interface to bind (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=0,
                        help="TCP port to bind (default 0: ephemeral, "
                        "announced on stdout)")
    parser.add_argument("--name", default="worker",
                        help="fallback worker name until the coordinator "
                        "assigns one")
    parser.add_argument("--uds", default=None, metavar="PATH",
                        help="also listen on this UNIX-domain socket and "
                        "announce it (co-located fast path; ignored on "
                        "platforms without AF_UNIX)")
    args = parser.parse_args(argv)
    worker = Worker(
        host=args.host, port=args.port, name=args.name, uds_path=args.uds
    )
    try:
        asyncio.run(worker.serve())
    except KeyboardInterrupt:
        return 130
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
