"""Declarative models of the wire protocol, checked by ``repro analyze``.

The networked runtime's behaviour is documented in three places today:
prose in ``docs/``, the frame codec (:mod:`repro.net.protocol`), and the
implementation itself.  This module adds a fourth that is *checkable*:

* **transition tables** (:data:`LIFECYCLE`, :data:`MIGRATION`,
  :data:`CREDIT`) — small declarative state machines naming, for every
  protocol step, which role sends or receives which frame.  Their union
  induces :data:`FLOWS`, the complete alphabet of legal
  ``(role, direction, frame)`` triples; the GA613 conformance pass maps
  every frame site in ``coordinator.py``/``worker.py``/``channels.py``
  onto it in both directions;
* **executable bounded models** (:class:`LifecycleModel`,
  :class:`CreditFlowModel`, :class:`MigrationModel`) — explicit-state
  machines small enough for the checker in
  :mod:`repro.analysis.protocol` to explore exhaustively, proving for
  every bounded configuration in :func:`bounded_models` that the
  protocol cannot deadlock (GA610), conserves credit and items (GA611),
  and always delivers EOS / completes the migration (GA612).

The models deliberately support **fault injection** (``double_grant``,
``no_replenish``, ``skip_drain``, ...): a knob turns a verified model
into a broken one whose counterexample exercises the checker — that is
what the GA61x fixture corpus and the checker's own tests are built on.

Every model state is an immutable, hashable dataclass; successor lists
are built in a fixed order, so exploration (and therefore every
diagnostic and counterexample trace) is deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import FrozenSet, Hashable, List, Optional, Tuple

__all__ = [
    "CREDIT",
    "FLOWS",
    "LIFECYCLE",
    "MIGRATION",
    "CreditFlowModel",
    "LifecycleModel",
    "MigrationModel",
    "ProtocolModel",
    "Transition",
    "bounded_models",
]


# ---------------------------------------------------------------------------
# Declarative transition tables
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Transition:
    """One step of a protocol machine: who moves which frame, and when."""

    machine: str
    source: str
    target: str
    #: ``coordinator`` | ``worker`` | ``sender`` | ``receiver``.
    role: str
    #: ``send`` | ``recv``.
    direction: str
    #: Frame type name (:class:`repro.net.protocol.FrameType`).
    frame: str
    label: str


def _t(
    machine: str, source: str, target: str, label: str,
    *moves: Tuple[str, str, str],
) -> List[Transition]:
    return [
        Transition(machine, source, target, role, direction, frame, label)
        for role, direction, frame in moves
    ]


#: Coordinator/worker control-session lifecycle: HELLO handshake, PING
#: probe, deployment (REGISTER, CHANNEL), the SYNC barrier, START, the
#: RESULT collection, and SHUTDOWN/ERROR teardown — the state names are
#: the per-worker session states of :class:`LifecycleModel`.
LIFECYCLE: Tuple[Transition, ...] = tuple(
    _t("lifecycle", "connected", "greeted", "hello",
       ("coordinator", "send", "HELLO"), ("worker", "recv", "HELLO"),
       ("worker", "send", "HELLO"), ("coordinator", "recv", "HELLO"))
    + _t("lifecycle", "greeted", "greeted", "ping",
         ("coordinator", "send", "PING"), ("worker", "recv", "PING"),
         ("worker", "send", "PONG"), ("coordinator", "recv", "PONG"))
    + _t("lifecycle", "greeted", "registered", "register",
         ("coordinator", "send", "REGISTER"), ("worker", "recv", "REGISTER"))
    + _t("lifecycle", "registered", "channeled", "channel",
         ("coordinator", "send", "CHANNEL"), ("worker", "recv", "CHANNEL"))
    + _t("lifecycle", "channeled", "synced", "sync",
         ("coordinator", "send", "SYNC"), ("worker", "recv", "SYNC"),
         ("worker", "send", "READY"), ("coordinator", "recv", "READY"))
    + _t("lifecycle", "synced", "started", "start",
         ("coordinator", "send", "START"), ("worker", "recv", "START"),
         ("worker", "send", "READY"), ("coordinator", "recv", "READY"))
    + _t("lifecycle", "started", "resulted", "result",
         ("worker", "send", "RESULT"), ("coordinator", "recv", "RESULT"))
    + _t("lifecycle", "resulted", "shut", "shutdown",
         ("coordinator", "send", "SHUTDOWN"), ("worker", "recv", "SHUTDOWN"))
    + _t("lifecycle", "*", "shut", "error",
         ("worker", "send", "ERROR"), ("coordinator", "recv", "ERROR"))
)

#: Six-phase live migration (pause → expect → export → adopt → resume →
#: collect); every control step rides a MIGRATE frame, the state itself
#: moves in the HANDOFF, and a stage that finished mid-pause unwinds
#: with a MIGRATE phase="finished" reply instead of a HANDOFF.
MIGRATION: Tuple[Transition, ...] = tuple(
    _t("migration", "running", "paused", "pause",
       ("coordinator", "send", "MIGRATE"), ("worker", "recv", "MIGRATE"),
       ("worker", "send", "MIGRATE"), ("coordinator", "recv", "MIGRATE"))
    + _t("migration", "paused", "expecting", "expect",
         ("coordinator", "send", "MIGRATE"), ("worker", "recv", "MIGRATE"),
         ("worker", "send", "MIGRATE"), ("coordinator", "recv", "MIGRATE"))
    + _t("migration", "expecting", "handed-off", "export",
         ("coordinator", "send", "MIGRATE"), ("worker", "recv", "MIGRATE"),
         ("worker", "send", "HANDOFF"), ("coordinator", "recv", "HANDOFF"))
    + _t("migration", "expecting", "running", "export-finished",
         ("worker", "send", "MIGRATE"), ("coordinator", "recv", "MIGRATE"))
    + _t("migration", "handed-off", "adopted", "adopt",
         ("coordinator", "send", "MIGRATE"), ("worker", "recv", "MIGRATE"),
         ("worker", "send", "MIGRATE"), ("coordinator", "recv", "MIGRATE"))
    + _t("migration", "adopted", "running", "resume",
         ("coordinator", "send", "MIGRATE"), ("worker", "recv", "MIGRATE"),
         ("worker", "send", "MIGRATE"), ("coordinator", "recv", "MIGRATE"))
)

#: Credit-based flow control on one data channel: the sender's ATTACH,
#: the receiver's initial grant and batched replenishment, per-item DATA
#: accounting, the credit-free EOS sentinel, and the upstream EXCEPTION
#: path.  The receiving *worker* reads the data-plane socket on the
#: receiver's behalf (``_serve_peer``), so ATTACH/DATA/EOS appear in the
#: worker's receive alphabet too.
CREDIT: Tuple[Transition, ...] = tuple(
    _t("credit", "detached", "attached", "attach",
       ("sender", "send", "ATTACH"), ("worker", "recv", "ATTACH"),
       ("receiver", "send", "CREDIT"), ("sender", "recv", "CREDIT"))
    + _t("credit", "attached", "attached", "data",
         ("sender", "send", "DATA"), ("worker", "recv", "DATA"))
    + _t("credit", "attached", "attached", "replenish",
         ("receiver", "send", "CREDIT"), ("sender", "recv", "CREDIT"))
    + _t("credit", "attached", "attached", "exception",
         ("receiver", "send", "EXCEPTION"), ("sender", "recv", "EXCEPTION"))
    + _t("credit", "attached", "closed", "eos",
         ("sender", "send", "EOS"), ("worker", "recv", "EOS"))
)

#: The full legal frame-traffic alphabet: every (role, direction, frame)
#: triple any conforming implementation may exhibit.
FLOWS: FrozenSet[Tuple[str, str, str]] = frozenset(
    (t.role, t.direction, t.frame)
    for t in LIFECYCLE + MIGRATION + CREDIT
)


# ---------------------------------------------------------------------------
# Executable bounded models
# ---------------------------------------------------------------------------

class ProtocolModel:
    """Interface the explicit-state checker explores.

    States must be hashable and successor lists deterministic: the
    checker's BFS order — and with it every counterexample trace —
    must not vary between runs.
    """

    name: str = ""

    def initial(self) -> Hashable:
        raise NotImplementedError

    def successors(self, state: Hashable) -> List[Tuple[str, Hashable]]:
        """``(action label, next state)`` pairs, in a fixed order."""
        raise NotImplementedError

    def is_final(self, state: Hashable) -> bool:
        """Whether a terminal ``state`` is a legitimate end of the run."""
        raise NotImplementedError

    def invariant(self, state: Hashable) -> Optional[str]:
        """A safety-violation message for ``state``, or ``None``."""
        return None

    def goal(self, state: Hashable) -> Optional[str]:
        """A liveness-failure message for a *final* ``state``, or ``None``."""
        return None


@dataclass(frozen=True)
class _CreditState:
    attached: bool
    credits: int
    wire_data: Tuple[str, ...]
    inbox: int
    pending: int
    wire_credit: Tuple[int, ...]
    remaining: int
    eos_sent: bool
    eos_delivered: bool


class CreditFlowModel(ProtocolModel):
    """One channel shipping ``items`` items under a ``window``-item grant.

    Mirrors :class:`repro.net.channels.InChannel`/``OutChannel``: the
    initial grant on attach, per-item credit charging, batch
    replenishment at ``max(1, window // 2)`` consumed items, and the
    credit-free EOS.  Fault knobs turn the model into the broken
    variants the checker's tests and the fixture corpus exercise:

    * ``double_grant`` — the receiver grants the initial window twice;
    * ``leak_credit`` — each replenishment drops one consumed item;
    * ``no_replenish`` — the receiver never replenishes at all;
    * ``drop_eos`` — the receiver discards the EOS sentinel.
    """

    def __init__(
        self,
        window: int,
        items: int,
        *,
        double_grant: bool = False,
        leak_credit: bool = False,
        no_replenish: bool = False,
        drop_eos: bool = False,
    ) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if items < 0:
            raise ValueError(f"items must be >= 0, got {items}")
        self.window = window
        self.items = items
        self.batch = max(1, window // 2)
        self.double_grant = double_grant
        self.leak_credit = leak_credit
        self.no_replenish = no_replenish
        self.drop_eos = drop_eos
        knobs = [
            k for k, on in (
                ("double_grant", double_grant), ("leak_credit", leak_credit),
                ("no_replenish", no_replenish), ("drop_eos", drop_eos),
            ) if on
        ]
        suffix = f" [{'+'.join(knobs)}]" if knobs else ""
        self.name = f"credit-flow(window={window}, items={items}){suffix}"

    def initial(self) -> Hashable:
        return _CreditState(
            attached=False, credits=0, wire_data=(), inbox=0, pending=0,
            wire_credit=(), remaining=self.items,
            eos_sent=False, eos_delivered=False,
        )

    def successors(self, state: Hashable) -> List[Tuple[str, Hashable]]:
        assert isinstance(state, _CreditState)
        out: List[Tuple[str, Hashable]] = []
        if not state.attached:
            grant: Tuple[int, ...] = (self.window,)
            if self.double_grant:
                grant = (self.window, self.window)
            out.append(("attach", replace(
                state, attached=True, wire_credit=state.wire_credit + grant,
            )))
            return out
        if state.remaining > 0 and state.credits >= 1:
            out.append(("send-data", replace(
                state, credits=state.credits - 1,
                wire_data=state.wire_data + ("D",),
                remaining=state.remaining - 1,
            )))
        if state.remaining == 0 and not state.eos_sent:
            out.append(("send-eos", replace(
                state, eos_sent=True, wire_data=state.wire_data + ("E",),
            )))
        if state.wire_data:
            head, rest = state.wire_data[0], state.wire_data[1:]
            if head == "D":
                out.append(("deliver-data", replace(
                    state, wire_data=rest, inbox=state.inbox + 1,
                )))
            else:
                out.append(("deliver-eos", replace(
                    state, wire_data=rest,
                    eos_delivered=state.eos_delivered or not self.drop_eos,
                )))
        if state.inbox > 0:
            out.append(("consume", replace(
                state, inbox=state.inbox - 1, pending=state.pending + 1,
            )))
        if state.pending >= self.batch and not self.no_replenish:
            granted = state.pending - (1 if self.leak_credit else 0)
            out.append(("replenish", replace(
                state, pending=0,
                wire_credit=state.wire_credit + (granted,),
            )))
        if state.wire_credit:
            out.append(("credit-arrives", replace(
                state, credits=state.credits + state.wire_credit[0],
                wire_credit=state.wire_credit[1:],
            )))
        return out

    def is_final(self, state: Hashable) -> bool:
        assert isinstance(state, _CreditState)
        return (
            state.remaining == 0 and state.eos_sent
            and not state.wire_data and state.inbox == 0
            and not state.wire_credit
        )

    def invariant(self, state: Hashable) -> Optional[str]:
        assert isinstance(state, _CreditState)
        if not state.attached:
            return None
        in_flight = sum(1 for f in state.wire_data if f == "D")
        total = (
            state.credits + in_flight + state.inbox + state.pending
            + sum(state.wire_credit)
        )
        if total != self.window:
            return (
                f"credit conservation broken: credits({state.credits}) + "
                f"in-flight({in_flight}) + inbox({state.inbox}) + "
                f"pending({state.pending}) + "
                f"granted-in-flight({sum(state.wire_credit)}) = {total}, "
                f"expected window = {self.window}"
            )
        return None

    def goal(self, state: Hashable) -> Optional[str]:
        assert isinstance(state, _CreditState)
        if not state.eos_delivered:
            return "the run completed but EOS was never delivered"
        return None


@dataclass(frozen=True)
class _MigState:
    phase: str
    sender_paused: bool
    in_flight: int
    old_inbox: int
    old_done: int
    exported: bool
    state_moved: bool
    post_remaining: int
    new_inbox: int
    new_done: int
    eos_delivered: bool
    lost: int


class MigrationModel(ProtocolModel):
    """One stage live-migrating while ``pre`` items are in flight.

    Follows the six coordinator phases (pause, expect, export, adopt,
    resume, collect): the sender parks at an item boundary, in-flight
    items drain into the source instance, the export fences and hands
    the state off, the target adopts, the sender redials and ships
    ``post`` more items plus EOS.  Fault knobs:

    * ``skip_drain`` — export fences without draining, stranding
      in-flight/queued items (conservation violation);
    * ``no_resume`` — the coordinator never resumes the senders.
    """

    def __init__(
        self, pre: int, post: int,
        *, skip_drain: bool = False, no_resume: bool = False,
    ) -> None:
        if pre < 0 or post < 0:
            raise ValueError("item counts must be >= 0")
        self.pre = pre
        self.post = post
        self.skip_drain = skip_drain
        self.no_resume = no_resume
        knobs = [
            k for k, on in (
                ("skip_drain", skip_drain), ("no_resume", no_resume),
            ) if on
        ]
        suffix = f" [{'+'.join(knobs)}]" if knobs else ""
        self.name = f"migration(pre={pre}, post={post}){suffix}"

    def initial(self) -> Hashable:
        return _MigState(
            phase="idle", sender_paused=False, in_flight=self.pre,
            old_inbox=0, old_done=0, exported=False, state_moved=False,
            post_remaining=self.post, new_inbox=0, new_done=0,
            eos_delivered=False, lost=0,
        )

    def successors(self, state: Hashable) -> List[Tuple[str, Hashable]]:
        assert isinstance(state, _MigState)
        out: List[Tuple[str, Hashable]] = []
        if state.in_flight > 0:
            if state.exported:
                out.append(("deliver-after-fence", replace(
                    state, in_flight=state.in_flight - 1,
                    lost=state.lost + 1,
                )))
            else:
                out.append(("deliver-old", replace(
                    state, in_flight=state.in_flight - 1,
                    old_inbox=state.old_inbox + 1,
                )))
        if state.old_inbox > 0 and not state.exported:
            out.append(("process-old", replace(
                state, old_inbox=state.old_inbox - 1,
                old_done=state.old_done + 1,
            )))
        if state.phase == "idle":
            out.append(("migrate-pause", replace(
                state, phase="pause", sender_paused=True,
            )))
        elif state.phase == "pause":
            out.append(("migrate-expect", replace(state, phase="expect")))
        elif state.phase == "expect":
            drained = state.in_flight == 0 and state.old_inbox == 0
            if drained or self.skip_drain:
                out.append(("export-handoff", replace(
                    state, phase="export", exported=True,
                    old_inbox=0,
                    lost=state.lost + state.old_inbox,
                )))
        elif state.phase == "export":
            out.append(("adopt", replace(
                state, phase="adopt", state_moved=True,
            )))
        elif state.phase == "adopt":
            if not self.no_resume:
                out.append(("resume", replace(
                    state, phase="resume", sender_paused=False,
                )))
        elif state.phase == "resume":
            if state.post_remaining > 0 and not state.sender_paused:
                out.append(("send-post", replace(
                    state, post_remaining=state.post_remaining - 1,
                    new_inbox=state.new_inbox + 1,
                )))
            if state.post_remaining == 0 and not state.sender_paused:
                out.append(("send-eos", replace(
                    state, phase="collect", eos_delivered=True,
                )))
        elif state.phase == "collect":
            if state.new_inbox == 0:
                out.append(("collect-done", replace(state, phase="done")))
        if state.state_moved and state.new_inbox > 0:
            out.append(("process-new", replace(
                state, new_inbox=state.new_inbox - 1,
                new_done=state.new_done + 1,
            )))
        return out

    def is_final(self, state: Hashable) -> bool:
        assert isinstance(state, _MigState)
        return state.phase == "done"

    def invariant(self, state: Hashable) -> Optional[str]:
        assert isinstance(state, _MigState)
        if state.lost:
            return (
                f"{state.lost} item(s) crossed the export fence after the "
                "handoff (delivered to a fenced instance: lost)"
            )
        return None

    def goal(self, state: Hashable) -> Optional[str]:
        assert isinstance(state, _MigState)
        done = state.old_done + state.new_done
        total = self.pre + self.post
        if done != total:
            return (
                f"migration completed with {done}/{total} items processed"
            )
        if not state.eos_delivered:
            return "migration completed but EOS was never delivered"
        return None


_WORKER_STATES = (
    "connected", "greeted", "registered", "channeled",
    "synced", "started", "resulted", "shut",
)


@dataclass(frozen=True)
class _LifeState:
    phase: str
    workers: Tuple[str, ...]


class LifecycleModel(ProtocolModel):
    """``n`` workers driven through the control-session lifecycle.

    The coordinator advances phase by phase (hello, register, channel,
    sync, start, collect, shutdown), moving every worker through the
    session states of the :data:`LIFECYCLE` table; the SYNC barrier is
    the safety property: no worker may START before *every* worker
    acknowledged SYNC.  Fault knob ``barrier_skip`` lets the coordinator
    advance past the barrier after a single acknowledgement.
    """

    #: phase -> (worker source state, worker target state)
    _PHASES = (
        ("hello", "connected", "greeted"),
        ("register", "greeted", "registered"),
        ("channel", "registered", "channeled"),
        ("sync", "channeled", "synced"),
        ("start", "synced", "started"),
        ("collect", "started", "resulted"),
        ("shutdown", "resulted", "shut"),
    )

    def __init__(self, workers: int, *, barrier_skip: bool = False) -> None:
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        self.workers = workers
        self.barrier_skip = barrier_skip
        suffix = " [barrier_skip]" if barrier_skip else ""
        self.name = f"lifecycle(workers={workers}){suffix}"

    def initial(self) -> Hashable:
        return _LifeState(phase="hello", workers=("connected",) * self.workers)

    def successors(self, state: Hashable) -> List[Tuple[str, Hashable]]:
        assert isinstance(state, _LifeState)
        out: List[Tuple[str, Hashable]] = []
        if state.phase == "done":
            return out
        spec = {p: (src, dst) for p, src, dst in self._PHASES}
        source, target = spec[state.phase]
        for index, wstate in enumerate(state.workers):
            if wstate == source:
                moved = list(state.workers)
                moved[index] = target
                out.append((
                    f"{state.phase}-w{index}",
                    _LifeState(phase=state.phase, workers=tuple(moved)),
                ))
        arrived = sum(1 for w in state.workers if w == target)
        quorum = 1 if self.barrier_skip and state.phase == "sync" else self.workers
        if arrived >= quorum:
            names = [p for p, _, _ in self._PHASES]
            at = names.index(state.phase)
            next_phase = names[at + 1] if at + 1 < len(names) else "done"
            out.append((
                f"advance-{next_phase}",
                _LifeState(phase=next_phase, workers=state.workers),
            ))
        return out

    def is_final(self, state: Hashable) -> bool:
        assert isinstance(state, _LifeState)
        return state.phase == "done" and all(
            w == "shut" for w in state.workers
        )

    def invariant(self, state: Hashable) -> Optional[str]:
        assert isinstance(state, _LifeState)
        order = {name: rank for rank, name in enumerate(_WORKER_STATES)}
        if any(order[w] >= order["started"] for w in state.workers):
            laggards = [
                f"w{i}" for i, w in enumerate(state.workers)
                if order[w] < order["synced"]
            ]
            if laggards:
                return (
                    "SYNC barrier broken: a worker STARTed while "
                    f"{', '.join(laggards)} never acknowledged SYNC"
                )
        return None


def bounded_models() -> List[ProtocolModel]:
    """The healthy bounded configurations ``repro analyze`` verifies.

    Small enough to explore exhaustively in well under a second, broad
    enough to cover the interesting regimes: single-item windows (every
    send stalls), windows smaller than the stream (replenishment is
    load-bearing), empty streams (EOS-only), migrations with and without
    in-flight/post-resume traffic, and 2–3 worker barriers.
    """
    return [
        LifecycleModel(workers=2),
        LifecycleModel(workers=3),
        CreditFlowModel(window=1, items=3),
        CreditFlowModel(window=2, items=5),
        CreditFlowModel(window=3, items=4),
        CreditFlowModel(window=2, items=0),
        MigrationModel(pre=0, post=2),
        MigrationModel(pre=2, post=2),
        MigrationModel(pre=3, post=1),
    ]
