"""Framed wire protocol for the networked runtime.

Everything that crosses a socket in ``repro.net`` is a *frame*:

```
offset  size  field
0       2     magic  b"GS"
2       1     protocol version (1)
3       1     frame type (FrameType)
4       4     payload length, uint32 little-endian
8       4     CRC-32 of the payload, uint32 little-endian
12      n     payload
```

Control frames (HELLO, REGISTER, CHANNEL, ...) carry UTF-8 JSON
payloads.  DATA frames carry a *typed payload*: a one-byte codec tag, an
8-byte declared item size (so stage-level byte metrics agree with the
other runtimes, which account declared — not encoded — sizes), then the
codec body.  Count-samps summary dicts ride the compact
:mod:`repro.streams.wire` codec; plain ints use a fixed 8-byte layout;
everything else falls back to JSON.

The incremental :class:`FrameDecoder` is the single parsing path — the
asyncio reader loops and the protocol fuzz tests both feed it byte
chunks of arbitrary alignment.
"""

from __future__ import annotations

import asyncio
import enum
import json
import struct
import zlib
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.streams import wire as summary_wire

__all__ = [
    "FRAME_HEADER_BYTES",
    "MAX_PAYLOAD",
    "Frame",
    "FrameDecoder",
    "FrameType",
    "ProtocolError",
    "decode_json",
    "decode_payload",
    "decode_payload_batch",
    "encode_frame",
    "encode_json",
    "encode_payload",
    "encode_payload_batch",
    "is_batch_payload",
    "read_frame",
    "send_frame",
]

MAGIC = b"GS"
VERSION = 1
#: magic 2s + version B + type B + length I + crc I
_HEADER_STRUCT = struct.Struct("<2sBBII")
FRAME_HEADER_BYTES = _HEADER_STRUCT.size  # 12
#: Upper bound on a single frame's payload; anything larger is a
#: protocol violation (and, on a fuzzed length field, keeps a corrupt
#: header from making the decoder wait for gigabytes).
MAX_PAYLOAD = 16 * 1024 * 1024


class ProtocolError(Exception):
    """Raised for malformed frames or payloads."""


class FrameType(enum.IntEnum):
    """Every message kind the coordinator/worker/peer protocol uses."""

    HELLO = 1       # connection handshake (coordinator <-> worker)
    PING = 2        # RTT probe (coordinator -> worker)
    PONG = 3        # RTT echo (worker -> coordinator)
    REGISTER = 4    # ship one stage registration to a worker
    CHANNEL = 5     # declare a data channel endpoint on a worker
    SYNC = 6        # coordinator: "registration batch complete?"
    START = 7       # coordinator: dial peers and start processing
    READY = 8       # worker ack for SYNC / START phases
    ATTACH = 9      # peer data connection: "I send stream X to stage Y"
    DATA = 10       # one stream item (typed payload)
    CREDIT = 11     # receiver -> sender: grant n more DATA frames
    EOS = 12        # end-of-stream sentinel for one channel
    EXCEPTION = 13  # load exception travelling upstream (paper §4)
    RESULT = 14     # worker -> coordinator: finals + metrics registry
    SHUTDOWN = 15   # coordinator -> worker: exit cleanly
    ERROR = 16      # fatal error report (either direction)
    MIGRATE = 17    # live-migration control step (pause/expect/export/
                    # adopt/resume/collect; JSON body with "action" or,
                    # in worker replies, "phase") — see docs/migration.md
    HANDOFF = 18    # worker -> coordinator: migrating stage's exported
                    # state (snapshot, parameter values, EOS counts)


_KNOWN_TYPES = frozenset(int(t) for t in FrameType)


@dataclass(frozen=True)
class Frame:
    """One decoded frame: a type and its raw payload bytes."""

    type: FrameType
    payload: bytes

    def json(self) -> Dict[str, Any]:
        """Decode the payload as a JSON object (control frames)."""
        return decode_json(self.payload)


def encode_frame(frame_type: FrameType, payload: bytes = b"") -> bytes:
    """Serialize one frame (header + payload) to bytes."""
    if len(payload) > MAX_PAYLOAD:
        raise ProtocolError(
            f"payload of {len(payload)} bytes exceeds MAX_PAYLOAD ({MAX_PAYLOAD})"
        )
    header = _HEADER_STRUCT.pack(
        MAGIC, VERSION, int(frame_type), len(payload), zlib.crc32(payload)
    )
    return header + payload


class FrameDecoder:
    """Incremental frame parser; tolerant of arbitrary chunk boundaries.

    ``feed(data)`` buffers bytes and returns every complete frame they
    finish.  Corruption (bad magic/version/type, oversized length, CRC
    mismatch) raises :class:`ProtocolError` — a stream protocol has no
    way to resynchronise after a framing error, so callers must drop the
    connection.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered that do not yet form a complete frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> List[Frame]:
        self._buffer += data
        frames: List[Frame] = []
        while True:
            frame = self._try_parse_one()
            if frame is None:
                return frames
            frames.append(frame)

    def _try_parse_one(self) -> Optional[Frame]:
        buf = self._buffer
        if len(buf) < FRAME_HEADER_BYTES:
            return None
        magic, version, ftype, length, crc = _HEADER_STRUCT.unpack_from(buf, 0)
        if magic != MAGIC:
            raise ProtocolError(f"bad frame magic {bytes(magic)!r}")
        if version != VERSION:
            raise ProtocolError(f"unsupported protocol version {version}")
        if ftype not in _KNOWN_TYPES:
            raise ProtocolError(f"unknown frame type {ftype}")
        if length > MAX_PAYLOAD:
            raise ProtocolError(
                f"declared payload length {length} exceeds MAX_PAYLOAD"
            )
        total = FRAME_HEADER_BYTES + length
        if len(buf) < total:
            return None
        payload = bytes(buf[FRAME_HEADER_BYTES:total])
        if zlib.crc32(payload) != crc:
            raise ProtocolError(
                f"payload CRC mismatch on {FrameType(ftype).name} frame"
            )
        del buf[:total]
        return Frame(type=FrameType(ftype), payload=payload)


# ---------------------------------------------------------------------------
# JSON payloads (control frames)
# ---------------------------------------------------------------------------

def encode_json(obj: Dict[str, Any]) -> bytes:
    """Compact UTF-8 JSON for control-frame payloads."""
    return json.dumps(obj, separators=(",", ":"), sort_keys=True).encode("utf-8")


def decode_json(payload: bytes) -> Dict[str, Any]:
    """Parse a control-frame payload; must be a JSON object."""
    try:
        obj = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed JSON payload: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError(
            f"control payload must be a JSON object, got {type(obj).__name__}"
        )
    return obj


# ---------------------------------------------------------------------------
# DATA payloads: codec tag + declared size + body
# ---------------------------------------------------------------------------

_PAYLOAD_JSON = 0
_PAYLOAD_INT = 1
_PAYLOAD_SUMMARY = 2
#: Generic batch: uint32 item count, then per item a uint32 length prefix
#: and that item's full single-item encoding.
_PAYLOAD_BATCH = 3
#: Summary batch fast path (every item a count-samps summary dict):
#: uint32 record count, per-record metadata (uint16 source-name length +
#: name bytes + float64 declared size), then one streams.wire batch blob.
_PAYLOAD_SUMMARY_BATCH = 4

#: declared item size travels as a little-endian float64 so receiver-side
#: stage metrics match the sender's declared accounting exactly.
_SIZE_STRUCT = struct.Struct("<d")
_INT_STRUCT = struct.Struct("<q")
_SRC_LEN_STRUCT = struct.Struct("<H")

_SUMMARY_KEYS = frozenset({"source", "pairs", "items_seen"})


def _try_encode_summary(obj: Any) -> Optional[bytes]:
    """Body bytes for a count-samps summary dict, or None if not one."""
    if not isinstance(obj, dict) or set(obj.keys()) != _SUMMARY_KEYS:
        return None
    source = obj["source"]
    if not isinstance(source, str):
        return None
    src_bytes = source.encode("utf-8")
    if len(src_bytes) > 0xFFFF:
        return None
    try:
        wire_bytes = summary_wire.encode_summary(
            [(int(v), int(c)) for v, c in obj["pairs"]],
            items_seen=int(obj["items_seen"]),
        )
    except (summary_wire.WireError, TypeError, ValueError):
        return None
    return _SRC_LEN_STRUCT.pack(len(src_bytes)) + src_bytes + wire_bytes


def encode_payload(obj: Any, size: float) -> bytes:
    """Encode one stream item for a DATA frame.

    ``size`` is the *declared* item size (what ``context.emit`` was told)
    — the receiver re-attaches it so stage byte metrics stay comparable
    across the simulated/threaded/networked runtimes, while ``net.*``
    metrics count the real encoded bytes.
    """
    prefix = _SIZE_STRUCT.pack(float(size))
    body = _try_encode_summary(obj)
    if body is not None:
        return bytes([_PAYLOAD_SUMMARY]) + prefix + body
    if isinstance(obj, int) and not isinstance(obj, bool):
        if _INT_STRUCT.size == 8 and -(1 << 63) <= obj < (1 << 63):
            return bytes([_PAYLOAD_INT]) + prefix + _INT_STRUCT.pack(obj)
    try:
        blob = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise ProtocolError(
            f"payload of type {type(obj).__name__} is not wire-encodable"
        ) from exc
    return bytes([_PAYLOAD_JSON]) + prefix + blob


def decode_payload(data: bytes) -> Tuple[Any, float]:
    """Inverse of :func:`encode_payload`: returns (object, declared size)."""
    if len(data) < 1 + _SIZE_STRUCT.size:
        raise ProtocolError(f"DATA payload too short: {len(data)} bytes")
    kind = data[0]
    (size,) = _SIZE_STRUCT.unpack_from(data, 1)
    body = data[1 + _SIZE_STRUCT.size:]
    if kind == _PAYLOAD_SUMMARY:
        if len(body) < _SRC_LEN_STRUCT.size:
            raise ProtocolError("summary payload missing source-name length")
        (src_len,) = _SRC_LEN_STRUCT.unpack_from(body, 0)
        rest = body[_SRC_LEN_STRUCT.size:]
        if len(rest) < src_len:
            raise ProtocolError("summary payload truncated in source name")
        source = rest[:src_len].decode("utf-8", errors="strict")
        try:
            pairs, items_seen = summary_wire.decode_summary(rest[src_len:])
        except summary_wire.WireError as exc:
            raise ProtocolError(f"corrupt summary body: {exc}") from exc
        return {"source": source, "pairs": pairs, "items_seen": items_seen}, size
    if kind == _PAYLOAD_INT:
        if len(body) != _INT_STRUCT.size:
            raise ProtocolError(f"int payload of {len(body)} bytes")
        return _INT_STRUCT.unpack(body)[0], size
    if kind == _PAYLOAD_JSON:
        try:
            return json.loads(body.decode("utf-8")), size
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(f"malformed JSON item payload: {exc}") from exc
    raise ProtocolError(f"unknown payload codec tag {kind}")


# ---------------------------------------------------------------------------
# Batched DATA payloads (several items, one frame)
# ---------------------------------------------------------------------------

_COUNT_STRUCT = struct.Struct("<I")


def is_batch_payload(data: bytes) -> bool:
    """True when a DATA payload carries a batch (several items)."""
    return bool(data) and data[0] in (_PAYLOAD_BATCH, _PAYLOAD_SUMMARY_BATCH)


def _try_encode_summary_batch(items: "List[Tuple[Any, float]]") -> Optional[bytes]:
    """Summary-batch body when *every* item is a summary dict, else None."""
    metadata = bytearray()
    records = []
    for obj, size in items:
        if not isinstance(obj, dict) or set(obj.keys()) != _SUMMARY_KEYS:
            return None
        source = obj["source"]
        if not isinstance(source, str):
            return None
        src_bytes = source.encode("utf-8")
        if len(src_bytes) > 0xFFFF:
            return None
        try:
            records.append(
                ([(int(v), int(c)) for v, c in obj["pairs"]], int(obj["items_seen"]))
            )
        except (TypeError, ValueError):
            return None
        metadata += _SRC_LEN_STRUCT.pack(len(src_bytes))
        metadata += src_bytes
        metadata += _SIZE_STRUCT.pack(float(size))
    try:
        blob = summary_wire.encode_summary_batch(records)
    except summary_wire.WireError:
        return None
    return _COUNT_STRUCT.pack(len(items)) + bytes(metadata) + blob


def encode_payload_batch(items: "List[Tuple[Any, float]]") -> bytes:
    """Encode several ``(object, declared size)`` items into one DATA payload.

    Picks the summary-batch fast path when every item is a count-samps
    summary dict (one :func:`repro.streams.wire.encode_summary_batch`
    blob, per-record metadata up front); otherwise falls back to the
    generic batch: each item's ordinary :func:`encode_payload` bytes
    behind a uint32 length prefix.  The receiver distinguishes batch from
    single-item payloads by the leading codec tag.
    """
    if not items:
        raise ProtocolError("cannot encode an empty payload batch")
    if len(items) > 0xFFFFFFFF:
        raise ProtocolError(f"too many items for uint32 count: {len(items)}")
    body = _try_encode_summary_batch(items)
    if body is not None:
        return bytes([_PAYLOAD_SUMMARY_BATCH]) + body
    out = bytearray([_PAYLOAD_BATCH])
    out += _COUNT_STRUCT.pack(len(items))
    for obj, size in items:
        encoded = encode_payload(obj, size)
        out += _COUNT_STRUCT.pack(len(encoded))
        out += encoded
    return bytes(out)


def decode_payload_batch(data: bytes) -> "List[Tuple[Any, float]]":
    """Inverse of :func:`encode_payload_batch`."""
    if len(data) < 1 + _COUNT_STRUCT.size:
        raise ProtocolError(f"batch payload too short: {len(data)} bytes")
    kind = data[0]
    (count,) = _COUNT_STRUCT.unpack_from(data, 1)
    offset = 1 + _COUNT_STRUCT.size
    if kind == _PAYLOAD_SUMMARY_BATCH:
        metadata: List[Tuple[str, float]] = []
        for index in range(count):
            if len(data) - offset < _SRC_LEN_STRUCT.size:
                raise ProtocolError(
                    f"summary batch truncated in record {index} metadata"
                )
            (src_len,) = _SRC_LEN_STRUCT.unpack_from(data, offset)
            offset += _SRC_LEN_STRUCT.size
            if len(data) - offset < src_len + _SIZE_STRUCT.size:
                raise ProtocolError(
                    f"summary batch truncated in record {index} metadata"
                )
            source = data[offset:offset + src_len].decode("utf-8", errors="strict")
            offset += src_len
            (size,) = _SIZE_STRUCT.unpack_from(data, offset)
            offset += _SIZE_STRUCT.size
            metadata.append((source, size))
        try:
            records = summary_wire.decode_summary_batch(data[offset:])
        except summary_wire.WireError as exc:
            raise ProtocolError(f"corrupt summary batch body: {exc}") from exc
        if len(records) != count:
            raise ProtocolError(
                f"summary batch declares {count} records, wire blob "
                f"carries {len(records)}"
            )
        return [
            ({"source": source, "pairs": pairs, "items_seen": items_seen}, size)
            for (source, size), (pairs, items_seen) in zip(metadata, records)
        ]
    if kind == _PAYLOAD_BATCH:
        items: List[Tuple[Any, float]] = []
        for index in range(count):
            if len(data) - offset < _COUNT_STRUCT.size:
                raise ProtocolError(f"batch truncated at item {index} length")
            (item_len,) = _COUNT_STRUCT.unpack_from(data, offset)
            offset += _COUNT_STRUCT.size
            if len(data) - offset < item_len:
                raise ProtocolError(
                    f"batch truncated in item {index}: declared {item_len} "
                    f"bytes, {len(data) - offset} left"
                )
            items.append(decode_payload(data[offset:offset + item_len]))
            offset += item_len
        if offset != len(data):
            raise ProtocolError(
                f"trailing bytes: {len(data) - offset} past the declared "
                f"item count {count}"
            )
        return items
    raise ProtocolError(f"unknown batch payload codec tag {kind}")


# ---------------------------------------------------------------------------
# asyncio stream helpers
# ---------------------------------------------------------------------------

async def read_frame(reader: asyncio.StreamReader) -> Optional[Frame]:
    """Read exactly one frame; ``None`` on clean EOF at a frame boundary."""
    try:
        header = await reader.readexactly(FRAME_HEADER_BYTES)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError(
            f"connection closed mid-header ({len(exc.partial)} bytes)"
        ) from exc
    decoder = FrameDecoder()
    frames = decoder.feed(header)
    if frames:
        return frames[0]
    _, _, _, length, _ = _HEADER_STRUCT.unpack(header)
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError(
            f"connection closed mid-payload ({len(exc.partial)}/{length} bytes)"
        ) from exc
    frames = decoder.feed(body)
    if not frames:
        raise ProtocolError("frame did not complete after declared length")
    return frames[0]


async def send_frame(
    writer: asyncio.StreamWriter, frame_type: FrameType, payload: bytes = b""
) -> int:
    """Write one frame and drain; returns the bytes put on the wire."""
    data = encode_frame(frame_type, payload)
    writer.write(data)
    await writer.drain()
    return len(data)
